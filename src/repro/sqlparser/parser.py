"""Recursive-descent parser for the hybrid SQL dialect.

Grammar: SQLite SELECT statements (WITH, compound set operations, joins,
subqueries, expressions with full operator precedence) extended with
``{{Ingredient(...)}}`` calls usable wherever an expression or a FROM
source may appear.

Entry points: :func:`parse` for a statement, :func:`parse_expression` for a
standalone expression.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SQLSyntaxError, UnsupportedSQLError
from repro.sqlparser import ast
from repro.sqlparser.lexer import tokenize
from repro.sqlparser.tokens import Token, TokenKind

_JOIN_INTRO = ("JOIN", "INNER", "LEFT", "RIGHT", "FULL", "CROSS", "NATURAL")
_COMPOUND_OPS = ("UNION", "INTERSECT", "EXCEPT")

#: Comparison-level operators (all non-associative, same precedence tier).
_COMPARISON_OPS = ("=", "==", "!=", "<>", "<", "<=", ">", ">=")


class Parser:
    """Token-stream parser.  One instance parses one statement."""

    def __init__(self, sql: str) -> None:
        self.sql = sql
        self.tokens = tokenize(sql)
        self.index = 0

    # -- token helpers -------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def _peek(self, offset: int = 1) -> Token:
        index = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind is not TokenKind.EOF:
            self.index += 1
        return token

    def _error(self, message: str) -> SQLSyntaxError:
        token = self.current
        snippet = token.raw or token.text or "<eof>"
        return SQLSyntaxError(
            f"{message}; got {snippet!r}", position=token.position, line=token.line
        )

    def _accept_keyword(self, *names: str) -> Optional[Token]:
        if self.current.is_keyword(*names):
            return self._advance()
        return None

    def _expect_keyword(self, *names: str) -> Token:
        token = self._accept_keyword(*names)
        if token is None:
            raise self._error(f"expected {' or '.join(names)}")
        return token

    def _accept_punct(self, symbol: str) -> Optional[Token]:
        if self.current.is_punct(symbol):
            return self._advance()
        return None

    def _expect_punct(self, symbol: str) -> Token:
        token = self._accept_punct(symbol)
        if token is None:
            raise self._error(f"expected {symbol!r}")
        return token

    def _accept_operator(self, *symbols: str) -> Optional[Token]:
        if self.current.is_operator(*symbols):
            return self._advance()
        return None

    def _expect_identifier(self, what: str = "identifier") -> str:
        token = self.current
        if token.kind is TokenKind.IDENTIFIER:
            self._advance()
            return token.text
        # Permit non-reserved keywords used as identifiers in practice.
        if token.kind is TokenKind.KEYWORD and token.text in ("LEFT", "RIGHT"):
            self._advance()
            return token.text
        raise self._error(f"expected {what}")

    # -- statement level -----------------------------------------------------

    def parse_statement(self) -> ast.Select:
        """Parse a single SELECT statement (with optional WITH prefix)."""
        select = self._parse_select()
        self._accept_punct(";")
        if self.current.kind is not TokenKind.EOF:
            raise self._error("unexpected trailing input")
        return select

    def _parse_select(self) -> ast.Select:
        ctes: list[ast.CommonTableExpr] = []
        if self._accept_keyword("WITH"):
            self._accept_keyword("RECURSIVE")
            ctes.append(self._parse_cte())
            while self._accept_punct(","):
                ctes.append(self._parse_cte())
        select = self._parse_select_core()
        select.ctes = ctes
        while self.current.is_keyword(*_COMPOUND_OPS):
            op = self._advance().text
            if op == "UNION" and self._accept_keyword("ALL"):
                op = "UNION ALL"
            select.compound.append((op, self._parse_select_core()))
        self._parse_order_limit(select)
        return select

    def _parse_cte(self) -> ast.CommonTableExpr:
        name = self._expect_identifier("CTE name")
        columns: list[str] = []
        if self._accept_punct("("):
            columns.append(self._expect_identifier("column name"))
            while self._accept_punct(","):
                columns.append(self._expect_identifier("column name"))
            self._expect_punct(")")
        self._expect_keyword("AS")
        self._expect_punct("(")
        select = self._parse_select()
        self._expect_punct(")")
        return ast.CommonTableExpr(name, select, columns)

    def _parse_select_core(self) -> ast.Select:
        if self.current.is_keyword("VALUES"):
            raise UnsupportedSQLError("VALUES clauses are not supported")
        self._expect_keyword("SELECT")
        select = ast.Select()
        if self._accept_keyword("DISTINCT"):
            select.distinct = True
        else:
            self._accept_keyword("ALL")
        select.items.append(self._parse_select_item())
        while self._accept_punct(","):
            select.items.append(self._parse_select_item())
        if self._accept_keyword("FROM"):
            select.from_ = self._parse_from()
        if self._accept_keyword("WHERE"):
            select.where = self.parse_expr()
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            select.group_by.append(self.parse_expr())
            while self._accept_punct(","):
                select.group_by.append(self.parse_expr())
        if self._accept_keyword("HAVING"):
            select.having = self.parse_expr()
        return select

    def _parse_order_limit(self, select: ast.Select) -> None:
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            select.order_by.append(self._parse_order_item())
            while self._accept_punct(","):
                select.order_by.append(self._parse_order_item())
        if self._accept_keyword("LIMIT"):
            select.limit = self.parse_expr()
            if self._accept_keyword("OFFSET"):
                select.offset = self.parse_expr()
            elif self._accept_punct(","):
                # LIMIT a, b  ==  LIMIT b OFFSET a
                select.offset = select.limit
                select.limit = self.parse_expr()

    def _parse_order_item(self) -> ast.OrderItem:
        expr = self.parse_expr()
        descending = False
        if self._accept_keyword("DESC"):
            descending = True
        else:
            self._accept_keyword("ASC")
        nulls: Optional[str] = None
        if self._accept_keyword("NULLS"):
            token = self.current
            if token.kind is TokenKind.IDENTIFIER and token.text.upper() in (
                "FIRST",
                "LAST",
            ):
                nulls = token.text.upper()
                self._advance()
            else:
                raise self._error("expected FIRST or LAST after NULLS")
        return ast.OrderItem(expr, descending, nulls)

    def _parse_select_item(self) -> ast.SelectItem:
        if self.current.is_operator("*"):
            self._advance()
            return ast.SelectItem(ast.Star())
        # t.*
        if (
            self.current.kind is TokenKind.IDENTIFIER
            and self._peek().is_punct(".")
            and self._peek(2).is_operator("*")
        ):
            table = self._advance().text
            self._advance()  # .
            self._advance()  # *
            return ast.SelectItem(ast.Star(table))
        expr = self.parse_expr()
        alias: Optional[str] = None
        if self._accept_keyword("AS"):
            alias = self._expect_identifier("alias")
        elif self.current.kind is TokenKind.IDENTIFIER:
            alias = self._advance().text
        elif self.current.kind is TokenKind.STRING:
            alias = self._advance().text
        return ast.SelectItem(expr, alias)

    # -- FROM clause ---------------------------------------------------------

    def _parse_from(self) -> ast.TableSource:
        source = self._parse_single_source()
        while True:
            if self._accept_punct(","):
                right = self._parse_single_source()
                source = ast.Join(source, right, kind="CROSS")
            elif self.current.is_keyword(*_JOIN_INTRO):
                source = self._parse_join(source)
            else:
                return source

    def _parse_join(self, left: ast.TableSource) -> ast.Join:
        natural = bool(self._accept_keyword("NATURAL"))
        kind = "INNER"
        if self._accept_keyword("LEFT"):
            self._accept_keyword("OUTER")
            kind = "LEFT"
        elif self._accept_keyword("RIGHT"):
            self._accept_keyword("OUTER")
            kind = "RIGHT"
        elif self._accept_keyword("FULL"):
            self._accept_keyword("OUTER")
            kind = "FULL"
        elif self._accept_keyword("CROSS"):
            kind = "CROSS"
        elif self._accept_keyword("INNER"):
            kind = "INNER"
        self._expect_keyword("JOIN")
        if natural:
            kind = f"NATURAL {kind}"
        right = self._parse_single_source()
        on: Optional[ast.Expr] = None
        using: list[str] = []
        if self._accept_keyword("ON"):
            on = self.parse_expr()
        elif self._accept_keyword("USING"):
            self._expect_punct("(")
            using.append(self._expect_identifier("column name"))
            while self._accept_punct(","):
                using.append(self._expect_identifier("column name"))
            self._expect_punct(")")
        return ast.Join(left, right, kind=kind, on=on, using=using)

    def _parse_single_source(self) -> ast.TableSource:
        if self.current.kind is TokenKind.INGREDIENT:
            ingredient = _parse_ingredient(self._advance().text)
            alias = self._parse_optional_alias()
            return ast.IngredientSource(ingredient, alias)
        if self._accept_punct("("):
            if self.current.is_keyword("SELECT", "WITH"):
                select = self._parse_select()
                self._expect_punct(")")
                alias = self._parse_optional_alias()
                return ast.SubquerySource(select, alias)
            # parenthesised join/source
            source = self._parse_from()
            self._expect_punct(")")
            return source
        name = self._expect_identifier("table name")
        alias = self._parse_optional_alias()
        return ast.TableName(name, alias)

    def _parse_optional_alias(self) -> Optional[str]:
        if self._accept_keyword("AS"):
            return self._expect_identifier("alias")
        if self.current.kind is TokenKind.IDENTIFIER:
            return self._advance().text
        return None

    # -- expressions ---------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        """Parse a full expression (lowest precedence: OR)."""
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        expr = self._parse_and()
        while self._accept_keyword("OR"):
            expr = ast.BinaryOp("OR", expr, self._parse_and())
        return expr

    def _parse_and(self) -> ast.Expr:
        expr = self._parse_not()
        while self._accept_keyword("AND"):
            expr = ast.BinaryOp("AND", expr, self._parse_not())
        return expr

    def _parse_not(self) -> ast.Expr:
        # `NOT EXISTS (...)` is handled as a negated Exists in _parse_primary
        # rather than UnaryOp(NOT, Exists), matching how it reads.
        if self.current.is_keyword("NOT") and not self._peek().is_keyword("EXISTS"):
            self._advance()
            return ast.UnaryOp("NOT", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Expr:
        expr = self._parse_additive()
        while True:
            token = self.current
            if token.is_operator(*_COMPARISON_OPS):
                op = self._advance().text
                op = {"==": "=", "<>": "!="}.get(op, op)
                expr = ast.BinaryOp(op, expr, self._parse_additive())
                continue
            if token.is_keyword("IS"):
                self._advance()
                negated = bool(self._accept_keyword("NOT"))
                if self._accept_keyword("NULL"):
                    expr = ast.IsNull(expr, negated)
                else:
                    right = self._parse_additive()
                    expr = ast.BinaryOp("IS NOT" if negated else "IS", expr, right)
                continue
            negated = False
            if token.is_keyword("NOT") and self._peek().is_keyword(
                "IN", "LIKE", "GLOB", "REGEXP", "BETWEEN"
            ):
                self._advance()
                negated = True
                token = self.current
            if token.is_keyword("IN"):
                self._advance()
                expr = self._parse_in_tail(expr, negated)
                continue
            if token.is_keyword("LIKE", "GLOB", "REGEXP"):
                op = self._advance().text
                pattern = self._parse_additive()
                escape: Optional[ast.Expr] = None
                if self._accept_keyword("ESCAPE"):
                    escape = self._parse_additive()
                expr = ast.Like(expr, pattern, op=op, negated=negated, escape=escape)
                continue
            if token.is_keyword("BETWEEN"):
                self._advance()
                low = self._parse_additive()
                self._expect_keyword("AND")
                high = self._parse_additive()
                expr = ast.Between(expr, low, high, negated)
                continue
            if negated:
                raise self._error("expected IN, LIKE, GLOB, REGEXP or BETWEEN")
            return expr

    def _parse_in_tail(self, operand: ast.Expr, negated: bool) -> ast.Expr:
        self._expect_punct("(")
        if self.current.is_keyword("SELECT", "WITH"):
            subquery = self._parse_select()
            self._expect_punct(")")
            return ast.InSubquery(operand, subquery, negated)
        items: list[ast.Expr] = []
        if not self.current.is_punct(")"):
            items.append(self.parse_expr())
            while self._accept_punct(","):
                items.append(self.parse_expr())
        self._expect_punct(")")
        return ast.InList(operand, items, negated)

    def _parse_additive(self) -> ast.Expr:
        expr = self._parse_multiplicative()
        while True:
            token = self._accept_operator("+", "-", "&", "|", "<<", ">>")
            if token is None:
                return expr
            expr = ast.BinaryOp(token.text, expr, self._parse_multiplicative())

    def _parse_multiplicative(self) -> ast.Expr:
        expr = self._parse_concat()
        while True:
            token = self._accept_operator("*", "/", "%")
            if token is None:
                return expr
            expr = ast.BinaryOp(token.text, expr, self._parse_concat())

    def _parse_concat(self) -> ast.Expr:
        expr = self._parse_unary()
        while self._accept_operator("||"):
            expr = ast.BinaryOp("||", expr, self._parse_unary())
        return expr

    def _parse_unary(self) -> ast.Expr:
        token = self._accept_operator("-", "+", "~")
        if token is not None:
            return ast.UnaryOp(token.text, self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        token = self.current
        if token.kind is TokenKind.INGREDIENT:
            self._advance()
            return _parse_ingredient(token.text)
        if token.kind is TokenKind.NUMBER:
            self._advance()
            return ast.Literal.number(_number_value(token.text))
        if token.kind is TokenKind.STRING:
            self._advance()
            return ast.Literal.string(token.text)
        if token.kind is TokenKind.PARAMETER:
            self._advance()
            return ast.Parameter(token.text)
        if token.is_keyword("NULL"):
            self._advance()
            return ast.Literal.null()
        if token.is_keyword("TRUE"):
            self._advance()
            return ast.Literal.boolean(True)
        if token.is_keyword("FALSE"):
            self._advance()
            return ast.Literal.boolean(False)
        if token.is_keyword("CURRENT_DATE", "CURRENT_TIME", "CURRENT_TIMESTAMP"):
            self._advance()
            return ast.FuncCall(token.text)
        if token.is_keyword("CAST"):
            return self._parse_cast()
        if token.is_keyword("CASE"):
            return self._parse_case()
        if token.is_keyword("EXISTS"):
            self._advance()
            self._expect_punct("(")
            subquery = self._parse_select()
            self._expect_punct(")")
            return ast.Exists(subquery)
        if token.is_keyword("NOT") and self._peek().is_keyword("EXISTS"):
            self._advance()
            self._advance()
            self._expect_punct("(")
            subquery = self._parse_select()
            self._expect_punct(")")
            return ast.Exists(subquery, negated=True)
        if token.is_punct("("):
            self._advance()
            if self.current.is_keyword("SELECT", "WITH"):
                subquery = self._parse_select()
                self._expect_punct(")")
                return ast.ScalarSubquery(subquery)
            first = self.parse_expr()
            if self._accept_punct(","):
                items = [first, self.parse_expr()]
                while self._accept_punct(","):
                    items.append(self.parse_expr())
                self._expect_punct(")")
                return ast.ExprList(items)
            self._expect_punct(")")
            return first
        if token.kind is TokenKind.IDENTIFIER or token.is_keyword("LEFT", "RIGHT"):
            return self._parse_identifier_expr()
        raise self._error("expected expression")

    def _parse_identifier_expr(self) -> ast.Expr:
        name = self._advance().text
        # function call?
        if self.current.is_punct("("):
            self._advance()
            distinct = bool(self._accept_keyword("DISTINCT"))
            args: list[ast.Expr] = []
            if self.current.is_operator("*"):
                self._advance()
                args.append(ast.Star())
            elif not self.current.is_punct(")"):
                args.append(self.parse_expr())
                while self._accept_punct(","):
                    args.append(self.parse_expr())
            self._expect_punct(")")
            return ast.FuncCall(name, args, distinct)
        # qualified column: a.b (or a.b.c for schema-qualified, which we
        # collapse to table.column using the last two parts)
        if self.current.is_punct("."):
            parts = [name]
            while self._accept_punct("."):
                parts.append(self._expect_identifier("column name"))
            return ast.ColumnRef(parts[-1], ".".join(parts[:-1]))
        return ast.ColumnRef(name)

    def _parse_cast(self) -> ast.Expr:
        self._expect_keyword("CAST")
        self._expect_punct("(")
        operand = self.parse_expr()
        self._expect_keyword("AS")
        type_parts = [self._expect_identifier("type name")]
        while self.current.kind is TokenKind.IDENTIFIER:
            type_parts.append(self._advance().text)
        type_name = " ".join(type_parts)
        if self._accept_punct("("):
            size = self._advance().text
            if self._accept_punct(","):
                size += ", " + self._advance().text
            self._expect_punct(")")
            type_name += f"({size})"
        self._expect_punct(")")
        return ast.Cast(operand, type_name)

    def _parse_case(self) -> ast.Expr:
        self._expect_keyword("CASE")
        operand: Optional[ast.Expr] = None
        if not self.current.is_keyword("WHEN"):
            operand = self.parse_expr()
        whens: list[ast.CaseWhen] = []
        while self._accept_keyword("WHEN"):
            condition = self.parse_expr()
            self._expect_keyword("THEN")
            whens.append(ast.CaseWhen(condition, self.parse_expr()))
        if not whens:
            raise self._error("CASE requires at least one WHEN arm")
        else_: Optional[ast.Expr] = None
        if self._accept_keyword("ELSE"):
            else_ = self.parse_expr()
        self._expect_keyword("END")
        return ast.Case(operand, whens, else_)


# ---------------------------------------------------------------------------
# Ingredient mini-parser
# ---------------------------------------------------------------------------


def _parse_ingredient(content: str) -> ast.Ingredient:
    """Parse the text inside ``{{ ... }}`` into an :class:`ast.Ingredient`.

    Syntax: ``Name('positional', "another", keyword=value, flag='x')`` where
    values are quoted strings, numbers, or bare true/false/null words.
    """
    from repro.errors import IngredientError

    text = content.strip()
    paren = text.find("(")
    if paren < 0 or not text.endswith(")"):
        raise IngredientError(f"malformed ingredient call: {content!r}")
    name = text[:paren].strip()
    if not name.isidentifier():
        raise IngredientError(f"bad ingredient name in: {content!r}")
    body = text[paren + 1 : -1]
    args: list[str] = []
    options: dict[str, object] = {}
    for part in _split_ingredient_args(body):
        part = part.strip()
        if not part:
            continue
        key, value = _split_ingredient_kw(part)
        if key is None:
            args.append(_ingredient_value(part))
        else:
            options[key] = _ingredient_value(value)
    return ast.Ingredient(name=name, args=args, options=options, raw=content)


def _split_ingredient_args(body: str) -> list[str]:
    """Split on commas at paren depth 0 and outside quotes."""
    parts: list[str] = []
    depth = 0
    quote: Optional[str] = None
    current: list[str] = []
    index = 0
    while index < len(body):
        ch = body[index]
        if quote is not None:
            current.append(ch)
            if ch == quote:
                if index + 1 < len(body) and body[index + 1] == quote:
                    current.append(quote)
                    index += 1
                else:
                    quote = None
        elif ch in "'\"":
            quote = ch
            current.append(ch)
        elif ch in "([":
            depth += 1
            current.append(ch)
        elif ch in ")]":
            depth -= 1
            current.append(ch)
        elif ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
        index += 1
    if current:
        parts.append("".join(current))
    return parts


def _split_ingredient_kw(part: str) -> tuple[Optional[str], str]:
    """Split ``key=value`` (outside quotes); return (None, part) otherwise."""
    quote: Optional[str] = None
    for index, ch in enumerate(part):
        if quote is not None:
            if ch == quote:
                quote = None
        elif ch in "'\"":
            quote = ch
        elif ch == "=":
            key = part[:index].strip()
            if key.isidentifier():
                return key, part[index + 1 :].strip()
            return None, part
    return None, part


def _ingredient_value(text: str) -> object:
    """Decode one ingredient argument into a Python value."""
    text = text.strip()
    if len(text) >= 2 and text[0] == text[-1] and text[0] in "'\"":
        inner = text[1:-1]
        return inner.replace(text[0] * 2, text[0])
    lowered = text.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    if lowered in ("none", "null"):
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    if text.startswith("[") and text.endswith("]"):
        return [_ingredient_value(p) for p in _split_ingredient_args(text[1:-1])]
    return text


def _number_value(text: str):
    """Convert a numeric literal token to int or float."""
    lowered = text.lower()
    if lowered.startswith("0x"):
        return int(text, 16)
    if "." in text or "e" in lowered:
        return float(text)
    return int(text)


# ---------------------------------------------------------------------------
# Module-level entry points
# ---------------------------------------------------------------------------


def parse(sql: str) -> ast.Select:
    """Parse one SELECT statement into an AST."""
    return Parser(sql).parse_statement()


def parse_expression(sql: str) -> ast.Expr:
    """Parse a standalone expression (used heavily by tests and rewrites)."""
    parser = Parser(sql)
    expr = parser.parse_expr()
    if parser.current.kind is not TokenKind.EOF:
        raise parser._error("unexpected trailing input after expression")
    return expr
