"""Generic AST traversal and the rewrite helpers the hybrid executor needs.

Offers:

- :func:`walk` — pre-order iteration over every node.
- :func:`transform` — bottom-up rewriting with a node→node function.
- :func:`find_ingredients` — every ``{{...}}`` call in a statement.
- :func:`split_conjuncts` / :func:`join_conjuncts` — WHERE decomposition.
- :func:`column_refs` / :func:`tables_in` — reference discovery.
- :func:`expression_is_pure` — True when an expression involves only base
  database columns (no ingredients), which makes it pushdown-safe.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterator, Optional

from repro.sqlparser import ast


def walk(node: ast.Node) -> Iterator[ast.Node]:
    """Yield ``node`` and every descendant, pre-order."""
    yield node
    for child in node.children():
        yield from walk(child)


def transform(node: ast.Node, fn: Callable[[ast.Node], ast.Node]) -> ast.Node:
    """Rebuild the tree bottom-up, applying ``fn`` to every node.

    ``fn`` receives a node whose children have already been transformed and
    returns its replacement (possibly the same object).  Lists and tuples of
    nodes inside dataclass fields are handled; tuples of (str, Select) in
    ``Select.compound`` are handled specially.

    ``IngredientSource`` nodes are treated atomically: their inner
    Ingredient is not visited separately, so a mapping that turns FROM-
    position ingredients into table sources cannot collide with one that
    rewrites expression-position ingredients.
    """
    if isinstance(node, ast.IngredientSource):
        return fn(node)
    replacements: dict[str, object] = {}
    for f in dataclasses.fields(node):
        value = getattr(node, f.name)
        if isinstance(value, ast.Node):
            new_value = transform(value, fn)
            if new_value is not value:
                replacements[f.name] = new_value
        elif isinstance(value, list):
            new_list, changed = _transform_sequence(value, fn)
            if changed:
                replacements[f.name] = new_list
    if replacements:
        node = dataclasses.replace(node, **replacements)
    return fn(node)


def _transform_sequence(
    values: list, fn: Callable[[ast.Node], ast.Node]
) -> tuple[list, bool]:
    changed = False
    out = []
    for item in values:
        if isinstance(item, ast.Node):
            new_item = transform(item, fn)
            changed = changed or new_item is not item
            out.append(new_item)
        elif (
            isinstance(item, tuple)
            and len(item) == 2
            and isinstance(item[1], ast.Node)
        ):
            new_second = transform(item[1], fn)
            changed = changed or new_second is not item[1]
            out.append((item[0], new_second))
        else:
            out.append(item)
    return out, changed


# ---------------------------------------------------------------------------
# Ingredient discovery
# ---------------------------------------------------------------------------


def find_ingredients(node: ast.Node) -> list[ast.Ingredient]:
    """Return every Ingredient in the tree, in pre-order."""
    found: list[ast.Ingredient] = []
    for item in walk(node):
        if isinstance(item, ast.Ingredient):
            found.append(item)
        elif isinstance(item, ast.IngredientSource):
            # walk() already visits the inner Ingredient via children();
            # nothing extra to do, but keep the branch for clarity.
            pass
    return found


def contains_ingredient(node: ast.Node) -> bool:
    """True when any ``{{...}}`` call appears anywhere in the tree."""
    return any(isinstance(item, ast.Ingredient) for item in walk(node))


# ---------------------------------------------------------------------------
# Conjunct handling
# ---------------------------------------------------------------------------


def split_conjuncts(expr: Optional[ast.Expr]) -> list[ast.Expr]:
    """Flatten a WHERE expression into its top-level AND-ed conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def join_conjuncts(conjuncts: list[ast.Expr]) -> Optional[ast.Expr]:
    """Rebuild a WHERE expression from a conjunct list (None when empty)."""
    result: Optional[ast.Expr] = None
    for conjunct in conjuncts:
        result = conjunct if result is None else ast.BinaryOp("AND", result, conjunct)
    return result


# ---------------------------------------------------------------------------
# Reference discovery
# ---------------------------------------------------------------------------


def column_refs(node: ast.Node) -> list[ast.ColumnRef]:
    """Every column reference in the tree, in pre-order."""
    return [item for item in walk(node) if isinstance(item, ast.ColumnRef)]


def tables_in(select: ast.Select) -> list[ast.TableName]:
    """Every base-table reference in a statement, including subqueries."""
    return [item for item in walk(select) if isinstance(item, ast.TableName)]


def source_names(source: Optional[ast.TableSource]) -> dict[str, ast.TableSource]:
    """Map visible alias → source for a FROM clause (flattening joins)."""
    names: dict[str, ast.TableSource] = {}

    def _visit(item: Optional[ast.TableSource]) -> None:
        if item is None:
            return
        if isinstance(item, ast.Join):
            _visit(item.left)
            _visit(item.right)
            return
        alias = item.source_alias()
        if alias:
            names[alias] = item

    _visit(source)
    return names


def expression_is_pure(expr: ast.Expr) -> bool:
    """True when the expression contains no ingredient and no subquery with
    an ingredient — i.e. it can be evaluated by the database alone."""
    for item in walk(expr):
        if isinstance(item, ast.Ingredient):
            return False
    return True


def replace_ingredients(
    node: ast.Node, mapping: Callable[[ast.Ingredient], ast.Node]
) -> ast.Node:
    """Replace every Ingredient expression via ``mapping``.

    ``IngredientSource`` nodes in FROM clauses are replaced by mapping the
    inner ingredient; the mapping must return a TableSource in that case.
    """

    def rewrite(item: ast.Node) -> ast.Node:
        if isinstance(item, ast.Ingredient):
            return mapping(item)
        if isinstance(item, ast.IngredientSource):
            replacement = mapping(item.ingredient)
            if isinstance(replacement, ast.TableSource):
                return replacement
            raise TypeError(
                "mapping for an ingredient table source must return a TableSource"
            )
        return item

    return transform(node, rewrite)
