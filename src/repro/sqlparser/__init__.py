"""SQL front end for the hybrid-query dialect.

This subpackage replaces ``sqlglot`` (unavailable offline) for the subset of
SQL the SWAN benchmark needs: SQLite-flavoured ``SELECT`` statements with
optional BlendSQL-style ``{{LLMMap(...)}}`` / ``{{LLMQA(...)}}`` /
``{{LLMJoin(...)}}`` ingredient calls embedded in expressions or FROM
clauses.

Public surface:

- :func:`parse` — SQL text to AST (:class:`repro.sqlparser.ast.Select`).
- :func:`render` — AST back to executable SQL text.
- :mod:`repro.sqlparser.rewrite` — visitors/transformers used by the hybrid
  query executor (ingredient extraction, conjunct splitting, pushdown
  analysis).
"""

from repro.sqlparser.lexer import Lexer, tokenize
from repro.sqlparser.parser import parse, parse_expression
from repro.sqlparser.render import render, render_expression

__all__ = [
    "Lexer",
    "tokenize",
    "parse",
    "parse_expression",
    "render",
    "render_expression",
]
