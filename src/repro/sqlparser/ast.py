"""Dataclass AST for the supported SQL subset.

Nodes are plain frozen-ish dataclasses (mutable, for cheap rewriting) with a
common :class:`Node` base.  Children are discovered generically through
dataclass fields, which lets :mod:`repro.sqlparser.rewrite` offer `walk` and
`transform` without per-node boilerplate.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Iterator, Optional, Union


@dataclass
class Node:
    """Base class for all AST nodes."""

    def children(self) -> Iterator["Node"]:
        """Yield direct child nodes (descending into lists and tuples)."""
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if isinstance(value, Node):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Node):
                        yield item


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr(Node):
    """Base class for expression nodes."""


@dataclass
class Literal(Expr):
    """A literal constant.

    ``value`` is the Python value (str, int, float, bool, None); ``kind`` is
    one of 'string', 'number', 'null', 'bool'.
    """

    value: object
    kind: str

    @staticmethod
    def string(value: str) -> "Literal":
        return Literal(value, "string")

    @staticmethod
    def number(value: Union[int, float]) -> "Literal":
        return Literal(value, "number")

    @staticmethod
    def null() -> "Literal":
        return Literal(None, "null")

    @staticmethod
    def boolean(value: bool) -> "Literal":
        return Literal(value, "bool")


@dataclass
class ColumnRef(Expr):
    """A (possibly qualified) column reference: ``t.c`` or ``c``."""

    column: str
    table: Optional[str] = None

    def qualified(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass
class Star(Expr):
    """``*`` or ``t.*`` in a select list or in COUNT(*)."""

    table: Optional[str] = None


@dataclass
class Parameter(Expr):
    """A bound parameter such as ``?`` or ``:name``."""

    name: str


@dataclass
class UnaryOp(Expr):
    """Unary operator application: NOT x, -x, +x, ~x."""

    op: str
    operand: Expr


@dataclass
class BinaryOp(Expr):
    """Binary operator application (arithmetic, comparison, AND/OR, ||)."""

    op: str
    left: Expr
    right: Expr


@dataclass
class IsNull(Expr):
    """``expr IS [NOT] NULL``."""

    operand: Expr
    negated: bool = False


@dataclass
class Between(Expr):
    """``expr [NOT] BETWEEN low AND high``."""

    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False


@dataclass
class InList(Expr):
    """``expr [NOT] IN (e1, e2, ...)``."""

    operand: Expr
    items: list[Expr]
    negated: bool = False


@dataclass
class InSubquery(Expr):
    """``expr [NOT] IN (SELECT ...)``."""

    operand: Expr
    subquery: "Select"
    negated: bool = False


@dataclass
class Like(Expr):
    """``expr [NOT] LIKE/GLOB/REGEXP pattern [ESCAPE e]``."""

    operand: Expr
    pattern: Expr
    op: str = "LIKE"
    negated: bool = False
    escape: Optional[Expr] = None


@dataclass
class FuncCall(Expr):
    """A function call such as ``COUNT(DISTINCT x)`` or ``SUBSTR(a, 1, 3)``."""

    name: str
    args: list[Expr] = field(default_factory=list)
    distinct: bool = False

    def is_aggregate(self) -> bool:
        return self.name.upper() in {
            "COUNT",
            "SUM",
            "AVG",
            "MIN",
            "MAX",
            "TOTAL",
            "GROUP_CONCAT",
        }


@dataclass
class Cast(Expr):
    """``CAST(expr AS type)``."""

    operand: Expr
    type_name: str


@dataclass
class CaseWhen(Node):
    """A single WHEN/THEN arm of a CASE expression."""

    condition: Expr
    result: Expr


@dataclass
class Case(Expr):
    """``CASE [operand] WHEN ... THEN ... [ELSE ...] END``."""

    operand: Optional[Expr]
    whens: list[CaseWhen]
    else_: Optional[Expr] = None


@dataclass
class Exists(Expr):
    """``[NOT] EXISTS (SELECT ...)``."""

    subquery: "Select"
    negated: bool = False


@dataclass
class ScalarSubquery(Expr):
    """A parenthesised SELECT used as a scalar expression."""

    subquery: "Select"


@dataclass
class ExprList(Expr):
    """A parenthesised tuple of expressions, e.g. the left side of row IN."""

    items: list[Expr]


@dataclass
class Ingredient(Expr):
    """A BlendSQL-style ``{{Name('arg1', 'arg2', kw=value)}}`` call.

    ``name`` is the ingredient function (LLMMap, LLMQA, LLMJoin), ``args``
    the positional string arguments, ``options`` the keyword options, and
    ``raw`` the original text between the braces.
    """

    name: str
    args: list[str] = field(default_factory=list)
    options: dict[str, object] = field(default_factory=dict)
    raw: str = ""


# ---------------------------------------------------------------------------
# Table references
# ---------------------------------------------------------------------------


@dataclass
class TableSource(Node):
    """Base class for anything that can appear in FROM."""

    def source_alias(self) -> Optional[str]:
        """The name this source is visible under, if any."""
        raise NotImplementedError


@dataclass
class TableName(TableSource):
    """A base table reference with an optional alias."""

    name: str
    alias: Optional[str] = None

    def source_alias(self) -> Optional[str]:
        return self.alias or self.name


@dataclass
class SubquerySource(TableSource):
    """A parenthesised SELECT in FROM, with an optional alias."""

    select: "Select"
    alias: Optional[str] = None

    def source_alias(self) -> Optional[str]:
        return self.alias


@dataclass
class IngredientSource(TableSource):
    """An ingredient used as a table in FROM, e.g. ``JOIN {{LLMJoin(...)}}``."""

    ingredient: Ingredient
    alias: Optional[str] = None

    def source_alias(self) -> Optional[str]:
        return self.alias


@dataclass
class Join(TableSource):
    """A join between two table sources.

    ``kind`` is one of 'INNER', 'LEFT', 'LEFT OUTER', 'CROSS', 'NATURAL',
    'RIGHT', 'FULL'.  Exactly one of ``on`` / ``using`` may be set.
    """

    left: TableSource
    right: TableSource
    kind: str = "INNER"
    on: Optional[Expr] = None
    using: list[str] = field(default_factory=list)

    def source_alias(self) -> Optional[str]:
        return None


# ---------------------------------------------------------------------------
# SELECT statement
# ---------------------------------------------------------------------------


@dataclass
class SelectItem(Node):
    """One entry of a select list: an expression with an optional alias."""

    expr: Expr
    alias: Optional[str] = None


@dataclass
class OrderItem(Node):
    """One ORDER BY term."""

    expr: Expr
    descending: bool = False
    nulls: Optional[str] = None  # 'FIRST' | 'LAST'


@dataclass
class CommonTableExpr(Node):
    """A single CTE in a WITH clause."""

    name: str
    select: "Select"
    columns: list[str] = field(default_factory=list)


@dataclass
class Select(Node):
    """A full SELECT statement.

    Set operations are represented through ``compound``: a list of
    (operator, Select) pairs applied left-to-right, with ORDER BY / LIMIT
    belonging to the whole compound (as in SQLite).
    """

    items: list[SelectItem] = field(default_factory=list)
    distinct: bool = False
    from_: Optional[TableSource] = None
    where: Optional[Expr] = None
    group_by: list[Expr] = field(default_factory=list)
    having: Optional[Expr] = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: Optional[Expr] = None
    offset: Optional[Expr] = None
    ctes: list[CommonTableExpr] = field(default_factory=list)
    compound: list[tuple[str, "Select"]] = field(default_factory=list)

    def children(self) -> Iterator[Node]:  # include compound selects
        yield from super().children()
        for _, select in self.compound:
            yield select

    def has_order_by(self) -> bool:
        """True when this (or any compound arm) imposes an output order."""
        return bool(self.order_by)
