"""Tokenizer for the hybrid SQL dialect.

Handles standard SQLite lexical structure (keywords, bare and quoted
identifiers, string and numeric literals, operators, line and block
comments) plus one extension: a ``{{ ... }}`` span is emitted as a single
:data:`~repro.sqlparser.tokens.TokenKind.INGREDIENT` token whose ``text`` is
the content between the braces.  Nested braces inside string literals within
the span are respected.
"""

from __future__ import annotations

from repro.errors import SQLSyntaxError
from repro.sqlparser.tokens import (
    KEYWORDS,
    MULTI_CHAR_OPERATORS,
    PUNCTUATION,
    SINGLE_CHAR_OPERATORS,
    Token,
    TokenKind,
)

_IDENT_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_"
)
_IDENT_CONT = _IDENT_START | frozenset("0123456789$")
_DIGITS = frozenset("0123456789")
_HEX_DIGITS = _DIGITS | frozenset("abcdefABCDEF")


class Lexer:
    """Single-pass tokenizer over a SQL string.

    Usage::

        tokens = Lexer("SELECT 1").run()
    """

    def __init__(self, sql: str) -> None:
        self.sql = sql
        self.pos = 0
        self.line = 1
        self.tokens: list[Token] = []

    # -- public API ---------------------------------------------------------

    def run(self) -> list[Token]:
        """Tokenize the whole input, appending a trailing EOF token."""
        while True:
            self._skip_trivia()
            if self.pos >= len(self.sql):
                break
            start, line = self.pos, self.line
            ch = self.sql[self.pos]
            if self.sql.startswith("{{", self.pos):
                self._lex_ingredient(start, line)
            elif ch in _IDENT_START:
                self._lex_word(start, line)
            elif ch in _DIGITS or (ch == "." and self._peek(1) in _DIGITS):
                self._lex_number(start, line)
            elif ch == "'":
                self._lex_string(start, line)
            elif ch in '"`[':
                self._lex_quoted_identifier(start, line)
            elif ch == "?" or ch == ":":
                self._lex_parameter(start, line)
            else:
                self._lex_operator_or_punct(start, line)
        self.tokens.append(Token(TokenKind.EOF, "", self.pos, self.line))
        return self.tokens

    # -- helpers ------------------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.sql[index] if index < len(self.sql) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.sql) and self.sql[self.pos] == "\n":
                self.line += 1
            self.pos += 1

    def _emit(self, kind: TokenKind, text: str, start: int, line: int) -> None:
        self.tokens.append(
            Token(kind, text, start, line, raw=self.sql[start : self.pos])
        )

    def _skip_trivia(self) -> None:
        """Skip whitespace and comments (`-- ...` and `/* ... */`)."""
        while self.pos < len(self.sql):
            ch = self.sql[self.pos]
            if ch in " \t\r\n":
                self._advance()
            elif self.sql.startswith("--", self.pos):
                while self.pos < len(self.sql) and self.sql[self.pos] != "\n":
                    self._advance()
            elif self.sql.startswith("/*", self.pos):
                end = self.sql.find("*/", self.pos + 2)
                if end < 0:
                    raise SQLSyntaxError(
                        "unterminated block comment", position=self.pos, line=self.line
                    )
                self._advance(end + 2 - self.pos)
            else:
                return

    # -- token scanners ------------------------------------------------------

    def _lex_word(self, start: int, line: int) -> None:
        while self._peek() in _IDENT_CONT:
            self._advance()
        word = self.sql[start : self.pos]
        upper = word.upper()
        if upper in KEYWORDS:
            self._emit(TokenKind.KEYWORD, upper, start, line)
        else:
            self._emit(TokenKind.IDENTIFIER, word, start, line)

    def _lex_number(self, start: int, line: int) -> None:
        if self._peek() == "0" and self._peek(1) in ("x", "X"):
            self._advance(2)
            if self._peek() not in _HEX_DIGITS:
                raise SQLSyntaxError("malformed hex literal", position=start, line=line)
            while self._peek() in _HEX_DIGITS:
                self._advance()
            self._emit(TokenKind.NUMBER, self.sql[start : self.pos], start, line)
            return
        while self._peek() in _DIGITS:
            self._advance()
        if self._peek() == "." and self._peek(1) in _DIGITS | {""}:
            self._advance()
            while self._peek() in _DIGITS:
                self._advance()
        if self._peek() in ("e", "E"):
            lookahead = 1
            if self._peek(1) in ("+", "-"):
                lookahead = 2
            if self._peek(lookahead) in _DIGITS:
                self._advance(lookahead)
                while self._peek() in _DIGITS:
                    self._advance()
        self._emit(TokenKind.NUMBER, self.sql[start : self.pos], start, line)

    def _lex_string(self, start: int, line: int) -> None:
        self._advance()  # opening quote
        parts: list[str] = []
        while True:
            if self.pos >= len(self.sql):
                raise SQLSyntaxError(
                    "unterminated string literal", position=start, line=line
                )
            ch = self.sql[self.pos]
            if ch == "'":
                if self._peek(1) == "'":  # escaped quote
                    parts.append("'")
                    self._advance(2)
                    continue
                self._advance()
                break
            parts.append(ch)
            self._advance()
        self._emit(TokenKind.STRING, "".join(parts), start, line)

    def _lex_quoted_identifier(self, start: int, line: int) -> None:
        open_ch = self.sql[self.pos]
        close_ch = {"[": "]", '"': '"', "`": "`"}[open_ch]
        self._advance()
        parts: list[str] = []
        while True:
            if self.pos >= len(self.sql):
                raise SQLSyntaxError(
                    "unterminated quoted identifier", position=start, line=line
                )
            ch = self.sql[self.pos]
            if ch == close_ch:
                if close_ch in ('"', "`") and self._peek(1) == close_ch:
                    parts.append(close_ch)
                    self._advance(2)
                    continue
                self._advance()
                break
            parts.append(ch)
            self._advance()
        self._emit(TokenKind.IDENTIFIER, "".join(parts), start, line)

    def _lex_parameter(self, start: int, line: int) -> None:
        if self.sql[self.pos] == "?":
            self._advance()
            while self._peek() in _DIGITS:
                self._advance()
        else:  # :name
            self._advance()
            if self._peek() not in _IDENT_START:
                raise SQLSyntaxError(
                    "expected parameter name after ':'", position=start, line=line
                )
            while self._peek() in _IDENT_CONT:
                self._advance()
        self._emit(TokenKind.PARAMETER, self.sql[start : self.pos], start, line)

    def _lex_ingredient(self, start: int, line: int) -> None:
        """Scan a ``{{ ... }}`` span, honouring quotes inside it."""
        self._advance(2)  # skip {{
        content_start = self.pos
        while True:
            if self.pos >= len(self.sql):
                raise SQLSyntaxError(
                    "unterminated ingredient (missing '}}')",
                    position=start,
                    line=line,
                )
            if self.sql.startswith("}}", self.pos):
                content = self.sql[content_start : self.pos]
                self._advance(2)
                self._emit(TokenKind.INGREDIENT, content.strip(), start, line)
                return
            if self.sql[self.pos] == "'":
                self._skip_quoted_in_ingredient(start, line, "'")
            elif self.sql[self.pos] == '"':
                self._skip_quoted_in_ingredient(start, line, '"')
            else:
                self._advance()

    def _skip_quoted_in_ingredient(self, start: int, line: int, quote: str) -> None:
        self._advance()
        while True:
            if self.pos >= len(self.sql):
                raise SQLSyntaxError(
                    "unterminated string inside ingredient",
                    position=start,
                    line=line,
                )
            if self.sql[self.pos] == quote:
                if self._peek(1) == quote:
                    self._advance(2)
                    continue
                self._advance()
                return
            self._advance()

    def _lex_operator_or_punct(self, start: int, line: int) -> None:
        for op in MULTI_CHAR_OPERATORS:
            if self.sql.startswith(op, self.pos):
                self._advance(len(op))
                self._emit(TokenKind.OPERATOR, op, start, line)
                return
        ch = self.sql[self.pos]
        if ch in SINGLE_CHAR_OPERATORS:
            self._advance()
            self._emit(TokenKind.OPERATOR, ch, start, line)
        elif ch in PUNCTUATION:
            self._advance()
            self._emit(TokenKind.PUNCT, ch, start, line)
        else:
            raise SQLSyntaxError(
                f"unexpected character {ch!r}", position=self.pos, line=self.line
            )


def tokenize(sql: str) -> list[Token]:
    """Tokenize ``sql``, returning tokens including a trailing EOF."""
    return Lexer(sql).run()
