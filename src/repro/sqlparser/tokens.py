"""Token kinds and the token record produced by the lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenKind(enum.Enum):
    """Lexical category of a token."""

    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    STRING = "string"
    NUMBER = "number"
    OPERATOR = "operator"
    PUNCT = "punct"
    INGREDIENT = "ingredient"  # a whole `{{ ... }}` span, content in `text`
    PARAMETER = "parameter"  # ?  :name
    EOF = "eof"


#: Keywords recognised by the parser.  Everything else that looks like a word
#: is an identifier.  SQLite treats keywords case-insensitively; the lexer
#: upper-cases the `text` of KEYWORD tokens.
KEYWORDS = frozenset(
    """
    ALL AND AS ASC BETWEEN BY CASE CAST COLLATE CROSS CURRENT_DATE
    CURRENT_TIME CURRENT_TIMESTAMP DESC DISTINCT ELSE END ESCAPE EXCEPT
    EXISTS FALSE FROM FULL GLOB GROUP HAVING IN INNER INTERSECT IS JOIN
    LEFT LIKE LIMIT NATURAL NOT NULL NULLS OFFSET ON OR ORDER OUTER
    RECURSIVE REGEXP RIGHT SELECT THEN TRUE UNION USING VALUES WHEN WHERE
    WITH
    """.split()
)

#: Multi-character operators, longest first so the lexer can greedily match.
MULTI_CHAR_OPERATORS = ("<>", "!=", ">=", "<=", "==", "||", "<<", ">>")

SINGLE_CHAR_OPERATORS = frozenset("+-*/%<>=&|~")

PUNCTUATION = frozenset("(),.;")


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    ``text`` holds the normalised content: keywords are upper-cased, quoted
    identifiers are unquoted, string literals are unescaped, and ingredient
    tokens hold the text between the ``{{`` and ``}}`` braces.  ``raw``
    preserves the original source slice for error messages.
    """

    kind: TokenKind
    text: str
    position: int
    line: int
    raw: str = ""

    def is_keyword(self, *names: str) -> bool:
        """Return True when this token is one of the given keywords."""
        return self.kind is TokenKind.KEYWORD and self.text in names

    def is_punct(self, symbol: str) -> bool:
        """Return True when this token is the given punctuation symbol."""
        return self.kind is TokenKind.PUNCT and self.text == symbol

    def is_operator(self, *symbols: str) -> bool:
        """Return True when this token is one of the given operators."""
        return self.kind is TokenKind.OPERATOR and self.text in symbols

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.text!r}@{self.position})"
