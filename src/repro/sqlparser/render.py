"""AST → SQL text renderer.

The renderer emits SQLite-executable SQL and is round-trip safe: for any
statement in the supported subset, ``parse(render(parse(sql)))`` equals
``parse(sql)``.  Parentheses are inserted based on operator precedence, so
the output never changes evaluation order.

Ingredient nodes render back to ``{{Name('arg', kw=value)}}`` form, which is
only meaningful to the hybrid executor, not to SQLite — callers must rewrite
ingredients away before execution.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.sqlparser import ast

_PRECEDENCE = {
    "OR": 1,
    "AND": 2,
    "=": 4,
    "!=": 4,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "IS": 4,
    "IS NOT": 4,
    "+": 5,
    "-": 5,
    "&": 5,
    "|": 5,
    "<<": 5,
    ">>": 5,
    "*": 6,
    "/": 6,
    "%": 6,
    "||": 7,
}

_COMPARISON_LEVEL = 4
_UNARY_LEVEL = 8
_PRIMARY_LEVEL = 10

_BARE_IDENT_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_"
)

# Words that cannot appear as bare identifiers in rendered SQL.
_RESERVED = frozenset(
    """
    ALL AND AS ASC BETWEEN BY CASE CAST CROSS DESC DISTINCT ELSE END ESCAPE
    EXCEPT EXISTS FROM FULL GLOB GROUP HAVING IN INNER INTERSECT IS JOIN
    LEFT LIKE LIMIT NATURAL NOT NULL OFFSET ON OR ORDER OUTER RIGHT SELECT
    THEN UNION USING VALUES WHEN WHERE WITH
    """.split()
)


def quote_identifier(name: str) -> str:
    """Quote ``name`` with double quotes when it is not a safe bare word."""
    if (
        name
        and not name[0].isdigit()
        and all(ch in _BARE_IDENT_CHARS for ch in name)
        and name.upper() not in _RESERVED
    ):
        return name
    escaped = name.replace('"', '""')
    return f'"{escaped}"'


def quote_string(value: str) -> str:
    """Render a SQL string literal with proper quote doubling."""
    return "'" + value.replace("'", "''") + "'"


def render(select: ast.Select) -> str:
    """Render a full SELECT statement to SQL text."""
    parts: list[str] = []
    if select.ctes:
        ctes = []
        for cte in select.ctes:
            columns = ""
            if cte.columns:
                columns = "(" + ", ".join(quote_identifier(c) for c in cte.columns) + ")"
            ctes.append(
                f"{quote_identifier(cte.name)}{columns} AS ({_render_body(cte.select)})"
            )
        parts.append("WITH " + ", ".join(ctes))
    parts.append(_render_core(select))
    for op, arm in select.compound:
        parts.append(op)
        parts.append(_render_core(arm))
    if select.order_by:
        parts.append(
            "ORDER BY " + ", ".join(_render_order_item(item) for item in select.order_by)
        )
    if select.limit is not None:
        parts.append("LIMIT " + render_expression(select.limit))
        if select.offset is not None:
            parts.append("OFFSET " + render_expression(select.offset))
    return " ".join(parts)


def _render_body(select: ast.Select) -> str:
    """Render a SELECT that may itself carry CTEs/order/limit (for subqueries)."""
    return render(select)


def _render_core(select: ast.Select) -> str:
    parts = ["SELECT"]
    if select.distinct:
        parts.append("DISTINCT")
    parts.append(", ".join(_render_select_item(item) for item in select.items))
    if select.from_ is not None:
        parts.append("FROM " + _render_source(select.from_))
    if select.where is not None:
        parts.append("WHERE " + render_expression(select.where))
    if select.group_by:
        parts.append(
            "GROUP BY " + ", ".join(render_expression(e) for e in select.group_by)
        )
    if select.having is not None:
        parts.append("HAVING " + render_expression(select.having))
    return " ".join(parts)


def _render_select_item(item: ast.SelectItem) -> str:
    text = render_expression(item.expr)
    if item.alias:
        return f"{text} AS {quote_identifier(item.alias)}"
    return text


def _render_order_item(item: ast.OrderItem) -> str:
    text = render_expression(item.expr)
    if item.descending:
        text += " DESC"
    if item.nulls:
        text += f" NULLS {item.nulls}"
    return text


def _render_source(source: ast.TableSource) -> str:
    if isinstance(source, ast.TableName):
        text = quote_identifier(source.name)
        if source.alias:
            text += f" AS {quote_identifier(source.alias)}"
        return text
    if isinstance(source, ast.SubquerySource):
        text = f"({render(source.select)})"
        if source.alias:
            text += f" AS {quote_identifier(source.alias)}"
        return text
    if isinstance(source, ast.IngredientSource):
        text = "{{" + _render_ingredient_content(source.ingredient) + "}}"
        if source.alias:
            text += f" AS {quote_identifier(source.alias)}"
        return text
    if isinstance(source, ast.Join):
        left = _render_source(source.left)
        right = _render_source(source.right)
        if isinstance(source.right, ast.Join):
            right = f"({right})"
        joiner = "CROSS JOIN" if source.kind == "CROSS" else f"{source.kind} JOIN"
        text = f"{left} {joiner} {right}"
        if source.on is not None:
            text += f" ON {render_expression(source.on)}"
        elif source.using:
            text += " USING (" + ", ".join(quote_identifier(c) for c in source.using) + ")"
        return text
    raise ReproError(f"cannot render table source {type(source).__name__}")


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


def render_expression(expr: ast.Expr) -> str:
    """Render an expression to SQL text with minimal parentheses."""
    text, _ = _render_expr(expr)
    return text


def _child(expr: ast.Expr, parent_level: int, *, right_assoc_guard: bool = False) -> str:
    text, level = _render_expr(expr)
    if level < parent_level or (right_assoc_guard and level == parent_level):
        return f"({text})"
    return text


def _render_expr(expr: ast.Expr) -> tuple[str, int]:
    """Return (text, precedence level) for the expression."""
    if isinstance(expr, ast.Literal):
        return _render_literal(expr), _PRIMARY_LEVEL
    if isinstance(expr, ast.ColumnRef):
        if expr.table:
            return (
                f"{quote_identifier(expr.table)}.{quote_identifier(expr.column)}",
                _PRIMARY_LEVEL,
            )
        return quote_identifier(expr.column), _PRIMARY_LEVEL
    if isinstance(expr, ast.Star):
        return (f"{quote_identifier(expr.table)}.*" if expr.table else "*"), _PRIMARY_LEVEL
    if isinstance(expr, ast.Parameter):
        return expr.name, _PRIMARY_LEVEL
    if isinstance(expr, ast.UnaryOp):
        if expr.op == "NOT":
            level = 3
            return f"NOT {_child(expr.operand, level)}", level
        text = _child(expr.operand, _UNARY_LEVEL)
        if text.startswith(expr.op):
            # avoid `--x` (a SQL comment) and `++x`; keep a separating space
            return f"{expr.op} {text}", _UNARY_LEVEL
        return f"{expr.op}{text}", _UNARY_LEVEL
    if isinstance(expr, ast.BinaryOp):
        level = _PRECEDENCE[expr.op]
        left = _child(expr.left, level)
        # All supported binary operators parse left-associatively, so a
        # right child at the same level always needs parentheses to keep
        # its grouping (`a - (b - c)`); AND/OR gain a harmless pair.
        right = _child(expr.right, level, right_assoc_guard=True)
        return f"{left} {expr.op} {right}", level
    if isinstance(expr, ast.IsNull):
        op = "IS NOT NULL" if expr.negated else "IS NULL"
        return f"{_child(expr.operand, _COMPARISON_LEVEL)} {op}", _COMPARISON_LEVEL
    if isinstance(expr, ast.Between):
        not_ = "NOT " if expr.negated else ""
        return (
            f"{_child(expr.operand, _COMPARISON_LEVEL)} {not_}BETWEEN "
            f"{_child(expr.low, 5)} AND {_child(expr.high, 5)}",
            _COMPARISON_LEVEL,
        )
    if isinstance(expr, ast.InList):
        not_ = "NOT " if expr.negated else ""
        items = ", ".join(render_expression(item) for item in expr.items)
        return (
            f"{_child(expr.operand, _COMPARISON_LEVEL)} {not_}IN ({items})",
            _COMPARISON_LEVEL,
        )
    if isinstance(expr, ast.InSubquery):
        not_ = "NOT " if expr.negated else ""
        return (
            f"{_child(expr.operand, _COMPARISON_LEVEL)} {not_}IN ({render(expr.subquery)})",
            _COMPARISON_LEVEL,
        )
    if isinstance(expr, ast.Like):
        not_ = "NOT " if expr.negated else ""
        text = (
            f"{_child(expr.operand, _COMPARISON_LEVEL)} {not_}{expr.op} "
            f"{_child(expr.pattern, 5)}"
        )
        if expr.escape is not None:
            text += f" ESCAPE {_child(expr.escape, 5)}"
        return text, _COMPARISON_LEVEL
    if isinstance(expr, ast.FuncCall):
        distinct = "DISTINCT " if expr.distinct else ""
        if not expr.args and expr.name.upper() in (
            "CURRENT_DATE",
            "CURRENT_TIME",
            "CURRENT_TIMESTAMP",
        ):
            return expr.name.upper(), _PRIMARY_LEVEL
        args = ", ".join(render_expression(a) for a in expr.args)
        return f"{expr.name}({distinct}{args})", _PRIMARY_LEVEL
    if isinstance(expr, ast.Cast):
        return (
            f"CAST({render_expression(expr.operand)} AS {expr.type_name})",
            _PRIMARY_LEVEL,
        )
    if isinstance(expr, ast.Case):
        parts = ["CASE"]
        if expr.operand is not None:
            parts.append(render_expression(expr.operand))
        for arm in expr.whens:
            parts.append(
                f"WHEN {render_expression(arm.condition)} THEN "
                f"{render_expression(arm.result)}"
            )
        if expr.else_ is not None:
            parts.append(f"ELSE {render_expression(expr.else_)}")
        parts.append("END")
        return " ".join(parts), _PRIMARY_LEVEL
    if isinstance(expr, ast.Exists):
        not_ = "NOT " if expr.negated else ""
        return f"{not_}EXISTS ({render(expr.subquery)})", _PRIMARY_LEVEL
    if isinstance(expr, ast.ScalarSubquery):
        return f"({render(expr.subquery)})", _PRIMARY_LEVEL
    if isinstance(expr, ast.ExprList):
        items = ", ".join(render_expression(item) for item in expr.items)
        return f"({items})", _PRIMARY_LEVEL
    if isinstance(expr, ast.Ingredient):
        return "{{" + _render_ingredient_content(expr) + "}}", _PRIMARY_LEVEL
    raise ReproError(f"cannot render expression {type(expr).__name__}")


def _render_literal(literal: ast.Literal) -> str:
    if literal.kind == "null":
        return "NULL"
    if literal.kind == "bool":
        return "TRUE" if literal.value else "FALSE"
    if literal.kind == "string":
        return quote_string(str(literal.value))
    value = literal.value
    if isinstance(value, float):
        return repr(value)
    return str(value)


def _render_ingredient_content(ingredient: ast.Ingredient) -> str:
    parts = [_render_ingredient_value(arg) for arg in ingredient.args]
    for key, value in ingredient.options.items():
        parts.append(f"{key}={_render_ingredient_value(value)}")
    return f"{ingredient.name}({', '.join(parts)})"


def _render_ingredient_value(value: object) -> str:
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    if isinstance(value, bool):
        return "true" if value else "false"
    if value is None:
        return "none"
    if isinstance(value, list):
        return "[" + ", ".join(_render_ingredient_value(v) for v in value) + "]"
    return str(value)
