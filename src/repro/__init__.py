"""repro — a reproduction of "Hybrid Querying Over Relational Databases
and Large Language Models" (Zhao, Agrawal, El Abbadi; CIDR 2025).

Subpackages:

- :mod:`repro.swan` — the SWAN benchmark: four curated databases and 120
  beyond-database questions.
- :mod:`repro.core` — HQDL, the schema-expansion solution.
- :mod:`repro.udf` — Hybrid Query UDFs, the BlendSQL-equivalent engine.
- :mod:`repro.llm` — the simulated LLM stack (models, oracle, tokens).
- :mod:`repro.sqlparser` / :mod:`repro.sqlengine` — SQL front end and
  SQLite storage wrapper.
- :mod:`repro.eval` — execution accuracy, factuality F1, reporting.
- :mod:`repro.harness` — experiment runners; ``python -m repro.harness``
  regenerates every table and figure in the paper.
- :mod:`repro.auto` / :mod:`repro.retrieval` — the paper's future-work
  directions: automated hybrid-query planning and vector-index context
  retrieval.

Quick start::

    from repro.swan import load_benchmark
    swan = load_benchmark()
    print(swan.question("superhero_q01").blend_sql)
"""

from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = ["ReproError", "__version__"]
