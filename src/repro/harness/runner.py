"""Experiment runners for the HQDL and HQ UDFs pipelines.

Each runner executes one (model, shots) configuration over the requested
SWAN databases, returning per-database EX, factuality (HQDL), and token
usage.  Gold results are computed once per benchmark via
:class:`GoldResults` and shared across configurations.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Sequence, TypeVar, Union

from repro.core.hqdl import HQDL, GenerationResult
from repro.errors import ReproError
from repro.llm.client import ChatClient
from repro.eval.execution import (
    ExecutionOutcome,
    evaluate_question,
    execution_accuracy,
    failed_outcome,
)
from repro.eval.factuality import database_factuality
from repro.llm.cache import PromptCache
from repro.llm.chat import MockChatModel
from repro.llm.diskcache import PersistentClient, PersistentPromptCache
from repro.llm.oracle import KnowledgeOracle
from repro.llm.faults import FaultInjector, FaultPlan, FaultyClient
from repro.llm.parallel import SimulatedClock
from repro.llm.procpool import SharedProcessPool
from repro.llm.profiles import get_profile
from repro.llm.resilience import (
    CircuitBreaker,
    ResilienceReport,
    RetryingClient,
    RetryPolicy,
)
from repro.llm.batching import parallel_makespan
from repro.llm.usage import Usage, UsageMeter
from repro.obs import NULL_PROVENANCE, NULL_TELEMETRY, MetricsRegistry, Telemetry
from repro.obs.ledger import RunLedger
from repro.obs.trace import NULL_SPAN
from repro.plan import CallPlanner, MappingStore
from repro.sqlengine.results import ResultSet
from repro.swan.benchmark import Swan
from repro.swan.build import build_curated_database, build_original_database
from repro.udf.executor import HybridQueryExecutor

_T = TypeVar("_T")


def _resolve_databases(
    swan: Swan, databases: Optional[Sequence[str]]
) -> list[str]:
    """Validate requested database names up front, with a clear error."""
    valid = swan.database_names()
    if databases is None:
        return valid
    names = list(databases)
    unknown = [name for name in names if name not in valid]
    if unknown:
        raise ReproError(
            f"unknown database name(s): {', '.join(repr(n) for n in unknown)}; "
            f"valid names are: {', '.join(valid)}"
        )
    return names


def _map_databases(
    names: Sequence[str],
    db_workers: int,
    task: Callable[[str], _T],
) -> list[_T]:
    """Run ``task`` per database, optionally in parallel, in name order.

    Results always come back in the order of ``names``, so aggregation
    downstream is deterministic regardless of completion order.
    """
    if db_workers < 1:
        raise ValueError(f"db_workers must be >= 1, got {db_workers}")
    if db_workers == 1 or len(names) <= 1:
        return [task(name) for name in names]
    with ThreadPoolExecutor(max_workers=min(db_workers, len(names))) as pool:
        futures = [pool.submit(task, name) for name in names]
        return [future.result() for future in futures]


class GoldResults:
    """Gold (expected) results for every question, computed once."""

    def __init__(self, swan: Swan) -> None:
        self.swan = swan
        self._by_qid: dict[str, ResultSet] = {}
        for name in swan.database_names():
            with build_original_database(swan.world(name)) as db:
                for question in swan.questions_for(name):
                    self._by_qid[question.qid] = db.query(question.gold_sql)

    def expected(self, qid: str) -> ResultSet:
        try:
            return self._by_qid[qid]
        except KeyError as exc:
            raise ReproError(f"no gold result for question {qid!r}") from exc


@dataclass
class HQDLRun:
    """Results of one HQDL configuration (model × shots)."""

    model: str
    shots: int
    ex_by_db: dict[str, float] = field(default_factory=dict)
    f1_by_db: dict[str, float] = field(default_factory=dict)
    outcomes: list[ExecutionOutcome] = field(default_factory=list)
    usage: Usage = field(default_factory=Usage)
    generations: dict[str, GenerationResult] = field(default_factory=dict)
    #: per-database PersistentPromptCache stats when ``cache_dir`` was set
    persistent: dict[str, dict] = field(default_factory=dict)

    @property
    def overall_ex(self) -> float:
        return execution_accuracy(self.outcomes)

    @property
    def average_f1(self) -> float:
        if not self.f1_by_db:
            return 0.0
        return sum(self.f1_by_db.values()) / len(self.f1_by_db)


@dataclass
class UDFRun:
    """Results of one HQ UDFs configuration."""

    model: str
    shots: int
    batch_size: int
    pushdown: bool
    ex_by_db: dict[str, float] = field(default_factory=dict)
    outcomes: list[ExecutionOutcome] = field(default_factory=list)
    usage: Usage = field(default_factory=Usage)
    cache_hits: int = 0
    cache_misses: int = 0
    #: which planning mode ran before the questions, if any
    plan: Optional[str] = None
    #: per-database PlanStats records (collection/dedup/dispatch accounting)
    plan_stats: dict[str, dict] = field(default_factory=dict)
    #: per-database PersistentPromptCache stats when ``cache_dir`` was set
    persistent: dict[str, dict] = field(default_factory=dict)
    #: (input, output) token sizes of every *paid* LLM call in the run —
    #: planner dispatch plus question-time calls — for virtual makespans
    call_sizes: list[tuple[int, int]] = field(default_factory=list)
    #: non-NULL mapping/join keys materialized across all questions —
    #: the denominator provenance completeness is checked against
    keys_generated: int = 0

    @property
    def overall_ex(self) -> float:
        return execution_accuracy(self.outcomes)

    @property
    def persistent_hits(self) -> int:
        return sum(s.get("hits", 0) for s in self.persistent.values())

    @property
    def persistent_misses(self) -> int:
        return sum(s.get("misses", 0) for s in self.persistent.values())


def _append_run(
    ledger: RunLedger,
    *,
    label: str,
    pipeline: str,
    config: dict,
    ex: float,
    f1: Optional[float],
    usage: Usage,
    makespan: Optional[float],
    telemetry: Optional[Telemetry],
    provenance,
) -> int:
    """Append one finished run to the ledger, with whatever context exists.

    The payload carries the telemetry counter snapshot and provenance
    stats when those subsystems ran enabled; the regression-gated scalars
    always land in typed columns.
    """
    payload: dict = {}
    snapshot = _metrics_snapshot(telemetry)
    if snapshot is not None:
        payload["metrics"] = snapshot
    if provenance is not None and provenance.enabled:
        payload["provenance"] = provenance.stats()
    return ledger.append(
        label=label,
        pipeline=pipeline,
        config=config,
        ex=round(ex, 6),
        f1=round(f1, 6) if f1 is not None else None,
        llm_calls=usage.calls,
        input_tokens=usage.input_tokens,
        output_tokens=usage.output_tokens,
        makespan=round(makespan, 6) if makespan is not None else None,
        payload=payload,
    )


def run_hqdl(
    swan: Swan,
    model_name: str,
    shots: int,
    *,
    databases: Optional[Sequence[str]] = None,
    gold: Optional[GoldResults] = None,
    workers: int = 1,
    db_workers: int = 1,
    wrap_client: Optional[Callable[[ChatClient], ChatClient]] = None,
    resilience: Optional[ResilienceReport] = None,
    telemetry: Optional[Telemetry] = None,
    cache_dir: Optional[Union[str, Path]] = None,
    call_order: str = "collection",
    parallelism: str = "threads",
    optimize: bool = True,
    provenance=None,
    ledger: Optional[RunLedger] = None,
    ledger_label: str = "hqdl",
) -> HQDLRun:
    """Run HQDL for one (model, shots) configuration.

    Generation happens once per database and is reused by all 30 of its
    questions (HQDL's materialization advantage, Section 5.5).

    ``workers`` parallelizes row-generation calls within each database;
    ``db_workers`` runs whole databases concurrently.  Results and token
    totals are identical at any setting — only wall-clock time changes.

    ``wrap_client`` decorates each database's model before the pipeline
    sees it (fault injection, retry layers); ``resilience`` collects the
    degraded-row accounting those layers produce; ``telemetry`` records
    spans and metrics without perturbing any result.

    ``cache_dir`` adds a per-database :class:`PersistentPromptCache` so
    a rerun with the same directory regenerates every table from disk
    with zero new LLM calls (generation is already once-per-database, so
    HQDL needs no planner).  ``call_order="lpt"`` dispatches generation
    calls longest-first (identical results, shorter parallel makespan).

    ``parallelism="processes"`` completes prompts in one
    :class:`~repro.llm.procpool.SharedProcessPool` of ``workers``
    processes serving every database of the run — byte-identical
    results, but the CPU-bound model simulation no longer serializes on
    the GIL, and ``db_workers`` composes without multiplying the process
    count.  ``optimize=False`` disables the byte-identical prompt fast
    paths (the bench-scale 'pre-optimization' reference).
    """
    if parallelism not in ("threads", "processes"):
        raise ReproError(
            f"parallelism must be 'threads' or 'processes', got {parallelism!r}"
        )
    gold = gold or GoldResults(swan)
    names = _resolve_databases(swan, databases)
    profile = get_profile(model_name)
    run = HQDLRun(model=model_name, shots=shots)
    meter = UsageMeter()
    tel = telemetry if telemetry is not None else NULL_TELEMETRY
    prov = provenance if provenance is not None else NULL_PROVENANCE
    shared_pool = (
        SharedProcessPool(processes=workers)
        if parallelism == "processes"
        else None
    )

    with (
        tel.tracer.span("run", pipeline="hqdl", model=model_name, shots=shots)
        if tel.enabled
        else NULL_SPAN
    ) as run_span:

        def _one_database(name: str):
            with (
                tel.tracer.span("database", parent=run_span, database=name)
                if tel.enabled
                else NULL_SPAN
            ), prov.context(pipeline="hqdl", database=name):
                world = swan.world(name)
                if shared_pool is not None:
                    model: ChatClient = shared_pool.client_for(
                        world, model_name, meter=meter, optimize=optimize
                    )
                else:
                    model = MockChatModel(
                        KnowledgeOracle(world, optimize=optimize), profile,
                        meter=meter, optimize=optimize,
                    )
                if wrap_client is not None:
                    model = wrap_client(model)
                disk_cache = None
                if cache_dir is not None:
                    disk_cache = PersistentPromptCache(
                        Path(cache_dir) / f"{name}.sqlite"
                    )
                    model = PersistentClient(
                        model, disk_cache, shots=shots, telemetry=tel,
                        provenance=prov,
                    )
                pipeline = HQDL(
                    world, model, shots=shots, workers=workers,
                    call_order=call_order, resilience=resilience,
                    telemetry=tel, provenance=prov, optimize=optimize,
                )
                generation = pipeline.generate_all()
                f1 = database_factuality(world, generation)
                db_outcomes: list[ExecutionOutcome] = []
                with pipeline.build_expanded_database(generation) as db:
                    for question in swan.questions_for(name):
                        expected = gold.expected(question.qid)
                        with (
                            tel.tracer.span("question", qid=question.qid)
                            if tel.enabled
                            else NULL_SPAN
                        ) as qspan, prov.context(qid=question.qid):
                            try:
                                actual = pipeline.answer(db, question)
                            except ReproError as exc:
                                outcome = failed_outcome(
                                    question, expected, str(exc)
                                )
                            else:
                                outcome = evaluate_question(
                                    question, expected, actual
                                )
                            qspan.set("correct", outcome.correct)
                        db_outcomes.append(outcome)
                disk_stats = None
                if disk_cache is not None:
                    disk_stats = disk_cache.stats()
                    disk_cache.close()
                return generation, f1, disk_stats, db_outcomes

        try:
            for name, (generation, f1, disk_stats, db_outcomes) in zip(
                names, _map_databases(names, db_workers, _one_database)
            ):
                run.generations[name] = generation
                run.f1_by_db[name] = f1
                if disk_stats is not None:
                    run.persistent[name] = disk_stats
                run.ex_by_db[name] = execution_accuracy(db_outcomes)
                run.outcomes.extend(db_outcomes)
        finally:
            if shared_pool is not None:
                shared_pool.close()
        run.usage = meter.total
        if tel.enabled:
            run_span.set("ex", round(run.overall_ex, 4))
    if ledger is not None:
        _append_run(
            ledger,
            label=ledger_label,
            pipeline="hqdl",
            config={
                "pipeline": "hqdl",
                "model": model_name,
                "shots": shots,
                "databases": sorted(names),
                "workers": workers,
                "call_order": call_order,
                **({"parallelism": parallelism} if parallelism != "threads" else {}),
            },
            ex=run.overall_ex,
            f1=run.average_f1,
            usage=run.usage,
            makespan=None,
            telemetry=telemetry,
            provenance=prov,
        )
    return run


def run_udf(
    swan: Swan,
    model_name: str,
    shots: int,
    *,
    batch_size: int = 5,
    pushdown: bool = True,
    databases: Optional[Sequence[str]] = None,
    gold: Optional[GoldResults] = None,
    workers: int = 1,
    db_workers: int = 1,
    wrap_client: Optional[Callable[[ChatClient], ChatClient]] = None,
    resilience: Optional[ResilienceReport] = None,
    telemetry: Optional[Telemetry] = None,
    plan: Optional[str] = None,
    cache_dir: Optional[Union[str, Path]] = None,
    batch_policy: Optional[object] = None,
    parallelism: str = "threads",
    optimize: bool = True,
    provenance=None,
    ledger: Optional[RunLedger] = None,
    ledger_label: str = "udf",
) -> UDFRun:
    """Run Hybrid Query UDFs for one configuration.

    One prompt cache per database is shared across its 30 questions —
    reuse happens only on byte-identical prompts, the BlendSQL semantics
    the paper's Section 5.5 cost analysis hinges on.

    ``workers`` parallelizes each executor's batched LLM calls;
    ``db_workers`` runs whole databases concurrently (each worker owns
    its database connection, model, and prompt cache).  Results and
    token totals are identical at any setting.

    ``wrap_client`` decorates each database's model before the executor
    wraps it in the prompt cache (fault injection, retry layers);
    ``resilience`` collects the degraded-batch accounting; ``telemetry``
    records spans and metrics without perturbing any result.

    ``plan`` runs a :class:`~repro.plan.CallPlanner` pass over all of a
    database's questions before executing any of them: ``"prompt"``
    pre-pays the exact execution prompts (results and Usage totals stay
    byte-identical to ``plan=None``); ``"pairs"`` unions (attribute,
    key) pairs across questions and serves executions from the shared
    mapping store (fewest calls, answers may drift within model noise).
    ``cache_dir`` adds a per-database :class:`PersistentPromptCache`
    under the executor's in-memory cache, so a rerun with the same
    directory issues zero new LLM calls.  ``batch_policy`` overrides the
    fixed ``batch_size`` (see :mod:`repro.plan.policy`).

    ``parallelism="processes"`` completes prompts in one
    :class:`~repro.llm.procpool.SharedProcessPool` of ``workers``
    processes serving every database of the run — byte-identical
    results, but the CPU-bound model simulation no longer serializes on
    the GIL, and ``db_workers`` composes without multiplying the process
    count.  ``optimize=False`` disables the byte-identical executor fast
    paths (the bench-scale 'pre-optimization' reference).
    """
    if plan not in (None, "prompt", "pairs"):
        raise ReproError(
            f"plan must be None, 'prompt', or 'pairs', got {plan!r}"
        )
    if parallelism not in ("threads", "processes"):
        raise ReproError(
            f"parallelism must be 'threads' or 'processes', got {parallelism!r}"
        )
    gold = gold or GoldResults(swan)
    names = _resolve_databases(swan, databases)
    profile = get_profile(model_name)
    run = UDFRun(
        model=model_name, shots=shots, batch_size=batch_size,
        pushdown=pushdown, plan=plan,
    )
    meter = UsageMeter()
    tel = telemetry if telemetry is not None else NULL_TELEMETRY
    prov = provenance if provenance is not None else NULL_PROVENANCE
    shared_pool = (
        SharedProcessPool(processes=workers)
        if parallelism == "processes"
        else None
    )

    with (
        tel.tracer.span("run", pipeline="udf", model=model_name, shots=shots)
        if tel.enabled
        else NULL_SPAN
    ) as run_span:

        def _one_database(name: str):
            with (
                tel.tracer.span("database", parent=run_span, database=name)
                if tel.enabled
                else NULL_SPAN
            ), prov.context(pipeline="udf", database=name):
                world = swan.world(name)
                if shared_pool is not None:
                    model: ChatClient = shared_pool.client_for(
                        world, model_name, meter=meter, optimize=optimize
                    )
                else:
                    model = MockChatModel(
                        KnowledgeOracle(world, optimize=optimize), profile,
                        meter=meter, optimize=optimize,
                    )
                if wrap_client is not None:
                    model = wrap_client(model)
                disk_cache = None
                if cache_dir is not None:
                    disk_cache = PersistentPromptCache(
                        Path(cache_dir) / f"{name}.sqlite"
                    )
                    model = PersistentClient(
                        model, disk_cache, shots=shots, telemetry=tel,
                        provenance=prov,
                    )
                cache = PromptCache()
                store = MappingStore() if plan == "pairs" else None
                db_outcomes: list[ExecutionOutcome] = []
                call_sizes: list[tuple[int, int]] = []
                keys_generated = 0
                plan_record: Optional[dict] = None
                with build_curated_database(world) as db:
                    executor = HybridQueryExecutor(
                        db,
                        model,
                        world,
                        batch_size=batch_size,
                        pushdown=pushdown,
                        shots=shots,
                        cache=cache,
                        workers=workers,
                        resilience=resilience,
                        telemetry=tel,
                        batch_policy=batch_policy,
                        mapping_store=store,
                        provenance=prov,
                        optimize=optimize,
                    )
                    questions = swan.questions_for(name)
                    if plan is not None:
                        planner = CallPlanner(
                            executor, mode=plan, telemetry=tel
                        )
                        planned = planner.plan_and_execute(
                            [q.blend_sql for q in questions]
                        )
                        call_sizes.extend(planned.stats.call_sizes)
                        plan_record = planned.stats.as_record()
                    for question in questions:
                        expected = gold.expected(question.qid)
                        with (
                            tel.tracer.span("question", qid=question.qid)
                            if tel.enabled
                            else NULL_SPAN
                        ) as qspan, prov.context(qid=question.qid):
                            try:
                                actual, question_report = (
                                    executor.execute_with_report(
                                        question.blend_sql
                                    )
                                )
                            except ReproError as exc:
                                outcome = failed_outcome(
                                    question, expected, str(exc)
                                )
                            else:
                                outcome = evaluate_question(
                                    question, expected, actual
                                )
                                call_sizes.extend(question_report.call_sizes)
                                keys_generated += (
                                    question_report.keys_generated
                                )
                            qspan.set("correct", outcome.correct)
                        db_outcomes.append(outcome)
                disk_stats = None
                if disk_cache is not None:
                    disk_stats = disk_cache.stats()
                    disk_cache.close()
                return (
                    cache, plan_record, disk_stats, call_sizes,
                    keys_generated, db_outcomes,
                )

        try:
            for name, (
                cache, plan_record, disk_stats, call_sizes, keys_generated,
                db_outcomes,
            ) in zip(names, _map_databases(names, db_workers, _one_database)):
                run.cache_hits += cache.hits
                run.cache_misses += cache.misses
                if plan_record is not None:
                    run.plan_stats[name] = plan_record
                if disk_stats is not None:
                    run.persistent[name] = disk_stats
                run.call_sizes.extend(call_sizes)
                run.keys_generated += keys_generated
                run.ex_by_db[name] = execution_accuracy(db_outcomes)
                run.outcomes.extend(db_outcomes)
        finally:
            if shared_pool is not None:
                shared_pool.close()
        run.usage = meter.total
        if tel.enabled:
            run_span.set("ex", round(run.overall_ex, 4))
    if ledger is not None:
        _append_run(
            ledger,
            label=ledger_label,
            pipeline="udf",
            config={
                "pipeline": "udf",
                "model": model_name,
                "shots": shots,
                "databases": sorted(names),
                "batch_size": batch_size,
                "pushdown": pushdown,
                "plan": plan,
                "workers": workers,
                **({"parallelism": parallelism} if parallelism != "threads" else {}),
            },
            ex=run.overall_ex,
            f1=None,
            usage=run.usage,
            makespan=parallel_makespan(run.call_sizes, max(workers, 1)),
            telemetry=telemetry,
            provenance=prov,
        )
    return run


# -- chaos engineering ------------------------------------------------------------


@dataclass
class ChaosRun:
    """One pipeline run under fault injection.

    ``ex``/``f1`` are the accuracy under faults; ``resilience`` accounts
    for every attempt (``attempts == successes + retries + exhausted +
    fatal``) and ``faults_injected`` breaks the injected faults down by
    kind.
    """

    pipeline: str
    fault_rate: float
    seed: int
    retries: bool
    ex: float
    f1: Optional[float]
    usage: Usage
    resilience: ResilienceReport
    faults_injected: dict[str, int]
    fault_decisions: int
    breaker_trips: int = 0
    #: telemetry snapshot (``MetricsRegistry.snapshot()``) when the run
    #: was executed with metrics enabled; None otherwise
    metrics: Optional[dict] = None

    def as_record(self) -> dict:
        """A flat dict for tables and BENCH JSON."""
        counters = self.resilience.as_dict()
        record = {
            "pipeline": self.pipeline,
            "fault_rate": round(self.fault_rate, 4),
            "retries": self.retries,
            "ex": round(self.ex, 4),
            "f1": round(self.f1, 4) if self.f1 is not None else None,
            "faults_injected": sum(self.faults_injected.values()),
            **counters,
        }
        if self.metrics is not None:
            record["cache_hits"] = self.metrics.get("llm.cache.hits", 0)
            record["cache_misses"] = self.metrics.get("llm.cache.misses", 0)
            record["single_flight_joins"] = self.metrics.get(
                "llm.cache.single_flight_joins", 0
            )
            record["max_in_flight"] = self.metrics.get("dispatch.in_flight.max", 0)
            record["backoff_seconds_total"] = round(
                float(self.metrics.get("llm.retry.backoff_seconds_total", 0)), 4
            )
        return record


def build_resilient_stack(
    model: ChatClient,
    *,
    plan: FaultPlan,
    injector: Optional[FaultInjector] = None,
    policy: Optional[RetryPolicy] = None,
    clock: Optional[SimulatedClock] = None,
    breaker: Optional[CircuitBreaker] = None,
    report: Optional[ResilienceReport] = None,
    telemetry: Optional[Telemetry] = None,
    provenance=None,
) -> RetryingClient:
    """model -> FaultyClient -> RetryingClient, the chaos-run stack.

    The cache layer goes *on top* (the executor adds it), so cache hits
    bypass both the faults and the retry budget — exactly the layering a
    production deployment would use.
    """
    injector = injector if injector is not None else FaultInjector(plan)
    faulty = FaultyClient(model, injector)
    return RetryingClient(
        faulty,
        policy,
        clock=clock if clock is not None else SimulatedClock(),
        breaker=breaker,
        report=report,
        telemetry=telemetry,
        provenance=provenance,
    )


def _metrics_snapshot(telemetry: Optional[Telemetry]) -> Optional[dict]:
    """The registry snapshot of an enabled telemetry handle, else None."""
    if telemetry is None or not getattr(telemetry.metrics, "enabled", False):
        return None
    return telemetry.metrics.snapshot()


def _chaos_pieces(
    fault_rate: float,
    seed: int,
    retries: bool,
    plan: Optional[FaultPlan],
    policy: Optional[RetryPolicy],
):
    """The shared injector/report/clock/policy of one chaos run."""
    plan = plan if plan is not None else FaultPlan.uniform(fault_rate, seed=seed)
    injector = FaultInjector(plan)
    report = ResilienceReport()
    clock = SimulatedClock()
    if policy is None:
        # without retries every transient failure exhausts immediately,
        # but the attempt accounting stays identical in shape
        policy = RetryPolicy(seed=seed) if retries else RetryPolicy(
            max_attempts=1, seed=seed
        )
    return plan, injector, report, clock, policy


def run_udf_chaos(
    swan: Swan,
    model_name: str,
    shots: int,
    *,
    fault_rate: float,
    seed: int = 0,
    retries: bool = True,
    plan: Optional[FaultPlan] = None,
    policy: Optional[RetryPolicy] = None,
    breaker: Optional[CircuitBreaker] = None,
    batch_size: int = 5,
    pushdown: bool = True,
    databases: Optional[Sequence[str]] = None,
    gold: Optional[GoldResults] = None,
    workers: int = 1,
    db_workers: int = 1,
    telemetry: Optional[Telemetry] = None,
    provenance=None,
    ledger: Optional[RunLedger] = None,
) -> ChaosRun:
    """Run HQ UDFs with fault injection and a resilient dispatch stack.

    At ``fault_rate=0`` the stack is a byte-exact pass-through: results,
    Usage totals, and cache statistics match :func:`run_udf` exactly.
    Backoff waits happen on a :class:`SimulatedClock` — no real sleeping.
    """
    plan, injector, report, clock, policy = _chaos_pieces(
        fault_rate, seed, retries, plan, policy
    )

    def wrap(model: ChatClient) -> ChatClient:
        return build_resilient_stack(
            model, plan=plan, injector=injector, policy=policy,
            clock=clock, breaker=breaker, report=report, telemetry=telemetry,
            provenance=provenance,
        )

    run = run_udf(
        swan, model_name, shots,
        batch_size=batch_size, pushdown=pushdown, databases=databases,
        gold=gold, workers=workers, db_workers=db_workers,
        wrap_client=wrap, resilience=report, telemetry=telemetry,
        provenance=provenance, ledger=ledger, ledger_label="udf-chaos",
    )
    return ChaosRun(
        pipeline="udf",
        fault_rate=fault_rate,
        seed=seed,
        retries=retries,
        ex=run.overall_ex,
        f1=None,
        usage=run.usage,
        resilience=report,
        faults_injected=injector.stats.snapshot(),
        fault_decisions=injector.stats.decisions,
        breaker_trips=breaker.trips if breaker is not None else 0,
        metrics=_metrics_snapshot(telemetry),
    )


def run_hqdl_chaos(
    swan: Swan,
    model_name: str,
    shots: int,
    *,
    fault_rate: float,
    seed: int = 0,
    retries: bool = True,
    plan: Optional[FaultPlan] = None,
    policy: Optional[RetryPolicy] = None,
    breaker: Optional[CircuitBreaker] = None,
    databases: Optional[Sequence[str]] = None,
    gold: Optional[GoldResults] = None,
    workers: int = 1,
    db_workers: int = 1,
    telemetry: Optional[Telemetry] = None,
    provenance=None,
    ledger: Optional[RunLedger] = None,
) -> ChaosRun:
    """Run HQDL with fault injection; degraded rows materialize as NULLs."""
    plan, injector, report, clock, policy = _chaos_pieces(
        fault_rate, seed, retries, plan, policy
    )

    def wrap(model: ChatClient) -> ChatClient:
        return build_resilient_stack(
            model, plan=plan, injector=injector, policy=policy,
            clock=clock, breaker=breaker, report=report, telemetry=telemetry,
            provenance=provenance,
        )

    run = run_hqdl(
        swan, model_name, shots,
        databases=databases, gold=gold, workers=workers,
        db_workers=db_workers, wrap_client=wrap, resilience=report,
        telemetry=telemetry,
        provenance=provenance, ledger=ledger, ledger_label="hqdl-chaos",
    )
    return ChaosRun(
        pipeline="hqdl",
        fault_rate=fault_rate,
        seed=seed,
        retries=retries,
        ex=run.overall_ex,
        f1=run.average_f1,
        usage=run.usage,
        resilience=report,
        faults_injected=injector.stats.snapshot(),
        fault_decisions=injector.stats.decisions,
        breaker_trips=breaker.trips if breaker is not None else 0,
        metrics=_metrics_snapshot(telemetry),
    )


def chaos_sweep(
    swan: Swan,
    model_name: str = "gpt-3.5-turbo",
    shots: int = 0,
    *,
    fault_rates: Sequence[float] = (0.0, 0.1, 0.3, 0.5),
    seed: int = 0,
    retries: bool = True,
    databases: Optional[Sequence[str]] = None,
    gold: Optional[GoldResults] = None,
    with_metrics: bool = False,
) -> list[ChaosRun]:
    """EX/F1 degradation vs fault intensity for both pipelines.

    Each (pipeline, rate) point gets a fresh injector and report so the
    points are independent; gold results are computed once and shared.
    With ``with_metrics=True`` every point also runs with its own
    :class:`~repro.obs.MetricsRegistry` and carries the snapshot in
    :attr:`ChaosRun.metrics` (cache, single-flight, occupancy, backoff).
    """
    gold = gold or GoldResults(swan)

    def _telemetry() -> Optional[Telemetry]:
        return Telemetry(metrics=MetricsRegistry()) if with_metrics else None

    runs: list[ChaosRun] = []
    for rate in fault_rates:
        runs.append(
            run_udf_chaos(
                swan, model_name, shots, fault_rate=rate, seed=seed,
                retries=retries, databases=databases, gold=gold,
                telemetry=_telemetry(),
            )
        )
        runs.append(
            run_hqdl_chaos(
                swan, model_name, shots, fault_rate=rate, seed=seed,
                retries=retries, databases=databases, gold=gold,
                telemetry=_telemetry(),
            )
        )
    return runs
