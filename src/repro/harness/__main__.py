"""CLI: regenerate any paper table or figure.

Usage::

    python -m repro.harness table1
    python -m repro.harness table2 table4
    python -m repro.harness all
    python -m repro.harness trace --databases=superhero --workers=4
    python -m repro.harness bench-cache --databases=superhero --batch-size=5
"""

from __future__ import annotations

import sys

from repro.harness import tables


def _planner_report() -> tuple[list[dict], str]:
    """Coverage report for the automated planner (Section 6 future work)."""
    from repro.auto.planner import evaluate_planner
    from repro.eval.report import format_table
    from repro.swan.benchmark import load_benchmark

    report = evaluate_planner(load_benchmark())
    records = [
        {
            "total": report.total,
            "planned": report.planned,
            "coverage": report.coverage,
            "correct": report.correct,
            "planned_accuracy": report.planned_accuracy,
        }
    ]
    text = format_table(
        ["Questions", "Planned", "Coverage", "Correct", "Planned accuracy"],
        [[report.total, report.planned, f"{report.coverage * 100:.0f}%",
          report.correct, f"{report.planned_accuracy * 100:.0f}%"]],
        title="Automated NL -> hybrid query planner on SWAN (perfect model).",
    )
    return records, text


def _validation_report() -> tuple[list[dict], str]:
    """Benchmark self-check: gold/HQDL/UDF agreement under a perfect model."""
    from repro.swan.benchmark import load_benchmark
    from repro.swan.validate import validate_swan

    report = validate_swan(load_benchmark())
    records = [
        {
            "questions": report.questions,
            "consistent": report.consistent,
            "issues": len(report.issues),
        }
    ]
    return records, report.summary()


def _cost_report() -> tuple[list[dict], str]:
    """Section 5.5 style cost/latency/throughput for both pipelines."""
    from repro.eval.costs import estimate_costs
    from repro.harness.runner import GoldResults, run_hqdl, run_udf
    from repro.swan.benchmark import load_benchmark

    swan = load_benchmark()
    gold = GoldResults(swan)
    hqdl = run_hqdl(swan, "gpt-3.5-turbo", 0, gold=gold)
    udf = run_udf(swan, "gpt-3.5-turbo", 0, gold=gold)
    reports = {
        "HQDL": estimate_costs(hqdl.usage, "gpt-3.5-turbo", questions=120),
        "HQ UDFs": estimate_costs(udf.usage, "gpt-3.5-turbo", questions=120),
    }
    records = [
        {"algorithm": name, "dollars": r.dollars,
         "sequential_s": r.sequential_latency_s,
         "parallel_s": r.parallel_latency_s}
        for name, r in reports.items()
    ]
    text = "\n\n".join(f"== {name} ==\n{r.summary()}" for name, r in reports.items())
    return records, text


def _error_report() -> tuple[list[dict], str]:
    """Section 5.3-style failure analysis for the headline configuration."""
    from repro.eval.breakdown import analyze_run
    from repro.harness.runner import GoldResults, run_hqdl
    from repro.swan.benchmark import load_benchmark

    swan = load_benchmark()
    run = run_hqdl(swan, "gpt-4-turbo", 5, gold=GoldResults(swan))
    breakdown = analyze_run(swan, run)
    records = [
        {
            "model": breakdown.model,
            "shots": breakdown.shots,
            "failures": breakdown.failures,
            "limit_failure_rate": breakdown.limit_failure_rate(),
            "scan_failure_rate": breakdown.scan_failure_rate(),
        }
    ]
    return records, breakdown.render()


def _bench_json_report() -> tuple[list[dict], str]:
    """Measured parallel-dispatch makespans, written to BENCH_parallel.json."""
    from repro.eval.report import format_table
    from repro.harness.benchjson import write_bench_json

    path, payload = write_bench_json()
    rows = [["1 (sequential)", f"{payload['sequential_seconds']:.1f} s", "-", "1.0x"]]
    for workers, entry in payload["workers"].items():
        rows.append(
            [
                workers,
                f"{entry['measured_seconds']:.1f} s",
                f"{entry['analytical_seconds']:.1f} s",
                f"{entry['speedup_vs_sequential']:.1f}x",
            ]
        )
    text = format_table(
        ["Workers", "Measured", "Analytical", "Speedup"],
        rows,
        title=f"Parallel dispatch makespans over {payload['llm_calls']} "
              f"batched calls (also written to {path}).",
    )
    return [payload], text


def _chaos_report() -> tuple[list[dict], str]:
    """EX/F1 degradation vs fault intensity (written to BENCH_chaos.json)."""
    from repro.eval.report import format_table
    from repro.harness.benchjson import write_chaos_json

    path, payload = write_chaos_json()
    rows = []
    for point in payload["points"]:
        rows.append(
            [
                point["pipeline"],
                f"{point['fault_rate'] * 100:.0f}%",
                f"{point['ex'] * 100:.1f}%",
                f"{point['f1'] * 100:.1f}%" if point["f1"] is not None else "-",
                f"{point['ex_recovered_vs_baseline'] * 100:.1f}%",
                point["attempts"],
                point["retries"],
                point["exhausted"],
                point["degraded_rows"],
                "yes" if point["accounted"] else "NO",
            ]
        )
    text = format_table(
        ["Pipeline", "Fault rate", "EX", "F1", "EX vs baseline",
         "Attempts", "Retries", "Exhausted", "Degraded rows", "Accounted"],
        rows,
        title=f"SWAN under fault injection with retries="
              f"{payload['retries']} (also written to {path}).",
    )
    return payload["points"], text


def _sweep_report() -> tuple[list[dict], str]:
    """The raw (method × model × shots × database) grid behind the tables."""
    from repro.eval.report import format_records
    from repro.harness.sweep import run_sweep, write_csv
    from repro.swan.benchmark import load_benchmark

    records = run_sweep(load_benchmark())
    rows = [record.as_row() for record in records]
    path = write_csv(records, "sweep.csv")
    text = format_records(rows, title=f"Full experiment grid (also written to {path}).")
    return rows, text


def _trace_report(
    databases=None, workers=None, scale=None
) -> tuple[list[dict], str]:
    """Traced SWAN run for both pipelines (written to BENCH_trace.json)."""
    from repro.harness.tracing import format_trace_report, write_trace_json

    paths, payload = write_trace_json(
        databases=databases, workers=workers or 1, scale=scale or 1,
    )
    return [payload], format_trace_report(payload, paths)


def _load_scaled(scale, databases):
    from repro.swan.benchmark import load_benchmark, load_benchmark_subset

    scale = scale or 1
    if databases:
        return load_benchmark_subset(scale, list(databases))
    return load_benchmark(scale)


def _run_report(run, *, pipeline: str, scale: int, parallelism: str) -> str:
    from repro.eval.report import format_table

    rows = [
        [db, f"{ex * 100:.1f}%"] for db, ex in sorted(run.ex_by_db.items())
    ]
    rows.append(["overall", f"{run.overall_ex * 100:.1f}%"])
    usage = run.usage
    title = (
        f"{pipeline.upper()} run — {run.model}, {run.shots}-shot, "
        f"scale={scale}, parallelism={parallelism}; {usage.calls} LLM "
        f"calls, {usage.input_tokens}/{usage.output_tokens} in/out tokens."
    )
    return format_table(["Database", "EX"], rows, title=title)


def _run_udf_report(
    databases=None, workers=None, scale=None,
    parallelism: str = "threads", batch_size: int = 5,
) -> tuple[list[dict], str]:
    """One UDF-pipeline run at the requested scale and parallelism."""
    from repro.harness.runner import GoldResults, run_udf

    swan = _load_scaled(scale, databases)
    run = run_udf(
        swan, "gpt-3.5-turbo", 2, gold=GoldResults(swan),
        workers=workers or 1, batch_size=batch_size, parallelism=parallelism,
    )
    record = {
        "pipeline": "udf", "scale": scale or 1, "parallelism": parallelism,
        "ex": run.overall_ex, "llm_calls": run.usage.calls,
    }
    return [record], _run_report(
        run, pipeline="udf", scale=scale or 1, parallelism=parallelism,
    )


def _run_hqdl_report(
    databases=None, workers=None, scale=None,
    parallelism: str = "threads",
) -> tuple[list[dict], str]:
    """One HQDL-pipeline run at the requested scale and parallelism."""
    from repro.harness.runner import GoldResults, run_hqdl

    swan = _load_scaled(scale, databases)
    run = run_hqdl(
        swan, "gpt-3.5-turbo", 2, gold=GoldResults(swan),
        workers=workers or 1, parallelism=parallelism,
    )
    record = {
        "pipeline": "hqdl", "scale": scale or 1, "parallelism": parallelism,
        "ex": run.overall_ex, "llm_calls": run.usage.calls,
    }
    return [record], _run_report(
        run, pipeline="hqdl", scale=scale or 1, parallelism=parallelism,
    )


def _bench_scale_report(
    workers=None, scale=None, batch_size: int = 5
) -> tuple[list[dict], str]:
    """Rows-vs-makespan scaling bench (written to BENCH_scale.json)."""
    from repro.harness.benchscale import format_scale_report, write_scale_json

    path, payload = write_scale_json(
        scale=scale, workers=workers or 4, batch_size=batch_size,
    )
    return [payload], format_scale_report(payload, path)


def _bench_cache_report(
    databases=None, workers=None, batch_size: int = 5, cache_dir=None
) -> tuple[list[dict], str]:
    """Call-planner/persistent-cache bench (written to BENCH_cache.json)."""
    from repro.harness.benchcache import format_cache_report, write_cache_json

    path, payload = write_cache_json(
        databases=databases, workers=workers or 4,
        batch_size=batch_size, cache_dir=cache_dir,
    )
    return [payload], format_cache_report(payload, path)


def _serve_report(
    seed=None, horizon=None, window=None,
    batch_window=None, max_batch=None, batching="on",
    tracing="off", trace_sample=None,
) -> tuple[list[dict], str]:
    """One overloaded query-server run (2x capacity) on the virtual clock."""
    from repro.harness.benchserve import (
        build_observability, default_config, default_tenants,
        format_serve_demo, measure_capacity, run_level, trace_level_record,
        DEFAULT_HORIZON, SERVE_DATABASES,
    )
    from repro.obs.timeseries import DEFAULT_WINDOW_SECONDS
    from repro.serve.trace import ServeTraceLog
    from repro.swan.benchmark import load_benchmark_subset

    swan = load_benchmark_subset(1, list(SERVE_DATABASES))
    config = default_config()
    tenants = default_tenants()
    horizon = horizon or DEFAULT_HORIZON
    capacity = measure_capacity(
        swan, config, tenants, seed=seed or 0, horizon=horizon
    )
    telemetry, tracker = build_observability(
        window_seconds=window or DEFAULT_WINDOW_SECONDS
    )
    sampler = _trace_sampler(
        tracing, trace_sample, seed=seed or 0,
        window_seconds=window or DEFAULT_WINDOW_SECONDS,
    )
    trace_log = ServeTraceLog() if sampler is not None else None
    report, record = run_level(
        swan, config, tenants, 2.0, capacity,
        seed=seed or 0, horizon=horizon,
        telemetry=telemetry, slo_tracker=tracker,
        batching=_batching_config(batch_window, max_batch, batching),
        trace=trace_log,
    )
    budgets = tracker.budgets()
    slo_lines = ["", "SLO error budgets:"]
    for name, budget in budgets.items():
        slo_lines.append(
            f"  {name:<14} budget consumed "
            f"{100 * budget['budget_consumed']:.1f}% "
            f"({budget['bad']}/{budget['bad'] + budget['good']} bad)"
        )
    slo_lines.append(
        f"{len(tracker.alerts)} burn-rate alert(s), "
        f"{len(telemetry.flight.incidents)} incident(s) captured."
    )
    if sampler is not None and trace_log is not None:
        level = trace_level_record(2.0, trace_log, sampler)
        stats = level["sampler"]
        reasons = stats["kept_by_reason"]
        record["traces"] = level
        slo_lines.append(
            f"Request tracing: kept {stats['kept']} of {stats['total']} "
            f"traces ({reasons['outcome']} outcome, {reasons['slowest']} "
            f"slowest, {reasons['hash']} hash) over {level['waves']} batch "
            f"wave(s); worst unaccounted share "
            f"{100 * level['max_unaccounted_share']:.2f}%."
        )
    return [record], format_serve_demo(report) + "\n".join(slo_lines)


def _loadtest_report(
    scale=None, seed=None, horizon=None, window=None,
    batch_window=None, max_batch=None, batching="on",
    tracing="off", trace_sample=None,
) -> tuple[list[dict], str]:
    """Offered-load sweep over the server (written to BENCH_serve.json,
    BENCH_slo.json, and BENCH_incidents.jsonl; with --tracing=on also
    BENCH_serve_traces.json plus the span JSONL/Chrome exports)."""
    from repro.harness.benchserve import (
        format_serve_report, format_slo_report, format_trace_report,
        run_slo_loadtest, run_traced_loadtest, trace_spans,
        write_serve_json, write_slo_json, write_traces_json,
        DEFAULT_HORIZON, DEFAULT_INCIDENTS_JSONL, DEFAULT_SERVE_BENCH,
        DEFAULT_SLO_BENCH, DEFAULT_TRACES_BENCH, DEFAULT_TRACE_CHROME,
        DEFAULT_TRACE_SPANS_JSONL,
    )
    from repro.obs.export import write_chrome_trace, write_spans_jsonl
    from repro.obs.timeseries import DEFAULT_WINDOW_SECONDS

    sampler = _trace_sampler(
        tracing, trace_sample, seed=seed or 0,
        window_seconds=window or DEFAULT_WINDOW_SECONDS,
    )
    common = dict(
        scale=scale or 1, seed=seed or 0, horizon=horizon or DEFAULT_HORIZON,
        window_seconds=window or DEFAULT_WINDOW_SECONDS,
        incident_sink=DEFAULT_INCIDENTS_JSONL,
        batching=_batching_config(batch_window, max_batch, batching),
    )
    trace_text = ""
    payloads: list[dict]
    if sampler is not None:
        serve_payload, slo_payload, trace_payload, forest = (
            run_traced_loadtest(sampler=sampler, **common)
        )
        traces_path = write_traces_json(trace_payload, DEFAULT_TRACES_BENCH)
        spans = trace_spans(forest)
        spans_path = write_spans_jsonl(spans, DEFAULT_TRACE_SPANS_JSONL)
        chrome_path = write_chrome_trace(spans, DEFAULT_TRACE_CHROME)
        trace_text = (
            "\n\n" + format_trace_report(trace_payload)
            + f"\n(also written to {traces_path}; the "
            + f"{trace_payload['export_multiplier']:g}x level's kept spans "
            + f"to {spans_path} and {chrome_path})"
        )
        payloads = [serve_payload, slo_payload, trace_payload]
    else:
        serve_payload, slo_payload = run_slo_loadtest(**common)
        payloads = [serve_payload, slo_payload]
    path = write_serve_json(serve_payload, DEFAULT_SERVE_BENCH)
    slo_path = write_slo_json(slo_payload, DEFAULT_SLO_BENCH)
    text = (
        format_serve_report(serve_payload)
        + f"\n(also written to {path})\n\n"
        + format_slo_report(slo_payload)
        + f"\n(also written to {slo_path}; incidents appended to "
        + f"{DEFAULT_INCIDENTS_JSONL})"
        + trace_text
    )
    return payloads, text


def _dash_report(
    seed=None, horizon=None, window=None,
    batch_window=None, max_batch=None, batching="on",
    tracing="off", trace_sample=None,
) -> tuple[list[dict], str]:
    """Console serving dashboard: one instrumented 2x-overload run."""
    from repro.harness.dash import run_dash
    from repro.obs.timeseries import DEFAULT_WINDOW_SECONDS

    payload, text = run_dash(
        seed=seed or 0,
        horizon=horizon or 120.0,
        window_seconds=window or DEFAULT_WINDOW_SECONDS,
        batching=_batching_config(batch_window, max_batch, batching),
        sampler=_trace_sampler(
            tracing, trace_sample, seed=seed or 0,
            window_seconds=window or DEFAULT_WINDOW_SECONDS,
        ),
    )
    return [payload], text


def _explain_command(options) -> tuple[int, str]:
    """One-question provenance explanation (tentpole PR 5 CLI)."""
    from repro.errors import ReproError
    from repro.harness.explain import explain_question

    if not options["database"] or not options["question"]:
        raise ValueError("explain requires --database=NAME and --question=REF")
    try:
        text = explain_question(
            options["database"],
            options["question"],
            pipeline=options["pipeline"],
            workers=options["workers"] or 1,
        )
    except ReproError as exc:
        raise ValueError(str(exc)) from None
    return 0, text


def _explain_request_command(options) -> tuple[int, str]:
    """One-request serving trace explanation (this PR's CLI)."""
    from repro.errors import ReproError
    from repro.harness.explain import explain_request

    if options["request"] is None:
        raise ValueError("explain-request requires --request=N")
    try:
        text = explain_request(
            options["request"],
            scale=options["scale"] or 1,
            seed=options["seed"] or 0,
            horizon=options["horizon"],
            multiplier=options["multiplier"] or 2.0,
            window_seconds=options["window"],
            batching=_batching_config(
                options["batch_window"], options["max_batch"],
                options["batching"],
            ),
            trace_sample=options["trace_sample"],
        )
    except ReproError as exc:
        raise ValueError(str(exc)) from None
    return 0, text


def _regress_command(options) -> tuple[int, str]:
    """Ledger-backed regression gate (tentpole PR 5 CLI)."""
    from repro.harness.regress import run_regress

    return run_regress(
        ledger_path=options["ledger"],
        baseline_path=options["baseline"],
        update_baseline=options["update_baseline"],
        max_ex_drop=options["max_ex_drop"],
        max_token_growth=options["max_token_growth"],
        max_makespan_growth=options["max_makespan_growth"],
    )


#: Commands that do something other than render a report table.  Each
#: takes the parsed options and returns (exit code, text); they must be
#: invoked alone — mixing them with report targets is a usage error.
_COMMANDS = {
    "explain": _explain_command,
    "explain-request": _explain_request_command,
    "regress": _regress_command,
}


_GENERATORS = {
    "table1": tables.table1,
    "table2": tables.table2,
    "table3": tables.table3,
    "table4": tables.table4,
    "table5": tables.table5,
    "figure1": tables.figure1,
    "planner": _planner_report,
    "validate": _validation_report,
    "costs": _cost_report,
    "errors": _error_report,
    "sweep": _sweep_report,
    "bench-json": _bench_json_report,
    "chaos": _chaos_report,
    "trace": _trace_report,
    "bench-cache": _bench_cache_report,
    "run-udf": _run_udf_report,
    "run-hqdl": _run_hqdl_report,
    "bench-scale": _bench_scale_report,
    "serve": _serve_report,
    "loadtest": _loadtest_report,
    "dash": _dash_report,
}

#: Extra targets excluded from `all` (sweep re-runs the whole grid and
#: writes a file, bench-json writes BENCH_parallel.json, chaos runs the
#: fault sweep and writes BENCH_chaos.json, trace writes the
#: BENCH_trace artifact family, bench-cache writes BENCH_cache.json,
#: run-udf/run-hqdl are parameterized single runs, and bench-scale
#: synthesizes 100x worlds and writes BENCH_scale.json, serve runs an
#: overloaded server demo, loadtest sweeps offered load and writes
#: BENCH_serve.json/BENCH_slo.json, and dash runs an instrumented
#: overload and renders the console dashboard; `all` should stay fast
#: and side-effect free).
_EXCLUDED_FROM_ALL = (
    "sweep", "bench-json", "chaos", "trace", "bench-cache",
    "run-udf", "run-hqdl", "bench-scale", "serve", "loadtest", "dash",
)

#: Targets that honour CLI flags, and which option names each accepts.
_FLAG_TARGETS = {
    "trace": ("databases", "workers", "scale"),
    "bench-cache": ("databases", "workers", "batch_size", "cache_dir"),
    "run-udf": ("databases", "workers", "scale", "parallelism", "batch_size"),
    "run-hqdl": ("databases", "workers", "scale", "parallelism"),
    "bench-scale": ("workers", "scale", "batch_size"),
    "serve": ("seed", "horizon", "window",
              "batch_window", "max_batch", "batching",
              "tracing", "trace_sample"),
    "loadtest": ("scale", "seed", "horizon", "window",
                 "batch_window", "max_batch", "batching",
                 "tracing", "trace_sample"),
    "dash": ("seed", "horizon", "window",
             "batch_window", "max_batch", "batching",
             "tracing", "trace_sample"),
}


def _batching_config(batch_window, max_batch, batching):
    """The CLI's cross-request batching choice: a config, or None for off."""
    from repro.serve.batcher import BatchingConfig

    if batching == "off":
        return None
    kwargs = {}
    if batch_window is not None:
        kwargs["window"] = batch_window
    if max_batch is not None:
        kwargs["max_batch"] = max_batch
    return BatchingConfig(**kwargs)


def _trace_sampler(tracing, trace_sample, *, seed, window_seconds):
    """The CLI's request-tracing choice: a tail sampler, or None for off."""
    from repro.harness.benchserve import DEFAULT_TRACE_SAMPLE
    from repro.obs.sampler import TailSampler

    if tracing == "off":
        return None
    return TailSampler(
        seed=seed,
        slowest_k=(
            trace_sample if trace_sample is not None else DEFAULT_TRACE_SAMPLE
        ),
        window_seconds=window_seconds,
    )


def _usage() -> str:
    return (
        "usage: python -m repro.harness [target ...] "
        "[--databases=a,b] [--workers=N] [--batch-size=N] [--cache-dir=DIR]\n"
        "           [--scale=N] [--parallelism=threads|processes] "
        "[--seed=N] [--horizon=SECONDS] [--window=SECONDS]\n"
        "           [--batching=on|off] [--batch-window=SECONDS] "
        "[--max-batch=N] [--tracing=on|off] [--trace-sample=K]\n"
        "       python -m repro.harness explain --database=NAME "
        "--question=REF [--pipeline=udf|hqdl] [--workers=N]\n"
        "       python -m repro.harness explain-request --request=N "
        "[--multiplier=F] [--seed=N] [--horizon=SECONDS]\n"
        "           [--batching=on|off] [--trace-sample=K]\n"
        "       python -m repro.harness regress [--ledger=PATH] "
        "[--baseline=PATH] [--update-baseline]\n"
        "           [--max-ex-drop=F] [--max-token-growth=F] "
        "[--max-makespan-growth=F]\n"
        f"targets: {', '.join(_GENERATORS)} | all\n"
        f"commands: {', '.join(_COMMANDS)} (invoked alone)\n"
        f"flags apply to: {', '.join(_FLAG_TARGETS)}"
    )


def _parse_args(argv: list[str]):
    """(targets, options) from argv; raises ValueError with a message."""
    from repro.harness.regress import DEFAULT_BASELINE, DEFAULT_LEDGER

    targets: list[str] = []
    options = {
        # workers=None means "each target's own default" (trace and the
        # run commands use 1, the benches 4)
        "databases": None, "workers": None, "batch_size": 5, "cache_dir": None,
        "scale": None, "parallelism": "threads",
        "seed": None, "horizon": None, "window": None,
        "batch_window": None, "max_batch": None, "batching": "on",
        "tracing": "off", "trace_sample": None,
        "request": None, "multiplier": None,
        "database": None, "question": None, "pipeline": "udf",
        "ledger": DEFAULT_LEDGER, "baseline": DEFAULT_BASELINE,
        "update_baseline": False, "max_ex_drop": 0.0,
        "max_token_growth": 0.10, "max_makespan_growth": 0.25,
    }

    def _float_option(name: str, value: str) -> float:
        try:
            parsed = float(value)
        except ValueError:
            raise ValueError(
                f"{name} requires a number, got {value!r}"
            ) from None
        if parsed < 0:
            raise ValueError(f"{name} must be >= 0, got {value}")
        return parsed

    for arg in argv:
        if not arg.startswith("-"):
            targets.append(arg)
            continue
        if arg in ("-h", "--help"):
            raise _HelpRequested()
        name, sep, value = arg.partition("=")
        if name == "--databases":
            if not sep or not value:
                raise ValueError("--databases requires a comma-separated list")
            options["databases"] = [
                part for part in value.split(",") if part
            ]
        elif name == "--workers":
            try:
                options["workers"] = int(value)
            except ValueError:
                raise ValueError(
                    f"--workers requires an integer, got {value!r}"
                ) from None
            if options["workers"] < 1:
                raise ValueError(f"--workers must be >= 1, got {value}")
        elif name == "--batch-size":
            try:
                options["batch_size"] = int(value)
            except ValueError:
                raise ValueError(
                    f"--batch-size requires an integer, got {value!r}"
                ) from None
            if options["batch_size"] < 1:
                raise ValueError(f"--batch-size must be >= 1, got {value}")
        elif name == "--scale":
            try:
                options["scale"] = int(value)
            except ValueError:
                raise ValueError(
                    f"--scale requires an integer, got {value!r}"
                ) from None
            if options["scale"] < 1:
                raise ValueError(f"--scale must be >= 1, got {value}")
        elif name == "--seed":
            try:
                options["seed"] = int(value)
            except ValueError:
                raise ValueError(
                    f"--seed requires an integer, got {value!r}"
                ) from None
            if options["seed"] < 0:
                raise ValueError(f"--seed must be >= 0, got {value}")
        elif name == "--horizon":
            try:
                options["horizon"] = float(value)
            except ValueError:
                raise ValueError(
                    f"--horizon requires a number, got {value!r}"
                ) from None
            if options["horizon"] <= 0:
                raise ValueError(f"--horizon must be > 0, got {value}")
        elif name == "--window":
            try:
                options["window"] = float(value)
            except ValueError:
                raise ValueError(
                    f"--window requires a number, got {value!r}"
                ) from None
            if options["window"] <= 0:
                raise ValueError(f"--window must be > 0, got {value}")
        elif name == "--batch-window":
            try:
                options["batch_window"] = float(value)
            except ValueError:
                raise ValueError(
                    f"--batch-window requires a number, got {value!r}"
                ) from None
            if options["batch_window"] <= 0:
                raise ValueError(f"--batch-window must be > 0, got {value}")
        elif name == "--max-batch":
            try:
                options["max_batch"] = int(value)
            except ValueError:
                raise ValueError(
                    f"--max-batch requires an integer, got {value!r}"
                ) from None
            if options["max_batch"] < 1:
                raise ValueError(f"--max-batch must be >= 1, got {value}")
        elif name == "--batching":
            if value not in ("on", "off"):
                raise ValueError(
                    f"--batching must be 'on' or 'off', got {value!r}"
                )
            options["batching"] = value
        elif name == "--tracing":
            if value not in ("on", "off"):
                raise ValueError(
                    f"--tracing must be 'on' or 'off', got {value!r}"
                )
            options["tracing"] = value
        elif name == "--trace-sample":
            try:
                options["trace_sample"] = int(value)
            except ValueError:
                raise ValueError(
                    f"--trace-sample requires an integer, got {value!r}"
                ) from None
            if options["trace_sample"] < 0:
                raise ValueError(
                    f"--trace-sample must be >= 0, got {value}"
                )
        elif name == "--request":
            try:
                options["request"] = int(value)
            except ValueError:
                raise ValueError(
                    f"--request requires an integer, got {value!r}"
                ) from None
            if options["request"] < 0:
                raise ValueError(f"--request must be >= 0, got {value}")
        elif name == "--multiplier":
            try:
                options["multiplier"] = float(value)
            except ValueError:
                raise ValueError(
                    f"--multiplier requires a number, got {value!r}"
                ) from None
            if options["multiplier"] <= 0:
                raise ValueError(f"--multiplier must be > 0, got {value}")
        elif name == "--parallelism":
            if value not in ("threads", "processes"):
                raise ValueError(
                    "--parallelism must be 'threads' or 'processes', "
                    f"got {value!r}"
                )
            options["parallelism"] = value
        elif name == "--cache-dir":
            if not sep or not value:
                raise ValueError("--cache-dir requires a directory path")
            options["cache_dir"] = value
        elif name == "--database":
            if not sep or not value:
                raise ValueError("--database requires a database name")
            options["database"] = value
        elif name == "--question":
            if not sep or not value:
                raise ValueError("--question requires a qid or 1-based index")
            options["question"] = value
        elif name == "--pipeline":
            if value not in ("udf", "hqdl"):
                raise ValueError(
                    f"--pipeline must be 'udf' or 'hqdl', got {value!r}"
                )
            options["pipeline"] = value
        elif name == "--ledger":
            if not sep or not value:
                raise ValueError("--ledger requires a file path")
            options["ledger"] = value
        elif name == "--baseline":
            if not sep or not value:
                raise ValueError("--baseline requires a file path")
            options["baseline"] = value
        elif name == "--update-baseline":
            if sep:
                raise ValueError("--update-baseline takes no value")
            options["update_baseline"] = True
        elif name == "--max-ex-drop":
            options["max_ex_drop"] = _float_option(name, value)
        elif name == "--max-token-growth":
            options["max_token_growth"] = _float_option(name, value)
        elif name == "--max-makespan-growth":
            options["max_makespan_growth"] = _float_option(name, value)
        else:
            raise ValueError(f"unknown flag: {arg}")
    return targets, options


class _HelpRequested(Exception):
    """Raised by the parser when -h/--help is seen."""


def main(argv: list[str]) -> int:
    """Print the requested tables/figures; returns a process exit code."""
    try:
        targets, options = _parse_args(argv)
    except _HelpRequested:
        print(_usage())
        return 0
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        print(_usage(), file=sys.stderr)
        return 2
    targets = targets or ["all"]
    if any(t in _COMMANDS for t in targets):
        if len(targets) != 1:
            print(
                f"error: {'/'.join(_COMMANDS)} must be invoked alone",
                file=sys.stderr,
            )
            print(_usage(), file=sys.stderr)
            return 2
        try:
            code, text = _COMMANDS[targets[0]](options)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            print(_usage(), file=sys.stderr)
            return 2
        print(text)
        return code
    if targets == ["all"]:
        targets = [t for t in _GENERATORS if t not in _EXCLUDED_FROM_ALL]
    unknown = [t for t in targets if t not in _GENERATORS]
    if unknown:
        print(f"unknown targets: {', '.join(unknown)}", file=sys.stderr)
        print(_usage(), file=sys.stderr)
        return 2
    for index, target in enumerate(targets):
        if index:
            print()
        generator = _GENERATORS[target]
        if target in _FLAG_TARGETS:
            kwargs = {
                option: options[option] for option in _FLAG_TARGETS[target]
            }
            _, text = generator(**kwargs)
        else:
            _, text = generator()
        print(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
