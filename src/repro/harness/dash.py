"""The console serving dashboard behind ``python -m repro.harness dash``.

One overloaded serving run (2x measured capacity by default) with the
full observability bundle attached, rendered as a terminal dashboard:
per-window sparklines for the headline series, the windowed table with
per-tenant accounting and fairness, SLO error budgets, the burn-rate
alert timeline, and the flight-recorder incident summary.

Everything runs on the virtual clock, so the dashboard is deterministic:
the same seed renders the same bytes.  The run itself is byte-identical
to an uninstrumented one — the dashboard only *reads* what the passive
telemetry recorded.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.harness.benchserve import (
    DEFAULT_HORIZON,
    SERVE_DATABASES,
    build_observability,
    default_config,
    default_tenants,
    measure_capacity,
    run_level,
    slo_level_record,
)
from repro.obs.export import stage_summary
from repro.obs.sampler import TailSampler
from repro.obs.timeseries import DEFAULT_WINDOW_SECONDS
from repro.serve.batcher import BatchingConfig
from repro.serve.trace import ServeTraceLog, materialize_request
from repro.swan.benchmark import load_benchmark_subset

#: eight block glyphs, lowest to highest — one per window
SPARK_BLOCKS = "▁▂▃▄▅▆▇█"

#: widest the dashboard tables get before older windows are elided
MAX_TABLE_WINDOWS = 16

#: how many kept traces the "slowest traces" panel shows
MAX_TRACE_ROWS = 5

#: one glyph per stage in the per-trace self-time bar
_STAGE_GLYPHS = (
    ("serve:queue", "q"),
    ("serve:batch.wait", "w"),
    ("serve:settle", "s"),
    ("serve:service", "v"),
    ("serve:overhead", "o"),
    ("serve:llm", "#"),
    ("llm:backoff", "b"),
    ("serve:degrade", "d"),
)

#: width of the per-trace stage bar, in glyphs
_TRACE_BAR_WIDTH = 24


def trace_bar(stages: dict, total: float, width: int = _TRACE_BAR_WIDTH) -> str:
    """Proportional per-stage self-time bar for one trace.

    Stages render in rough chronological order (queue, batch wait,
    settle/service overhead, llm, backoff) with cumulative rounding, so
    the bar is always exactly ``width`` glyphs and every visible stage
    gets at least its proportional share.
    """
    if total <= 0:
        return "·" * width
    parts: list[str] = []
    consumed = 0.0
    filled = 0
    for name, glyph in _STAGE_GLYPHS:
        self_s = stages.get(name, 0.0)
        if self_s <= 0:
            continue
        consumed += self_s
        target = min(width, int(round(width * consumed / total)))
        parts.append(glyph * (target - filled))
        filled = target
    if filled < width:
        parts.append("·" * (width - filled))
    return "".join(parts)


def sparkline(values: Sequence[float]) -> str:
    """Render values as one block glyph each, scaled to the peak."""
    peak = max(values, default=0.0)
    if peak <= 0:
        return SPARK_BLOCKS[0] * len(values)
    return "".join(
        SPARK_BLOCKS[min(len(SPARK_BLOCKS) - 1,
                         int(max(0.0, v) / peak * len(SPARK_BLOCKS)))]
        for v in values
    )


def run_dash(
    *,
    scale: int = 1,
    seed: int = 0,
    horizon: float = DEFAULT_HORIZON,
    window_seconds: float = DEFAULT_WINDOW_SECONDS,
    multiplier: float = 2.0,
    databases: Sequence[str] = SERVE_DATABASES,
    batching: Optional[BatchingConfig] = None,
    sampler: Optional[TailSampler] = None,
) -> tuple[dict, str]:
    """One instrumented serving run; returns (payload, rendered text).

    With ``batching`` set, the run itself batches across requests and
    the dashboard gains a per-window batch-occupancy sparkline plus a
    coalescing summary; ``None`` renders the classic unbatched view.
    With ``sampler`` set, a trace log rides the run and the dashboard
    gains a "slowest traces" panel with per-stage self-time bars.
    """
    swan = load_benchmark_subset(scale, list(databases))
    config = default_config()
    tenants = default_tenants(databases)
    capacity = measure_capacity(
        swan, config, tenants, seed=seed, horizon=horizon
    )
    telemetry, tracker = build_observability(window_seconds=window_seconds)
    trace_log = ServeTraceLog() if sampler is not None else None
    report, record = run_level(
        swan, config, tenants, multiplier, capacity,
        seed=seed, horizon=horizon,
        telemetry=telemetry, slo_tracker=tracker, batching=batching,
        trace=trace_log,
    )
    payload = slo_level_record(multiplier, multiplier * capacity, telemetry, tracker)
    payload["window_seconds"] = round(window_seconds, 6)
    payload["capacity_rps"] = round(capacity, 6)
    payload["seed"] = seed
    payload["horizon"] = round(horizon, 6)
    payload["serve"] = record
    if sampler is not None and trace_log is not None:
        payload["traces"] = _trace_panel(trace_log, sampler)
    if batching is not None:
        occupancy = {
            row.window: round(row.mean, 6)
            for row in telemetry.timeseries.rows("serve.batch_occupancy")
        }
        payload["batch_occupancy_windows"] = [
            occupancy.get(row["window"], 0.0) for row in payload["windows"]
        ]
    return payload, format_dash(payload)


def _trace_panel(log: ServeTraceLog, sampler: TailSampler) -> dict:
    """The slowest-traces panel data: kept counts + per-stage self-time."""
    kept = sampler.decide(log.records)
    waves = {wave.wave_id: wave for wave in log.waves}
    ranked = sorted(
        (log.get(trace_id) for trace_id in kept),
        key=lambda r: (-r.latency, r.trace_id),
    )
    slowest = []
    for record in ranked[:MAX_TRACE_ROWS]:
        rows = stage_summary([materialize_request(record, waves)])
        slowest.append({
            "trace_id": record.trace_id,
            "status": record.status,
            "reason": record.reason,
            "latency": round(record.latency, 6),
            "sampled": kept[record.trace_id],
            "stages": {
                row["stage"]: row["self_s"]
                for row in rows
                if row["stage"] != "(unaccounted)" and row["self_s"] > 0
            },
        })
    return {
        "sampler": sampler.stats(kept, len(log.records)),
        "slowest": slowest,
    }


def _tenant_totals(windows: list[dict]) -> dict[str, dict]:
    totals: dict[str, dict] = {}
    for row in windows:
        for tenant, stats in row["per_tenant"].items():
            into = totals.setdefault(
                tenant,
                {k: 0 for k in
                 ("offered", "served", "degraded", "rejected",
                  "tokens", "llm_calls")},
            )
            for key in into:
                into[key] += stats[key]
    return totals


def format_dash(payload: dict) -> str:
    """Render one instrumented run as the console dashboard."""
    windows = payload["windows"]
    serve = payload["serve"]
    lines = [
        f"Serving dashboard — {payload['multiplier']:g}x capacity "
        f"({payload['offered_rps']:.3f} req/s offered), seed "
        f"{payload['seed']}, horizon {payload['horizon']:g}s, "
        f"{payload['window_seconds']:g}s windows",
        "",
    ]
    series = [
        ("offered/s", [w["offered"] for w in windows]),
        ("served/s", [w["served"] for w in windows]),
        ("degraded/s", [w["degraded"] for w in windows]),
        ("rejected/s", [w["rejected"] for w in windows]),
        ("p99 latency", [w["p99"] for w in windows]),
        ("queue p95", [w["queue_depth_p95"] for w in windows]),
    ]
    if "batch_occupancy_windows" in payload:
        series.append(("batch occ", payload["batch_occupancy_windows"]))
    for label, values in series:
        peak = max(values, default=0.0)
        lines.append(f"{label:>12} {sparkline(values)}  peak {peak:g}")
    lines.append("")
    lines.append(
        f"{'t':>6} {'off':>5} {'srv':>5} {'deg':>5} {'rej':>5} "
        f"{'shed%':>6} {'p50':>7} {'p99':>7} {'fair':>6}"
    )
    visible = windows[-MAX_TABLE_WINDOWS:]
    if len(windows) > len(visible):
        lines.append(f"  ... {len(windows) - len(visible)} earlier windows elided")
    for row in visible:
        lines.append(
            f"{row['start']:>6.0f} {row['offered']:>5} {row['served']:>5} "
            f"{row['degraded']:>5} {row['rejected']:>5} "
            f"{100 * row['shed_rate']:>5.1f}% {row['p50']:>7.2f} "
            f"{row['p99']:>7.2f} {row['fairness']:>6.3f}"
        )
    lines.append("")
    lines.append(
        f"{'tenant':<14} {'offered':>8} {'served':>7} {'degr':>6} "
        f"{'rej':>6} {'tokens':>10} {'calls':>6}"
    )
    for tenant, totals in sorted(_tenant_totals(windows).items()):
        lines.append(
            f"{tenant:<14} {totals['offered']:>8} {totals['served']:>7} "
            f"{totals['degraded']:>6} {totals['rejected']:>6} "
            f"{totals['tokens']:>10} {totals['llm_calls']:>6}"
        )
    lines.append("")
    lines.append("SLO error budgets:")
    for name, budget in payload["budgets"].items():
        lines.append(
            f"  {name:<14} objective {100 * budget['objective']:g}%  "
            f"bad {budget['bad']}/{budget['bad'] + budget['good']}  "
            f"budget consumed {100 * budget['budget_consumed']:.1f}%"
        )
    if payload["alerts"]:
        lines.append("")
        lines.append("Alert timeline:")
        for alert in payload["alerts"]:
            lines.append(
                f"  t={alert['time']:>7.1f}  [{alert['severity']}] "
                f"{alert['slo']} burn={alert['burn_rate']:.1f} "
                f"(window {alert['window']}, {alert['bad']}/{alert['total']} "
                f"bad over {alert['lookback_windows']}w)"
            )
    else:
        lines.append("")
        lines.append("No burn-rate alerts fired.")
    if "traces" in payload:
        panel = payload["traces"]
        stats = panel["sampler"]
        reasons = stats["kept_by_reason"]
        legend = " ".join(
            f"{glyph}={name.split(':', 1)[1]}" for name, glyph in _STAGE_GLYPHS
        )
        lines.append("")
        lines.append(
            f"Slowest sampled traces — kept {stats['kept']} of "
            f"{stats['total']} ({reasons['outcome']} outcome, "
            f"{reasons['slowest']} slowest, {reasons['hash']} hash); "
            f"{legend}:"
        )
        for trace in panel["slowest"]:
            outcome = trace["status"] + (
                f"/{trace['reason']}" if trace["reason"] else ""
            )
            lines.append(
                f"  {trace['trace_id']}  {outcome:<24} "
                f"{trace['latency']:>8.3f}s  "
                f"{trace_bar(trace['stages'], trace['latency'])}"
            )
    lines.append("")
    lines.append(
        f"Flight recorder: {payload['flight_recorded']} events recorded "
        f"({payload['flight_dropped']} dropped), "
        f"{payload['incidents']} incident(s) captured."
    )
    if "batching" in serve:
        arm = serve["batching"]
        saved = arm["fanout_tokens_saved"]
        lines.append(
            f"Cross-request batching: {arm['paid_calls']} paid of "
            f"{arm['formed_calls']} formed calls "
            f"({arm['coalesced_calls']} coalesced), mean occupancy "
            f"{arm['batch_occupancy']:.2f}, {saved} fan-out tokens saved, "
            f"{arm['keys_from_store']} keys served from the shared store."
        )
    lines.append(
        f"Run accounting: {serve['offered']} offered = {serve['served']} "
        f"served + {serve['degraded']} degraded + {serve['rejected']} "
        f"rejected ({'OK' if serve['accounting_ok'] else 'BROKEN'})."
    )
    return "\n".join(lines)
