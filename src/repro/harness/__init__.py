"""Experiment harness: runs the paper's evaluation grid and regenerates
every table and figure.

- :mod:`repro.harness.runner` — the (model × shots × database × method)
  experiment runners with full usage metering.
- :mod:`repro.harness.tables` — one generator per paper table/figure.
- ``python -m repro.harness <table1|table2|table3|table4|table5|figure1|all>``
  prints any of them.
"""

from repro.harness.runner import (
    GoldResults,
    HQDLRun,
    UDFRun,
    run_hqdl,
    run_udf,
)
from repro.harness.tables import (
    figure1,
    table1,
    table2,
    table3,
    table4,
    table5,
)

__all__ = [
    "GoldResults",
    "HQDLRun",
    "UDFRun",
    "run_hqdl",
    "run_udf",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "figure1",
]
