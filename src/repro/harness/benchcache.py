"""The ``bench-cache`` harness target (BENCH_cache.json).

Measures what the run-level call planner and the persistent prompt cache
buy, in the currencies the paper's Table 4 prices — LLM calls, tokens,
and (virtual) wall-clock:

- **baseline** — the seed unplanned HQ UDFs path, cold caches;
- **planned (prompt mode)** — same configuration behind a
  behaviour-preserving :class:`~repro.plan.CallPlanner` pass plus a
  :class:`~repro.llm.diskcache.PersistentPromptCache`; results and token
  totals must be byte-identical to the baseline;
- **warm** — the same run again over the populated disk cache; must
  issue **zero** new LLM calls;
- **planned (pairs mode)** — aggressive cross-question (attribute, key)
  dedup with :class:`~repro.plan.AdaptiveBatchPolicy` packing; fewer
  calls and tokens than the baseline, small accuracy drift allowed.

Virtual makespans come from the paid per-call token sizes fed through
the affine :class:`~repro.llm.batching.LatencyModel` — no sleeping.
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.llm.batching import (
    DEFAULT_BATCH_SIZE,
    LatencyModel,
    parallel_makespan,
    sequential_makespan,
)
from repro.obs import Telemetry
from repro.obs.export import stage_summary
from repro.plan import AdaptiveBatchPolicy
from repro.harness.runner import GoldResults, UDFRun, run_udf
from repro.swan.benchmark import Swan, load_benchmark

DEFAULT_WORKERS = 4


def _usage_record(
    run: UDFRun, workers: int, latency: LatencyModel
) -> dict:
    """The cost profile of one run: calls, tokens, virtual makespans."""
    return {
        "llm_calls": run.usage.calls,
        "input_tokens": run.usage.input_tokens,
        "output_tokens": run.usage.output_tokens,
        "ex": round(run.overall_ex, 4),
        "ex_by_db": {k: round(v, 4) for k, v in sorted(run.ex_by_db.items())},
        "sequential_seconds": round(
            sequential_makespan(run.call_sizes, latency), 2
        ),
        "parallel_seconds": round(
            parallel_makespan(run.call_sizes, workers, latency), 2
        ),
    }


def _same_results(a: UDFRun, b: UDFRun) -> bool:
    """Result identity: same rows, errors, and EX, question by question."""
    return (
        a.ex_by_db == b.ex_by_db
        and len(a.outcomes) == len(b.outcomes)
        and all(
            x.qid == y.qid
            and x.correct == y.correct
            and x.actual_rows == y.actual_rows
            and x.error == y.error
            for x, y in zip(a.outcomes, b.outcomes)
        )
    )


def _identical(a: UDFRun, b: UDFRun) -> bool:
    """Byte-identity of two runs: results, EX, and Usage all equal."""
    return a.usage == b.usage and _same_results(a, b)


def measure_cache_bench(
    swan: Optional[Swan] = None,
    *,
    databases: Optional[Sequence[str]] = None,
    workers: int = DEFAULT_WORKERS,
    model_name: str = "gpt-3.5-turbo",
    shots: int = 0,
    batch_size: int = DEFAULT_BATCH_SIZE,
    cache_dir: Optional[Union[str, Path]] = None,
    latency_model: Optional[LatencyModel] = None,
) -> dict:
    """The four-run cold/planned/warm/adaptive comparison payload.

    With ``cache_dir=None`` the persistent cache lives in a temporary
    directory (fresh cold state every invocation); pass a directory to
    persist it across harness invocations instead.
    """
    swan = swan if swan is not None else load_benchmark()
    gold = GoldResults(swan)
    latency = latency_model if latency_model is not None else LatencyModel()
    common = dict(
        batch_size=batch_size, databases=databases, gold=gold,
        workers=workers,
    )

    baseline = run_udf(swan, model_name, shots, **common)

    with tempfile.TemporaryDirectory() as scratch:
        disk_dir = Path(cache_dir) if cache_dir is not None else Path(scratch)
        telemetry = Telemetry.on()
        planned = run_udf(
            swan, model_name, shots, plan="prompt", cache_dir=disk_dir,
            telemetry=telemetry, **common,
        )
        warm = run_udf(
            swan, model_name, shots, plan="prompt", cache_dir=disk_dir,
            **common,
        )
        adaptive_policy = AdaptiveBatchPolicy.for_model(model_name, shots)
        adaptive = run_udf(
            swan, model_name, shots, plan="pairs",
            batch_policy=adaptive_policy, **common,
        )

    planner_stages = [
        record
        for record in stage_summary(telemetry.tracer.roots)
        if str(record.get("stage", "")).startswith("plan:")
    ]

    def _saved(cold: int, now: int) -> float:
        return round(100.0 * (cold - now) / cold, 2) if cold else 0.0

    payload = {
        "model": model_name,
        "shots": shots,
        "batch_size": batch_size,
        "workers": workers,
        "databases": sorted(baseline.ex_by_db),
        "baseline": _usage_record(baseline, workers, latency),
        "planned_prompt": {
            **_usage_record(planned, workers, latency),
            "byte_identical_to_baseline": _identical(baseline, planned),
            "plan_stats": planned.plan_stats,
            "persistent": planned.persistent,
        },
        "warm": {
            **_usage_record(warm, workers, latency),
            "zero_new_llm_calls": warm.usage.calls == 0,
            "persistent": warm.persistent,
            # Usage intentionally differs (the warm run pays nothing),
            # so only the answers are compared.
            "results_match_cold": _same_results(planned, warm),
        },
        "planned_pairs": {
            **_usage_record(adaptive, workers, latency),
            "adaptive_batch": adaptive_policy.explain(),
            "plan_stats": adaptive.plan_stats,
            "calls_saved_pct": _saved(
                baseline.usage.calls, adaptive.usage.calls
            ),
            "tokens_saved_pct": _saved(
                baseline.usage.input_tokens + baseline.usage.output_tokens,
                adaptive.usage.input_tokens + adaptive.usage.output_tokens,
            ),
            "ex_delta": round(
                adaptive.overall_ex - baseline.overall_ex, 4
            ),
        },
        "planner_stages": planner_stages,
    }
    return payload


def write_cache_json(
    path: Union[str, Path] = "BENCH_cache.json",
    *,
    swan: Optional[Swan] = None,
    databases: Optional[Sequence[str]] = None,
    workers: int = DEFAULT_WORKERS,
    batch_size: int = DEFAULT_BATCH_SIZE,
    cache_dir: Optional[Union[str, Path]] = None,
) -> tuple[Path, dict]:
    """Write the bench payload to ``path``; returns (path, payload)."""
    payload = measure_cache_bench(
        swan, databases=databases, workers=workers,
        batch_size=batch_size, cache_dir=cache_dir,
    )
    target = Path(path)
    target.write_text(json.dumps(payload, indent=2) + "\n")
    return target, payload


def format_cache_report(payload: dict, path: Union[str, Path]) -> str:
    """Console table of the four runs, for the CLI target."""
    from repro.eval.report import format_table

    rows = []
    for label, key in (
        ("baseline (cold, unplanned)", "baseline"),
        ("planned, prompt mode", "planned_prompt"),
        ("warm rerun (disk cache)", "warm"),
        ("planned, pairs + adaptive", "planned_pairs"),
    ):
        entry = payload[key]
        rows.append(
            [
                label,
                entry["llm_calls"],
                entry["input_tokens"] + entry["output_tokens"],
                f"{entry['ex'] * 100:.1f}%",
                f"{entry['sequential_seconds']:.0f} s",
                f"{entry['parallel_seconds']:.0f} s",
            ]
        )
    notes = [
        "byte-identical planned run: "
        + ("yes" if payload["planned_prompt"]["byte_identical_to_baseline"]
           else "NO"),
        "warm rerun zero new calls: "
        + ("yes" if payload["warm"]["zero_new_llm_calls"] else "NO"),
        f"pairs-mode savings: {payload['planned_pairs']['calls_saved_pct']}% "
        f"calls, {payload['planned_pairs']['tokens_saved_pct']}% tokens",
    ]
    dedup = ", ".join(
        f"{db}: {stats['dedup_pct']}%"
        for db, stats in sorted(
            payload["planned_pairs"]["plan_stats"].items()
        )
    )
    if dedup:
        notes.append(f"cross-question pair dedup — {dedup}")
    table = format_table(
        ["Run", "LLM calls", "Tokens", "EX", "Sequential",
         f"Parallel x{payload['workers']}"],
        rows,
        title=f"Call planning & persistent cache on SWAN "
              f"({payload['model']}, {payload['shots']} shots; "
              f"also written to {path}).",
    )
    return table + "\n" + "\n".join(f"- {note}" for note in notes)
