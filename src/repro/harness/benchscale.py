"""Rows-vs-makespan scaling bench (``BENCH_scale.json``).

For each scale factor (1/10/100 by default) this bench:

1. synthesizes the scaled world (:mod:`repro.swan.scale`) for one
   database and a small fixed question subset;
2. runs both pipelines fully traced on a virtual clock (the PR-3
   tracer), recording EX, virtual makespan, tokens, and the per-stage
   self-time breakdown — the rows-vs-makespan curve;
3. wall-clock times the UDF pipeline three ways — as the pre-PR code
   (``optimize=False``, thread dispatch), on the optimized hot paths
   with batched in-process dispatch, and on the optimized hot paths
   with process-pool dispatch — asserting all runs identical (results,
   Usage, cache stats) and recording the speedups (each config timed
   twice, minimum kept);
4. covers all four SWAN worlds with a traced (virtual clock) UDF+HQDL
   run per scale rung (capped at :data:`WORLD_SCALE_CAP`) over a small
   per-world question subset, so no world's operator mix is a scaling
   blind spot.

Entry point: ``python -m repro.harness bench-scale [--scale=N]``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.errors import ReproError
from repro.llm.parallel import SimulatedClock, SimulatedLatencyClient
from repro.obs import Telemetry
from repro.obs.export import stage_summary
from repro.swan.benchmark import Swan, load_benchmark_subset

#: The canonical scale ladder; ``--scale=N`` keeps the rungs <= N.
DEFAULT_SCALES = (1, 10, 100)

#: Bench defaults: one database and a small question subset keep the
#: scale-100 rung minutes, not hours, while still exercising every
#: pipeline stage.  ``shots=2`` matters: few-shot selection is one of
#: the per-key hot paths this PR hoists, so the pre/post comparison
#: must include it.
BENCH_DATABASE = "superhero"
BENCH_SHOTS = 2

#: Questions chosen to cover both scaling shapes: q12 is a full-scan
#: LLMMap whose key count (and call count) multiplies with scale, while
#: q10/q16 push their predicates down to a single key at any scale.
#: All three are answered correctly at scale 1; EX may drift at higher
#: scales as replicated long-tail entities draw fresh deterministic
#: knowledge noise — that drift is model behaviour, not a scaling bug.
BENCH_QUESTION_IDS = ("superhero_q10", "superhero_q12", "superhero_q16")

#: Per-world question subsets for the all-worlds coverage section: three
#: questions spread across each world's list, so every SWAN world's
#: schema and operator mix contributes a rows-vs-makespan point (the
#: deep-dive rungs above stay on ``BENCH_DATABASE``).
WORLD_QUESTION_IDS = {
    "california_schools": (
        "california_schools_q01",
        "california_schools_q11",
        "california_schools_q21",
    ),
    "superhero": BENCH_QUESTION_IDS,
    "formula_1": ("formula_1_q01", "formula_1_q11", "formula_1_q21"),
    "european_football": (
        "european_football_q01",
        "european_football_q11",
        "european_football_q21",
    ),
}

#: The all-worlds section is virtual-clock only and capped at this scale
#: (wall-clock timing and the 100x rung stay on the single deep-dive
#: database, keeping the default bench minutes, not hours).
WORLD_SCALE_CAP = 10


def scales_up_to(scale: int) -> tuple[int, ...]:
    """The default scale rungs capped at ``scale`` (always includes 1)."""
    if scale < 1:
        raise ReproError(f"scale must be >= 1, got {scale}")
    rungs = [s for s in DEFAULT_SCALES if s <= scale]
    if scale not in rungs:
        rungs.append(scale)
    return tuple(rungs)


def _bench_swan(
    scale: int, database: str, question_ids: Sequence[str]
) -> Swan:
    swan = load_benchmark_subset(scale, [database])
    questions = [swan.question(qid) for qid in question_ids]
    return Swan(worlds=swan.worlds, questions=questions)


def _outcome_records(run) -> list[tuple]:
    return [
        (o.qid, o.correct, o.actual_rows, o.error) for o in run.outcomes
    ]


def _run_traced(swan: Swan, pipeline: str, *, model_name: str, shots: int,
                workers: int, batch_size: int) -> dict:
    """One pipeline run on a virtual clock; returns its payload record."""
    from repro.harness.runner import GoldResults, run_hqdl, run_udf

    clock = SimulatedClock(workers)
    telemetry = Telemetry.on(clock)
    gold = GoldResults(swan)
    wrap = lambda model: SimulatedLatencyClient(model, clock)  # noqa: E731
    if pipeline == "udf":
        run = run_udf(
            swan, model_name, shots, workers=workers, gold=gold,
            batch_size=batch_size, wrap_client=wrap, telemetry=telemetry,
        )
    else:
        run = run_hqdl(
            swan, model_name, shots, workers=workers, gold=gold,
            wrap_client=wrap, telemetry=telemetry,
        )
    usage = run.usage
    return {
        "ex": round(run.overall_ex, 4),
        "makespan_seconds": round(clock.makespan(), 4),
        "llm_calls": usage.calls,
        "input_tokens": usage.input_tokens,
        "output_tokens": usage.output_tokens,
        "stages": stage_summary(telemetry.tracer.roots),
    }


def _run_wall(swan: Swan, *, model_name: str, shots: int, workers: int,
              batch_size: int, optimize: bool, parallelism: str):
    """One untraced UDF run, wall-clock timed; returns (run, seconds)."""
    from repro.harness.runner import GoldResults, run_udf

    gold = GoldResults(swan)
    start = time.perf_counter()
    run = run_udf(
        swan, model_name, shots, workers=workers, gold=gold,
        batch_size=batch_size, optimize=optimize, parallelism=parallelism,
    )
    return run, time.perf_counter() - start


def measure_worlds(
    *,
    model_name: str = "gpt-3.5-turbo",
    shots: int = BENCH_SHOTS,
    workers: int = 4,
    batch_size: int = 5,
    scales: Sequence[int] = DEFAULT_SCALES,
) -> dict:
    """Virtual-clock coverage of all four SWAN worlds.

    One traced UDF+HQDL run per (world, rung) over that world's
    three-question subset; rungs above :data:`WORLD_SCALE_CAP` are
    skipped here (the deep-dive section covers them on one database).
    """
    rungs = tuple(s for s in scales if s <= WORLD_SCALE_CAP) or (1,)
    worlds: dict = {}
    for database, question_ids in WORLD_QUESTION_IDS.items():
        entry: dict = {"question_ids": list(question_ids), "scales": {}}
        for scale in rungs:
            swan = _bench_swan(scale, database, question_ids)
            world = swan.worlds[database]
            entry["scales"][str(scale)] = {
                "scale": scale,
                "curated_rows": sum(
                    len(rows) for rows in world.curated_rows.values()
                ),
                "pipelines": {
                    pipeline: _run_traced(
                        swan, pipeline, model_name=model_name, shots=shots,
                        workers=workers, batch_size=batch_size,
                    )
                    for pipeline in ("udf", "hqdl")
                },
            }
        worlds[database] = entry
    return worlds


def measure_scale(
    *,
    model_name: str = "gpt-3.5-turbo",
    shots: int = BENCH_SHOTS,
    workers: int = 4,
    batch_size: int = 5,
    database: str = BENCH_DATABASE,
    question_ids: Sequence[str] = BENCH_QUESTION_IDS,
    scales: Sequence[int] = DEFAULT_SCALES,
) -> dict:
    """The BENCH_scale payload: one entry per scale rung."""
    payload: dict = {
        "bench": "scale",
        "model": model_name,
        "shots": shots,
        "workers": workers,
        "batch_size": batch_size,
        "database": database,
        "question_ids": [],
        "world_scale_cap": WORLD_SCALE_CAP,
        "scales": {},
        "worlds": measure_worlds(
            model_name=model_name, shots=shots, workers=workers,
            batch_size=batch_size, scales=scales,
        ),
    }
    for scale in scales:
        swan = _bench_swan(scale, database, question_ids)
        payload["question_ids"] = [q.qid for q in swan.questions]
        world = swan.worlds[database]
        entry: dict = {
            "scale": scale,
            "original_rows": sum(
                len(rows) for rows in world.original_rows.values()
            ),
            "curated_rows": sum(
                len(rows) for rows in world.curated_rows.values()
            ),
            "pipelines": {},
        }
        for pipeline in ("udf", "hqdl"):
            entry["pipelines"][pipeline] = _run_traced(
                swan, pipeline, model_name=model_name, shots=shots,
                workers=workers, batch_size=batch_size,
            )
        def _timed(optimize: bool, parallelism: str):
            best = None
            run = None
            for _ in range(2):  # wall noise: keep the better of two runs
                run, seconds = _run_wall(
                    swan, model_name=model_name, shots=shots, workers=workers,
                    batch_size=batch_size, optimize=optimize,
                    parallelism=parallelism,
                )
                best = seconds if best is None else min(best, seconds)
            return run, best

        pre, pre_seconds = _timed(False, "threads")
        post, post_seconds = _timed(True, "threads")
        post_proc, post_proc_seconds = _timed(True, "processes")
        for label, run in (("threads", post), ("processes", post_proc)):
            identical = (
                pre.usage == run.usage
                and _outcome_records(pre) == _outcome_records(run)
                and (pre.cache_hits, pre.cache_misses)
                == (run.cache_hits, run.cache_misses)
            )
            if not identical:
                raise ReproError(
                    f"optimized UDF run ({label}) diverged from the pre-PR "
                    f"run at scale {scale} — refusing to report its speedup"
                )
        entry["wall"] = {
            "pre_seconds": round(pre_seconds, 4),
            "post_seconds": round(post_seconds, 4),
            "post_processes_seconds": round(post_proc_seconds, 4),
            "speedup": round(pre_seconds / post_seconds, 4)
            if post_seconds > 0
            else None,
            "speedup_processes": round(pre_seconds / post_proc_seconds, 4)
            if post_proc_seconds > 0
            else None,
            "identical": True,
        }
        payload["scales"][str(scale)] = entry
    return payload


def write_scale_json(
    path: Union[str, Path] = "BENCH_scale.json",
    *,
    scale: Optional[int] = None,
    **kwargs,
) -> tuple[Path, dict]:
    """Write BENCH_scale.json; ``scale`` caps the default rung ladder."""
    if scale is not None:
        kwargs.setdefault("scales", scales_up_to(scale))
    payload = measure_scale(**kwargs)
    target = Path(path)
    target.write_text(json.dumps(payload, indent=2) + "\n")
    return target, payload


def format_scale_report(payload: dict, path: Optional[Path] = None) -> str:
    """Console rendering: the rows-vs-makespan curve plus wall speedups."""
    from repro.eval.report import format_table

    rows = []
    for entry in payload["scales"].values():
        udf = entry["pipelines"]["udf"]
        hqdl = entry["pipelines"]["hqdl"]
        wall = entry["wall"]
        rows.append(
            [
                f"{entry['scale']}x",
                entry["curated_rows"],
                f"{udf['makespan_seconds']:.1f} s",
                f"{udf['ex'] * 100:.1f}%",
                udf["llm_calls"],
                f"{hqdl['makespan_seconds']:.1f} s",
                f"{wall['pre_seconds']:.2f} s",
                f"{wall['post_seconds']:.2f} s",
                f"{wall['speedup']:.2f}x" if wall["speedup"] else "-",
                f"{wall['speedup_processes']:.2f}x"
                if wall["speedup_processes"]
                else "-",
            ]
        )
    world_rows = []
    for database, entry in payload.get("worlds", {}).items():
        for rung in entry["scales"].values():
            udf = rung["pipelines"]["udf"]
            hqdl = rung["pipelines"]["hqdl"]
            world_rows.append(
                [
                    database,
                    f"{rung['scale']}x",
                    rung["curated_rows"],
                    f"{udf['makespan_seconds']:.1f} s",
                    f"{udf['ex'] * 100:.1f}%",
                    udf["llm_calls"],
                    f"{hqdl['makespan_seconds']:.1f} s",
                    f"{hqdl['ex'] * 100:.1f}%",
                ]
            )
    title = (
        f"Rows vs makespan on `{payload['database']}` "
        f"({payload['model']}, {payload['shots']}-shot, "
        f"workers={payload['workers']}; virtual makespans, wall-clock "
        "pre=unoptimized threads / post=optimized threads; procs column "
        "is the optimized process-pool speedup"
        + (f"; also written to {path}" if path else "")
        + ")."
    )
    text = format_table(
        [
            "Scale", "Rows", "UDF makespan", "UDF EX", "UDF calls",
            "HQDL makespan", "UDF wall pre", "UDF wall post", "Speedup",
            "Procs",
        ],
        rows,
        title=title,
    )
    if world_rows:
        text += "\n\n" + format_table(
            [
                "World", "Scale", "Rows", "UDF makespan", "UDF EX",
                "UDF calls", "HQDL makespan", "HQDL EX",
            ],
            world_rows,
            title=(
                "All four SWAN worlds on the virtual clock "
                f"(rungs capped at {payload.get('world_scale_cap', '?')}x; "
                "three questions per world)."
            ),
        )
    return text
