"""``python -m repro.harness explain``: one question, fully accounted.

Re-runs one database with tracing and provenance enabled, then prints
everything the run learned about one question:

- the question's **span tree** (virtual-time durations, per stage);
- the **provenance summary** — how many cells fed the answer, how they
  were served (fresh / memory / disk / mapping-store), how many came
  back NULL and why — plus sample cell → call chains;
- the **miss classification** from :mod:`repro.eval.attribution` when
  the question missed, or a plain CORRECT verdict when it didn't.

The rerun is deterministic (mock oracle, virtual clock), so explain
output is stable run over run — suitable for diffing.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ReproError
from repro.eval.attribution import cells_for_question, classify_miss
from repro.llm.parallel import SimulatedClock, SimulatedLatencyClient
from repro.obs import ProvenanceRecorder, Telemetry
from repro.swan.base import Question
from repro.swan.benchmark import Swan, load_benchmark

#: how many cell → call chains explain prints before eliding
_MAX_CHAINS = 8

#: how many same-named sibling spans render before the rest collapse
_MAX_SIBLINGS = 6


def _resolve_question(swan: Swan, database: str, question_ref: str) -> Question:
    """A question by qid, or by 1-based index within its database."""
    questions = swan.questions_for(database)
    if question_ref.isdigit():
        index = int(question_ref)
        if not 1 <= index <= len(questions):
            raise ReproError(
                f"question index must be 1..{len(questions)}, got {index}"
            )
        return questions[index - 1]
    for question in questions:
        if question.qid == question_ref:
            return question
    raise ReproError(
        f"no question {question_ref!r} in database {database!r}; "
        f"use a qid like {questions[0].qid!r} or an index 1..{len(questions)}"
    )


def _render_span(span, indent: int = 0) -> list[str]:
    attrs = ", ".join(
        f"{key}={value}" for key, value in sorted(span.attributes.items())
    )
    suffix = f" [{attrs}]" if attrs else ""
    lines = [
        f"{'  ' * indent}{span.name} ({span.duration:.3f}s){suffix}"
    ]
    # collapse long runs of same-named siblings (26 llm:call spans say
    # less than 6 spans plus an aggregate line)
    shown: dict[str, int] = {}
    elided: dict[str, list] = {}
    for child in span.children:
        count = shown.get(child.name, 0)
        if count < _MAX_SIBLINGS:
            shown[child.name] = count + 1
            lines.extend(_render_span(child, indent + 1))
        else:
            elided.setdefault(child.name, []).append(child)
    for name, children in elided.items():
        total = sum(child.duration for child in children)
        lines.append(
            f"{'  ' * (indent + 1)}... {len(children)} more {name} "
            f"span(s) ({total:.3f}s total)"
        )
    return lines


def _question_span(telemetry: Telemetry, qid: str):
    for span in telemetry.tracer.spans:
        if span.name == "question" and span.attributes.get("qid") == qid:
            return span
    return None


def _tier_counts(cells) -> dict[str, int]:
    counts: dict[str, int] = {}
    for cell in cells:
        counts[cell.tier] = counts.get(cell.tier, 0) + 1
    return counts


def _chain_line(provenance, cell) -> str:
    key = "/".join(str(part) for part in cell.key)
    target = f"{cell.table}[{key}].{cell.column}"
    flags = []
    if cell.degraded:
        flags.append("degraded")
    elif cell.null:
        flags.append("null")
    call = provenance.call(cell.call_id)
    if call is None:
        source = f"<- ({cell.tier}, no call record)"
    else:
        parts = [cell.tier, f"{call.dispatches} dispatch(es)"]
        if call.paid_calls:
            parts.append(f"{call.input_tokens}->{call.output_tokens} tokens")
        if call.retries:
            parts.append(f"{call.retries} retries: {','.join(call.faults)}")
        if call.failed:
            parts.append(f"FAILED {call.error}")
        if call.planned:
            parts.append("planned")
        source = f"<- {call.call_id} ({', '.join(parts)})"
    flag_text = f" [{', '.join(flags)}]" if flags else ""
    return f"{target}{flag_text} {source}"


def explain_question(
    database: str,
    question_ref: str,
    *,
    pipeline: str = "udf",
    model_name: str = "gpt-3.5-turbo",
    shots: int = 0,
    workers: int = 1,
    plan: Optional[str] = None,
    swan: Optional[Swan] = None,
) -> str:
    """Rerun one database and explain one question's answer end to end."""
    from repro.harness.runner import GoldResults, run_hqdl, run_udf

    if pipeline not in ("udf", "hqdl"):
        raise ReproError(f"pipeline must be 'udf' or 'hqdl', got {pipeline!r}")
    swan = swan if swan is not None else load_benchmark()
    if database not in swan.database_names():
        raise ReproError(
            f"unknown database {database!r}; valid names are: "
            f"{', '.join(swan.database_names())}"
        )
    question = _resolve_question(swan, database, question_ref)
    clock = SimulatedClock(workers)
    telemetry = Telemetry.on(clock)
    provenance = ProvenanceRecorder()
    gold = GoldResults(swan)
    common = dict(
        databases=[database], gold=gold, workers=workers,
        wrap_client=lambda model: SimulatedLatencyClient(model, clock),
        telemetry=telemetry, provenance=provenance,
    )
    if pipeline == "udf":
        run = run_udf(swan, model_name, shots, plan=plan, **common)
    else:
        run = run_hqdl(swan, model_name, shots, **common)

    outcome = next(
        (o for o in run.outcomes if o.qid == question.qid), None
    )
    if outcome is None:  # pragma: no cover - resolve_question precludes it
        raise ReproError(f"question {question.qid!r} produced no outcome")

    lines: list[str] = []
    lines.append(
        f"== {question.qid} ({pipeline}, {model_name}, {shots}-shot"
        + (f", plan={plan}" if plan else "")
        + ") =="
    )
    if outcome.correct:
        lines.append("verdict: CORRECT")
    else:
        cells = cells_for_question(provenance, question, pipeline)
        attribution = classify_miss(outcome, cells, pipeline=pipeline)
        lines.append(f"verdict: MISS ({attribution.miss_class})")
        if attribution.detail:
            lines.append(f"  detail: {attribution.detail}")
    lines.append(
        f"rows: expected {outcome.expected_rows}, got {outcome.actual_rows}"
        + (f"; error: {outcome.error}" if outcome.error else "")
    )

    span = _question_span(telemetry, question.qid)
    lines.append("")
    lines.append("span tree (virtual time):")
    if span is None:
        lines.append("  (no question span recorded)")
    else:
        lines.extend("  " + line for line in _render_span(span))

    cells = cells_for_question(provenance, question, pipeline)
    lines.append("")
    nulls = sum(1 for c in cells if c.null)
    degraded = sum(1 for c in cells if c.degraded)
    tiers = ", ".join(
        f"{tier}={count}" for tier, count in sorted(_tier_counts(cells).items())
    )
    lines.append(
        f"provenance: {len(cells)} cells ({nulls} null, {degraded} degraded)"
        + (f"; tiers: {tiers}" if cells else "")
    )
    interesting = [c for c in cells if c.null or c.degraded] or cells
    for cell in interesting[:_MAX_CHAINS]:
        lines.append(f"  {_chain_line(provenance, cell)}")
    if len(interesting) > _MAX_CHAINS:
        lines.append(f"  ... and {len(interesting) - _MAX_CHAINS} more")
    return "\n".join(lines)


def explain_request(
    request_id: int,
    *,
    scale: int = 1,
    seed: int = 0,
    horizon: Optional[float] = None,
    multiplier: float = 2.0,
    window_seconds: Optional[float] = None,
    batching=None,
    trace_sample: Optional[int] = None,
) -> str:
    """Rerun one serving level and explain one request end to end.

    The rerun is the same deterministic virtual-clock simulation the
    load test runs, with a passive trace log attached, so the output is
    stable run over run: the request's terminal outcome, its span tree
    (attribution tiles exactly — zero unaccounted), the per-stage
    self-time table, its batch waves and co-members, shared-token
    apportionment, the tail sampler's verdict, and any SLO alert that
    carries this trace as its exemplar.
    """
    from repro.harness.benchserve import (
        DEFAULT_HORIZON, DEFAULT_TRACE_SAMPLE, SERVE_DATABASES,
        build_observability, default_config, default_tenants,
        measure_capacity, run_level,
    )
    from repro.obs.export import format_stage_summary, stage_summary
    from repro.obs.sampler import TailSampler
    from repro.obs.timeseries import DEFAULT_WINDOW_SECONDS
    from repro.serve.trace import ServeTraceLog, materialize_request
    from repro.swan.benchmark import load_benchmark_subset

    if multiplier <= 0:
        raise ReproError(f"multiplier must be > 0, got {multiplier}")
    horizon = horizon if horizon is not None else DEFAULT_HORIZON
    window_seconds = (
        window_seconds if window_seconds is not None
        else DEFAULT_WINDOW_SECONDS
    )
    swan = load_benchmark_subset(scale, list(SERVE_DATABASES))
    config = default_config()
    tenants = default_tenants()
    capacity = measure_capacity(
        swan, config, tenants, seed=seed, horizon=horizon
    )
    telemetry, tracker = build_observability(window_seconds=window_seconds)
    log = ServeTraceLog()
    run_level(
        swan, config, tenants, multiplier, capacity,
        seed=seed, horizon=horizon,
        telemetry=telemetry, slo_tracker=tracker,
        batching=batching, trace=log,
    )
    record = log.by_request_id(request_id)
    if record is None:
        ids = sorted(r.request_id for r in log.records)
        hint = (
            f"this run offered request ids {ids[0]}..{ids[-1]}"
            if ids else "this run offered no requests"
        )
        raise ReproError(
            f"no request {request_id} at {multiplier:g}x "
            f"(seed={seed}, horizon={horizon:g}s); {hint}"
        )
    sampler = TailSampler(
        seed=seed,
        slowest_k=(
            trace_sample if trace_sample is not None else DEFAULT_TRACE_SAMPLE
        ),
        window_seconds=window_seconds,
    )
    kept = sampler.decide(log.records)

    outcome = record.status + (f"/{record.reason}" if record.reason else "")
    lines = [
        f"== request {record.request_id} (trace {record.trace_id}) at "
        f"{multiplier:g}x capacity, seed={seed} ==",
        f"outcome: {outcome}  tenant={record.tenant} "
        f"db={record.database} pipeline={record.pipeline} "
        f"priority={record.priority}",
        f"timeline: arrival {record.arrival:.3f}s"
        + (f", dispatch {record.start:.3f}s" if record.start is not None else "")
        + (f", land {record.land:.3f}s" if record.land is not None else "")
        + f", finish {record.finish:.3f}s "
        f"(deadline {record.deadline_at:.3f}s) — "
        f"latency {record.latency:.3f}s, queue wait {record.queue_wait:.3f}s",
    ]
    if record.trace_id in kept:
        lines.append(
            f"tail sampler: KEPT ({kept[record.trace_id]})"
        )
    else:
        lines.append(
            "tail sampler: dropped (clean serve outside the slowest-"
            f"{sampler.slowest_k}; explain rebuilds it on demand anyway)"
        )

    waves = {wave.wave_id: wave for wave in log.waves}
    root = materialize_request(record, waves)
    lines.append("")
    lines.append("span tree (virtual time):")
    lines.extend("  " + line for line in _render_span(root))

    rows = stage_summary([root])
    unaccounted = sum(
        row["self_s"] for row in rows if row["stage"] == "(unaccounted)"
    )
    lines.append("")
    lines.append(format_stage_summary(
        rows,
        title=f"Stage attribution over {root.duration:.3f}s "
        f"offer-to-finish ({unaccounted:.6f}s unaccounted).",
    ))

    if record.waves:
        lines.append("")
        lines.append(f"batch waves ({len(record.waves)}):")
        for wave_id in record.waves:
            wave = waves.get(wave_id)
            if wave is None:
                lines.append(f"  {wave_id}: (no wave record)")
                continue
            others = [m for m in wave.members if m != record.trace_id]
            lines.append(
                f"  {wave_id}: flush {wave.flush:.3f}s -> land "
                f"{wave.land:.3f}s, {wave.calls} call(s) over "
                f"{wave.items} item(s), shared with "
                + (", ".join(others) if others else "nobody (solo batch)")
            )
        lines.append(
            f"token apportionment: {record.input_tokens} in / "
            f"{record.output_tokens} out over {record.llm_calls} call(s); "
            f"{record.shared_tokens} fan-out token(s) saved by sharing"
        )
    elif record.llm_calls:
        lines.append("")
        lines.append(
            f"llm spend: {record.llm_calls} call(s), "
            f"{record.input_tokens} in / {record.output_tokens} out tokens, "
            f"{record.retries} retries"
        )
    if record.status == "degraded":
        lines.append(
            f"degradation: {record.reason}"
            + (
                f" ({record.degraded_keys} key(s) answered degraded)"
                if record.degraded_keys else ""
            )
        )

    named = [
        alert for alert in tracker.alerts
        if alert.exemplar == record.trace_id
    ]
    lines.append("")
    if named:
        lines.append(
            f"this trace is the exemplar of {len(named)} SLO alert(s):"
        )
        for alert in named:
            lines.append(
                f"  t={alert.time:>7.1f}  [{alert.severity}] {alert.slo} "
                f"burn={alert.burn_rate:.1f} (window {alert.window})"
            )
    else:
        lines.append("no SLO alert carries this trace as its exemplar.")
    return "\n".join(lines)
