"""``python -m repro.harness explain``: one question, fully accounted.

Re-runs one database with tracing and provenance enabled, then prints
everything the run learned about one question:

- the question's **span tree** (virtual-time durations, per stage);
- the **provenance summary** — how many cells fed the answer, how they
  were served (fresh / memory / disk / mapping-store), how many came
  back NULL and why — plus sample cell → call chains;
- the **miss classification** from :mod:`repro.eval.attribution` when
  the question missed, or a plain CORRECT verdict when it didn't.

The rerun is deterministic (mock oracle, virtual clock), so explain
output is stable run over run — suitable for diffing.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ReproError
from repro.eval.attribution import cells_for_question, classify_miss
from repro.llm.parallel import SimulatedClock, SimulatedLatencyClient
from repro.obs import ProvenanceRecorder, Telemetry
from repro.swan.base import Question
from repro.swan.benchmark import Swan, load_benchmark

#: how many cell → call chains explain prints before eliding
_MAX_CHAINS = 8

#: how many same-named sibling spans render before the rest collapse
_MAX_SIBLINGS = 6


def _resolve_question(swan: Swan, database: str, question_ref: str) -> Question:
    """A question by qid, or by 1-based index within its database."""
    questions = swan.questions_for(database)
    if question_ref.isdigit():
        index = int(question_ref)
        if not 1 <= index <= len(questions):
            raise ReproError(
                f"question index must be 1..{len(questions)}, got {index}"
            )
        return questions[index - 1]
    for question in questions:
        if question.qid == question_ref:
            return question
    raise ReproError(
        f"no question {question_ref!r} in database {database!r}; "
        f"use a qid like {questions[0].qid!r} or an index 1..{len(questions)}"
    )


def _render_span(span, indent: int = 0) -> list[str]:
    attrs = ", ".join(
        f"{key}={value}" for key, value in sorted(span.attributes.items())
    )
    suffix = f" [{attrs}]" if attrs else ""
    lines = [
        f"{'  ' * indent}{span.name} ({span.duration:.3f}s){suffix}"
    ]
    # collapse long runs of same-named siblings (26 llm:call spans say
    # less than 6 spans plus an aggregate line)
    shown: dict[str, int] = {}
    elided: dict[str, list] = {}
    for child in span.children:
        count = shown.get(child.name, 0)
        if count < _MAX_SIBLINGS:
            shown[child.name] = count + 1
            lines.extend(_render_span(child, indent + 1))
        else:
            elided.setdefault(child.name, []).append(child)
    for name, children in elided.items():
        total = sum(child.duration for child in children)
        lines.append(
            f"{'  ' * (indent + 1)}... {len(children)} more {name} "
            f"span(s) ({total:.3f}s total)"
        )
    return lines


def _question_span(telemetry: Telemetry, qid: str):
    for span in telemetry.tracer.spans:
        if span.name == "question" and span.attributes.get("qid") == qid:
            return span
    return None


def _tier_counts(cells) -> dict[str, int]:
    counts: dict[str, int] = {}
    for cell in cells:
        counts[cell.tier] = counts.get(cell.tier, 0) + 1
    return counts


def _chain_line(provenance, cell) -> str:
    key = "/".join(str(part) for part in cell.key)
    target = f"{cell.table}[{key}].{cell.column}"
    flags = []
    if cell.degraded:
        flags.append("degraded")
    elif cell.null:
        flags.append("null")
    call = provenance.call(cell.call_id)
    if call is None:
        source = f"<- ({cell.tier}, no call record)"
    else:
        parts = [cell.tier, f"{call.dispatches} dispatch(es)"]
        if call.paid_calls:
            parts.append(f"{call.input_tokens}->{call.output_tokens} tokens")
        if call.retries:
            parts.append(f"{call.retries} retries: {','.join(call.faults)}")
        if call.failed:
            parts.append(f"FAILED {call.error}")
        if call.planned:
            parts.append("planned")
        source = f"<- {call.call_id} ({', '.join(parts)})"
    flag_text = f" [{', '.join(flags)}]" if flags else ""
    return f"{target}{flag_text} {source}"


def explain_question(
    database: str,
    question_ref: str,
    *,
    pipeline: str = "udf",
    model_name: str = "gpt-3.5-turbo",
    shots: int = 0,
    workers: int = 1,
    plan: Optional[str] = None,
    swan: Optional[Swan] = None,
) -> str:
    """Rerun one database and explain one question's answer end to end."""
    from repro.harness.runner import GoldResults, run_hqdl, run_udf

    if pipeline not in ("udf", "hqdl"):
        raise ReproError(f"pipeline must be 'udf' or 'hqdl', got {pipeline!r}")
    swan = swan if swan is not None else load_benchmark()
    if database not in swan.database_names():
        raise ReproError(
            f"unknown database {database!r}; valid names are: "
            f"{', '.join(swan.database_names())}"
        )
    question = _resolve_question(swan, database, question_ref)
    clock = SimulatedClock(workers)
    telemetry = Telemetry.on(clock)
    provenance = ProvenanceRecorder()
    gold = GoldResults(swan)
    common = dict(
        databases=[database], gold=gold, workers=workers,
        wrap_client=lambda model: SimulatedLatencyClient(model, clock),
        telemetry=telemetry, provenance=provenance,
    )
    if pipeline == "udf":
        run = run_udf(swan, model_name, shots, plan=plan, **common)
    else:
        run = run_hqdl(swan, model_name, shots, **common)

    outcome = next(
        (o for o in run.outcomes if o.qid == question.qid), None
    )
    if outcome is None:  # pragma: no cover - resolve_question precludes it
        raise ReproError(f"question {question.qid!r} produced no outcome")

    lines: list[str] = []
    lines.append(
        f"== {question.qid} ({pipeline}, {model_name}, {shots}-shot"
        + (f", plan={plan}" if plan else "")
        + ") =="
    )
    if outcome.correct:
        lines.append("verdict: CORRECT")
    else:
        cells = cells_for_question(provenance, question, pipeline)
        attribution = classify_miss(outcome, cells, pipeline=pipeline)
        lines.append(f"verdict: MISS ({attribution.miss_class})")
        if attribution.detail:
            lines.append(f"  detail: {attribution.detail}")
    lines.append(
        f"rows: expected {outcome.expected_rows}, got {outcome.actual_rows}"
        + (f"; error: {outcome.error}" if outcome.error else "")
    )

    span = _question_span(telemetry, question.qid)
    lines.append("")
    lines.append("span tree (virtual time):")
    if span is None:
        lines.append("  (no question span recorded)")
    else:
        lines.extend("  " + line for line in _render_span(span))

    cells = cells_for_question(provenance, question, pipeline)
    lines.append("")
    nulls = sum(1 for c in cells if c.null)
    degraded = sum(1 for c in cells if c.degraded)
    tiers = ", ".join(
        f"{tier}={count}" for tier, count in sorted(_tier_counts(cells).items())
    )
    lines.append(
        f"provenance: {len(cells)} cells ({nulls} null, {degraded} degraded)"
        + (f"; tiers: {tiers}" if cells else "")
    )
    interesting = [c for c in cells if c.null or c.degraded] or cells
    for cell in interesting[:_MAX_CHAINS]:
        lines.append(f"  {_chain_line(provenance, cell)}")
    if len(interesting) > _MAX_CHAINS:
        lines.append(f"  ... and {len(interesting) - _MAX_CHAINS} more")
    return "\n".join(lines)
