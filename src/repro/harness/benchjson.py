"""Machine-readable parallel-dispatch bench results (``BENCH_parallel.json``).

The parallel-execution story used to be a formula printout; now that the
dispatcher is real, this module *measures* it — driving the reference
full-scan hybrid query through :class:`~repro.udf.executor.
HybridQueryExecutor` under a :class:`~repro.llm.parallel.SimulatedClock`
(virtual time, zero real sleeping) and recording the scheduler's actual
makespan next to the analytical :func:`~repro.llm.batching.
parallel_makespan` bound.  The JSON payload gives CI a stable,
machine-readable trajectory of sequential-vs-parallel latency across
PRs.

Entry points: ``python -m repro.harness bench-json`` or
``python benchmarks/emit_bench_json.py``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.llm.batching import LatencyModel, parallel_makespan, sequential_makespan
from repro.llm.chat import MockChatModel
from repro.llm.oracle import KnowledgeOracle
from repro.llm.parallel import SimulatedClock, SimulatedLatencyClient
from repro.llm.profiles import get_profile
from repro.obs import MetricsRegistry, Telemetry
from repro.swan.benchmark import Swan, load_benchmark
from repro.swan.build import build_curated_database
from repro.udf.executor import HybridQueryExecutor

#: The reference query: a full player scan, the paper's worst-case LLM
#: traffic (every distinct player reaches the model, batched 5 per call).
PLAYER_HEIGHT_QUERY = (
    "SELECT COUNT(*) FROM player WHERE "
    "CAST({{LLMMap('What is the height in centimeters of this football "
    "player?', 'player::player_name')}} AS INTEGER) > 180"
)

#: Worker counts measured alongside the analytical bound.
DEFAULT_WORKER_COUNTS = (4, 16)


def measure_parallel_makespans(
    swan: Optional[Swan] = None,
    *,
    worker_counts: Sequence[int] = DEFAULT_WORKER_COUNTS,
    model_name: str = "perfect",
    database: str = "european_football",
    query: str = PLAYER_HEIGHT_QUERY,
    latency_model: Optional[LatencyModel] = None,
) -> dict:
    """Measured vs analytical makespans for the reference hybrid query.

    One sequential execution collects the per-call token sizes that feed
    the analytical model; then, per worker count, a fresh executor runs
    the same query with a real dispatcher whose paid calls advance a
    simulated clock — the measured makespan is the virtual finish time
    of the actual schedule.
    """
    swan = swan if swan is not None else load_benchmark()
    world = swan.world(database)
    profile = get_profile(model_name)
    latency_model = latency_model if latency_model is not None else LatencyModel()

    with build_curated_database(world) as db:
        model = MockChatModel(KnowledgeOracle(world), profile)
        executor = HybridQueryExecutor(db, model, world)
        _, report = executor.execute_with_report(query)
    sequential_seconds = sequential_makespan(report.call_sizes, latency_model)

    workers_payload: dict[str, dict] = {}
    for workers in worker_counts:
        clock = SimulatedClock(workers)
        telemetry = Telemetry(metrics=MetricsRegistry())
        with build_curated_database(world) as db:
            model = MockChatModel(KnowledgeOracle(world), profile)
            client = SimulatedLatencyClient(model, clock, latency_model)
            executor = HybridQueryExecutor(
                db, client, world, workers=workers, telemetry=telemetry
            )
            executor.execute(query)
        measured = clock.makespan()
        analytical = parallel_makespan(report.call_sizes, workers, latency_model)
        metrics = telemetry.metrics.snapshot()
        workers_payload[str(workers)] = {
            "analytical_seconds": round(analytical, 4),
            "measured_seconds": round(measured, 4),
            "speedup_vs_sequential": round(
                sequential_seconds / measured if measured else 0.0, 2
            ),
            "cache_hits": metrics.get("llm.cache.hits", 0),
            "cache_misses": metrics.get("llm.cache.misses", 0),
            "single_flight_joins": metrics.get(
                "llm.cache.single_flight_joins", 0
            ),
            "max_in_flight": metrics.get("dispatch.in_flight.max", 0),
        }

    return {
        "bench": "parallel_dispatch",
        "database": database,
        "model": model_name,
        "query": query,
        "llm_calls": report.llm_calls,
        "sequential_seconds": round(sequential_seconds, 4),
        "workers": workers_payload,
    }


def write_bench_json(
    path: Union[str, Path] = "BENCH_parallel.json",
    *,
    swan: Optional[Swan] = None,
) -> tuple[Path, dict]:
    """Write the measured bench payload to ``path``; returns (path, payload)."""
    payload = measure_parallel_makespans(swan)
    target = Path(path)
    target.write_text(json.dumps(payload, indent=2) + "\n")
    return target, payload


# -- chaos bench (BENCH_chaos.json) ------------------------------------------------

#: Fault intensities swept by the chaos bench; 0.0 anchors the
#: byte-identical baseline, the rest trace the degradation curve.
DEFAULT_FAULT_RATES = (0.0, 0.1, 0.3, 0.5)


def measure_chaos_degradation(
    swan: Optional[Swan] = None,
    *,
    model_name: str = "gpt-3.5-turbo",
    shots: int = 0,
    fault_rates: Sequence[float] = DEFAULT_FAULT_RATES,
    seed: int = 0,
    retries: bool = True,
    databases: Optional[Sequence[str]] = None,
) -> dict:
    """EX/F1 vs fault intensity for both pipelines, with attempt ledgers.

    Every backoff wait runs on a simulated clock, so the sweep is as fast
    as a normal run regardless of how many retries the faults provoke.
    The rate-0 point doubles as a regression anchor: its EX must equal
    the unwrapped pipelines' (asserted by the tier-1 chaos tests).
    """
    from repro.harness.runner import GoldResults, chaos_sweep

    swan = swan if swan is not None else load_benchmark()
    gold = GoldResults(swan)
    runs = chaos_sweep(
        swan, model_name, shots,
        fault_rates=fault_rates, seed=seed, retries=retries,
        databases=databases, gold=gold, with_metrics=True,
    )
    baseline = {
        run.pipeline: run.ex for run in runs if run.fault_rate == 0.0
    }
    points = []
    for run in runs:
        record = run.as_record()
        base = baseline.get(run.pipeline, 0.0)
        record["ex_recovered_vs_baseline"] = round(
            run.ex / base if base else 0.0, 4
        )
        record["accounted"] = run.resilience.is_accounted()
        points.append(record)
    return {
        "bench": "chaos",
        "model": model_name,
        "shots": shots,
        "seed": seed,
        "retries": retries,
        "fault_rates": [round(rate, 4) for rate in fault_rates],
        "databases": list(databases) if databases is not None else "all",
        "points": points,
    }


def write_chaos_json(
    path: Union[str, Path] = "BENCH_chaos.json",
    *,
    swan: Optional[Swan] = None,
    **kwargs,
) -> tuple[Path, dict]:
    """Write the chaos degradation payload to ``path``; returns (path, payload)."""
    payload = measure_chaos_degradation(swan, **kwargs)
    target = Path(path)
    target.write_text(json.dumps(payload, indent=2) + "\n")
    return target, payload
