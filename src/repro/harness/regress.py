"""``python -m repro.harness regress``: regression gating over the ledger.

Runs the canonical regression workload (HQ UDFs on ``superhero``,
``gpt-3.5-turbo``, 0-shot — deterministic under the mock oracle),
appends it to the persistent :class:`~repro.obs.ledger.RunLedger`, and
diffs the fresh run against a committed baseline JSON:

- **EX drop** beyond ``--max-ex-drop`` (default 0.0 — any drop fails);
- **token growth** beyond ``--max-token-growth`` (default 10%);
- **virtual-makespan growth** beyond ``--max-makespan-growth``
  (default 25%).

When a fresh ``BENCH_scale.json`` (from ``bench-scale --scale=10``) sits
next to the ledger, its scale-10 UDF virtual makespan is diffed against
the baseline's ``scale10_makespan`` under the same
``--max-makespan-growth`` threshold — gating the scaling hot path, not
just the scale-1 workload.  Likewise a fresh ``BENCH_serve.json`` (from
``loadtest``) pins serve-mode p99 latency at the lowest offered-load
level against the baseline's ``serve_p99`` — gating the serving path's
per-request latency — and a fresh ``BENCH_slo.json`` pins the
availability error budget consumed at the lowest load level against the
baseline's ``slo_budget`` (an *absolute* increase bound: at a trickle
of load the server should shed nothing, so the budget burned there is
~0 and relative growth would be meaningless).  The same BENCH_serve.json
also pins tokens-per-answer at the 1x level (batched arm preferred)
against the baseline's ``serve_tokens_per_answer`` under the
token-growth threshold.  A missing bench file or baseline key only
notes the omission; it never fails the gate.

Exit code 1 on any breach, 0 when clean — so CI can gate on it.
``--update-baseline`` rewrites the baseline from the fresh run instead
of diffing (exit 0).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.obs.ledger import RunLedger, config_fingerprint

#: Default artifact locations, relative to the invocation directory.
DEFAULT_LEDGER = "BENCH_ledger.sqlite"
DEFAULT_BASELINE = "baselines/regress_baseline.json"
DEFAULT_SCALE_BENCH = "BENCH_scale.json"
DEFAULT_SERVE_BENCH = "BENCH_serve.json"
DEFAULT_SLO_BENCH = "BENCH_slo.json"

#: Max *absolute* increase in the lowest-load availability error budget
#: consumed fraction (baseline is ~0, so a relative bound is useless).
MAX_SLO_BUDGET_INCREASE = 0.02

#: The fixed regression workload (small, deterministic, ~seconds).
_REGRESS_LABEL = "regress"
_REGRESS_DATABASES = ("superhero",)
_REGRESS_MODEL = "gpt-3.5-turbo"
_REGRESS_SHOTS = 0
_REGRESS_WORKERS = 4

#: The scalars a baseline must carry to be diffable.
BASELINE_FIELDS = ("ex", "total_tokens", "makespan")


def _run_workload(ledger: RunLedger) -> dict:
    """Run the regression workload, append it, return its ledger row."""
    from repro.harness.runner import run_udf
    from repro.swan.benchmark import load_benchmark

    swan = load_benchmark()
    run_udf(
        swan,
        _REGRESS_MODEL,
        _REGRESS_SHOTS,
        databases=list(_REGRESS_DATABASES),
        workers=_REGRESS_WORKERS,
        ledger=ledger,
        ledger_label=_REGRESS_LABEL,
    )
    row = ledger.latest(label=_REGRESS_LABEL)
    assert row is not None  # append just happened
    return row


def _baseline_from_row(row: dict) -> dict:
    return {
        "label": row["label"],
        "pipeline": row["pipeline"],
        "fingerprint": row["fingerprint"],
        "ex": row["ex"],
        "total_tokens": row["input_tokens"] + row["output_tokens"],
        "makespan": row["makespan"],
        "llm_calls": row["llm_calls"],
        "config": row["payload"].get("config", {}),
    }


def load_baseline(path: Union[str, Path]) -> Optional[dict]:
    """The baseline dict, or None when missing/unreadable/incomplete."""
    path = Path(path)
    try:
        baseline = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if not isinstance(baseline, dict):
        return None
    if any(not isinstance(baseline.get(f), (int, float)) for f in BASELINE_FIELDS):
        return None
    return baseline


def write_baseline(
    path: Union[str, Path],
    row: dict,
    *,
    scale10_makespan: Optional[float] = None,
    serve_p99: Optional[float] = None,
    slo_budget: Optional[float] = None,
    serve_tokens_per_answer: Optional[float] = None,
) -> dict:
    """Write (and return) a baseline JSON distilled from one ledger row."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    baseline = _baseline_from_row(row)
    if scale10_makespan is not None:
        baseline["scale10_makespan"] = scale10_makespan
    if serve_p99 is not None:
        baseline["serve_p99"] = serve_p99
    if slo_budget is not None:
        baseline["slo_budget"] = slo_budget
    if serve_tokens_per_answer is not None:
        baseline["serve_tokens_per_answer"] = serve_tokens_per_answer
    path.write_text(
        json.dumps(baseline, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return baseline


def scale10_makespan(path: Union[str, Path]) -> Optional[float]:
    """The scale-10 UDF virtual makespan from a BENCH_scale.json, if any."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    try:
        value = payload["scales"]["10"]["pipelines"]["udf"]["makespan_seconds"]
    except (KeyError, TypeError):
        return None
    return float(value) if isinstance(value, (int, float)) else None


def serve_p99(path: Union[str, Path]) -> Optional[float]:
    """Lowest-load p99 latency from a BENCH_serve.json, if any.

    The lowest offered-load level is pure service latency (no queueing),
    so growth there means the serving path itself got slower.
    """
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    try:
        levels = payload["levels"]
        lowest = min(levels, key=lambda level: level["multiplier"])
        value = lowest["p99"]
    except (KeyError, TypeError, ValueError):
        return None
    return float(value) if isinstance(value, (int, float)) else None


def serve_tokens_per_answer(path: Union[str, Path]) -> Optional[float]:
    """Tokens-per-answer at the 1x load level from a BENCH_serve.json.

    Prefers the cross-request-batched arm's ``tokens_per_answer`` (the
    serving economy the batcher exists to improve); falls back to the
    unbatched level figure when the sweep ran with batching off.  None
    when the file, the 1x level, or both keys are missing — the gate
    notes the omission rather than failing.
    """
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    try:
        level = next(
            lv for lv in payload["levels"]
            if abs(lv["multiplier"] - 1.0) < 1e-9
        )
    except (KeyError, TypeError, StopIteration):
        return None
    batching = level.get("batching") if isinstance(level, dict) else None
    if isinstance(batching, dict):
        value = batching.get("tokens_per_answer")
    else:
        value = level.get("tokens_per_answer")
    return float(value) if isinstance(value, (int, float)) else None


def slo_budget_consumed(path: Union[str, Path]) -> Optional[float]:
    """Lowest-load availability budget consumed from a BENCH_slo.json.

    At the lowest offered-load level nothing should shed, so the
    availability error budget burned there is the serving path's
    background refusal rate — any increase is a behavior change.
    """
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    try:
        levels = payload["levels"]
        lowest = min(levels, key=lambda level: level["multiplier"])
        value = lowest["budgets"]["availability"]["budget_consumed"]
    except (KeyError, TypeError, ValueError):
        return None
    return float(value) if isinstance(value, (int, float)) else None


def _growth(latest: float, baseline: float) -> float:
    if baseline <= 0:
        return 0.0 if latest <= 0 else float("inf")
    return (latest - baseline) / baseline


def diff_against_baseline(
    row: dict,
    baseline: dict,
    *,
    max_ex_drop: float = 0.0,
    max_token_growth: float = 0.10,
    max_makespan_growth: float = 0.25,
    fresh_scale10: Optional[float] = None,
    fresh_serve_p99: Optional[float] = None,
    fresh_slo_budget: Optional[float] = None,
    fresh_serve_tpa: Optional[float] = None,
    max_slo_budget_increase: float = MAX_SLO_BUDGET_INCREASE,
) -> tuple[bool, list[str]]:
    """(ok, report lines) for one fresh ledger row vs one baseline.

    ``fresh_scale10`` is the scale-10 UDF virtual makespan from a fresh
    BENCH_scale.json; it is diffed against the baseline's
    ``scale10_makespan`` when both sides exist, and noted otherwise.
    ``fresh_serve_p99`` (lowest-load p99 from a fresh BENCH_serve.json)
    is likewise diffed against the baseline's ``serve_p99``, and
    ``fresh_slo_budget`` (lowest-load availability budget consumed from
    a fresh BENCH_slo.json) against ``slo_budget`` as an absolute
    increase bound, and ``fresh_serve_tpa`` (tokens-per-answer at the
    1x level, batched arm preferred) against ``serve_tokens_per_answer``
    under the token-growth threshold — pinning the serving economy the
    cross-request batcher buys.
    """
    fresh = _baseline_from_row(row)
    lines: list[str] = []
    ok = True

    if fresh["fingerprint"] != baseline.get("fingerprint"):
        lines.append(
            "note: config fingerprint changed "
            f"({baseline.get('fingerprint')} -> {fresh['fingerprint']}); "
            "thresholds still apply, consider --update-baseline"
        )

    checks = (
        (
            "EX",
            baseline["ex"],
            fresh["ex"],
            baseline["ex"] - fresh["ex"],
            max_ex_drop,
            "drop",
        ),
        (
            "tokens",
            baseline["total_tokens"],
            fresh["total_tokens"],
            _growth(fresh["total_tokens"], baseline["total_tokens"]),
            max_token_growth,
            "growth",
        ),
        (
            "makespan",
            baseline["makespan"],
            fresh["makespan"],
            _growth(fresh["makespan"], baseline["makespan"]),
            max_makespan_growth,
            "growth",
        ),
    )
    base_scale10 = baseline.get("scale10_makespan")
    if isinstance(base_scale10, (int, float)) and fresh_scale10 is not None:
        checks += (
            (
                "scale10 makespan",
                float(base_scale10),
                fresh_scale10,
                _growth(fresh_scale10, float(base_scale10)),
                max_makespan_growth,
                "growth",
            ),
        )
    elif fresh_scale10 is not None:
        lines.append(
            "note: baseline has no scale10_makespan; "
            "run with --update-baseline next to a fresh BENCH_scale.json"
        )
    elif isinstance(base_scale10, (int, float)):
        lines.append(
            "note: no BENCH_scale.json with a scale-10 rung found; "
            "scale-10 makespan not checked"
        )
    base_serve = baseline.get("serve_p99")
    if isinstance(base_serve, (int, float)) and fresh_serve_p99 is not None:
        checks += (
            (
                "serve p99",
                float(base_serve),
                fresh_serve_p99,
                _growth(fresh_serve_p99, float(base_serve)),
                max_makespan_growth,
                "growth",
            ),
        )
    elif fresh_serve_p99 is not None:
        lines.append(
            "note: baseline has no serve_p99; "
            "run with --update-baseline next to a fresh BENCH_serve.json"
        )
    elif isinstance(base_serve, (int, float)):
        lines.append(
            "note: no BENCH_serve.json found; serve p99 not checked"
        )
    base_tpa = baseline.get("serve_tokens_per_answer")
    if isinstance(base_tpa, (int, float)) and fresh_serve_tpa is not None:
        checks += (
            (
                "serve tokens/answer",
                float(base_tpa),
                fresh_serve_tpa,
                _growth(fresh_serve_tpa, float(base_tpa)),
                max_token_growth,
                "growth",
            ),
        )
    elif fresh_serve_tpa is not None:
        lines.append(
            "note: baseline has no serve_tokens_per_answer; "
            "run with --update-baseline next to a fresh BENCH_serve.json"
        )
    elif isinstance(base_tpa, (int, float)):
        lines.append(
            "note: BENCH_serve.json has no 1x tokens-per-answer; "
            "serve economy not checked"
        )
    base_budget = baseline.get("slo_budget")
    if isinstance(base_budget, (int, float)) and fresh_slo_budget is not None:
        checks += (
            (
                "slo budget",
                float(base_budget),
                fresh_slo_budget,
                fresh_slo_budget - float(base_budget),
                max_slo_budget_increase,
                "increase",
            ),
        )
    elif fresh_slo_budget is not None:
        lines.append(
            "note: baseline has no slo_budget; "
            "run with --update-baseline next to a fresh BENCH_slo.json"
        )
    elif isinstance(base_budget, (int, float)):
        lines.append(
            "note: no BENCH_slo.json found; error budget not checked"
        )
    for name, base, latest, delta, threshold, kind in checks:
        breached = delta > threshold + 1e-9
        status = "FAIL" if breached else "ok"
        ok = ok and not breached
        lines.append(
            f"{name}: baseline {base:g}, latest {latest:g}, "
            f"{kind} {delta:+.4g} (max {threshold:g}) [{status}]"
        )
    return ok, lines


def run_regress(
    *,
    ledger_path: Union[str, Path] = DEFAULT_LEDGER,
    baseline_path: Union[str, Path] = DEFAULT_BASELINE,
    update_baseline: bool = False,
    max_ex_drop: float = 0.0,
    max_token_growth: float = 0.10,
    max_makespan_growth: float = 0.25,
    scale_bench_path: Union[str, Path] = DEFAULT_SCALE_BENCH,
    serve_bench_path: Union[str, Path] = DEFAULT_SERVE_BENCH,
    slo_bench_path: Union[str, Path] = DEFAULT_SLO_BENCH,
) -> tuple[int, str]:
    """Run the workload, append to the ledger, diff vs the baseline.

    Returns ``(exit_code, report_text)``: 0 clean, 1 on a regression or
    a missing baseline.
    """
    with RunLedger(ledger_path) as ledger:
        row = _run_workload(ledger)
        history = len(ledger)
    lines = [
        f"regress run #{row['id']} appended to {ledger_path} "
        f"({history} run(s) on record)",
        f"workload: {row['pipeline']} on {','.join(_REGRESS_DATABASES)}, "
        f"{_REGRESS_MODEL}, {_REGRESS_SHOTS}-shot, fingerprint "
        f"{row['fingerprint']}",
    ]

    fresh_scale10 = scale10_makespan(scale_bench_path)
    fresh_serve = serve_p99(serve_bench_path)
    fresh_budget = slo_budget_consumed(slo_bench_path)
    fresh_tpa = serve_tokens_per_answer(serve_bench_path)

    if update_baseline:
        baseline = write_baseline(
            baseline_path, row,
            scale10_makespan=fresh_scale10, serve_p99=fresh_serve,
            slo_budget=fresh_budget, serve_tokens_per_answer=fresh_tpa,
        )
        lines.append(
            f"baseline updated: {baseline_path} "
            f"(ex {baseline['ex']:g}, tokens {baseline['total_tokens']}, "
            f"makespan {baseline['makespan']:g}"
            + (
                f", scale10 makespan {fresh_scale10:g}"
                if fresh_scale10 is not None
                else "; no BENCH_scale.json scale-10 rung found"
            )
            + (
                f", serve p99 {fresh_serve:g}"
                if fresh_serve is not None
                else "; no BENCH_serve.json found"
            )
            + (
                f", slo budget {fresh_budget:g}"
                if fresh_budget is not None
                else "; no BENCH_slo.json found"
            )
            + (
                f", serve tokens/answer {fresh_tpa:g})"
                if fresh_tpa is not None
                else "; no 1x tokens-per-answer in BENCH_serve.json)"
            )
        )
        return 0, "\n".join(lines)

    baseline = load_baseline(baseline_path)
    if baseline is None:
        lines.append(
            f"no usable baseline at {baseline_path}; "
            "run with --update-baseline to create one"
        )
        return 1, "\n".join(lines)

    ok, diff_lines = diff_against_baseline(
        row,
        baseline,
        max_ex_drop=max_ex_drop,
        max_token_growth=max_token_growth,
        max_makespan_growth=max_makespan_growth,
        fresh_scale10=fresh_scale10,
        fresh_serve_p99=fresh_serve,
        fresh_slo_budget=fresh_budget,
        fresh_serve_tpa=fresh_tpa,
    )
    lines.extend(diff_lines)
    lines.append("regression check: " + ("PASS" if ok else "FAIL"))
    return (0 if ok else 1), "\n".join(lines)
