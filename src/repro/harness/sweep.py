"""Full experiment grid sweep with CSV export.

The paper's tables are aggregates; this module exposes the raw grid —
one record per (method, model, shots, database) cell with EX, factuality
(HQDL), token counts and cache statistics — so downstream analysis (or a
plotting notebook) can consume the data behind every table at once.

CLI: ``python -m repro.harness sweep`` prints the grid;
:func:`write_csv` saves it.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.harness.runner import GoldResults, run_hqdl, run_udf
from repro.swan.benchmark import Swan

#: The full grid behind Tables 2-5.
DEFAULT_HQDL_CONFIGS: tuple[tuple[str, int], ...] = tuple(
    (model, shots)
    for model in ("gpt-3.5-turbo", "gpt-4-turbo")
    for shots in (0, 1, 3, 5)
)
DEFAULT_UDF_CONFIGS: tuple[tuple[str, int], ...] = (
    ("gpt-3.5-turbo", 0),
    ("gpt-3.5-turbo", 5),
)

FIELDNAMES = [
    "method",
    "model",
    "shots",
    "database",
    "execution_accuracy",
    "factuality_f1",
    "input_tokens",
    "output_tokens",
    "llm_calls",
]


@dataclass(frozen=True)
class SweepRecord:
    """One cell of the experiment grid."""

    method: str
    model: str
    shots: int
    database: str
    execution_accuracy: float
    factuality_f1: Optional[float]
    input_tokens: int
    output_tokens: int
    llm_calls: int

    def as_row(self) -> dict[str, object]:
        return {
            "method": self.method,
            "model": self.model,
            "shots": self.shots,
            "database": self.database,
            "execution_accuracy": round(self.execution_accuracy, 4),
            "factuality_f1": (
                round(self.factuality_f1, 4)
                if self.factuality_f1 is not None
                else ""
            ),
            "input_tokens": self.input_tokens,
            "output_tokens": self.output_tokens,
            "llm_calls": self.llm_calls,
        }


def run_sweep(
    swan: Swan,
    *,
    hqdl_configs: Sequence[tuple[str, int]] = DEFAULT_HQDL_CONFIGS,
    udf_configs: Sequence[tuple[str, int]] = DEFAULT_UDF_CONFIGS,
    gold: Optional[GoldResults] = None,
) -> list[SweepRecord]:
    """Run the configured grid; one record per (config, database).

    Usage is metered per configuration; the per-database token split is
    attributed proportionally to that database's question count when the
    runner reports only totals — for the default single-pass runners the
    totals per database are recomputed exactly by running per database.
    """
    gold = gold or GoldResults(swan)
    records: list[SweepRecord] = []
    for model, shots in hqdl_configs:
        for database in swan.database_names():
            run = run_hqdl(swan, model, shots, databases=[database], gold=gold)
            records.append(
                SweepRecord(
                    method="hqdl",
                    model=model,
                    shots=shots,
                    database=database,
                    execution_accuracy=run.ex_by_db[database],
                    factuality_f1=run.f1_by_db[database],
                    input_tokens=run.usage.input_tokens,
                    output_tokens=run.usage.output_tokens,
                    llm_calls=run.usage.calls,
                )
            )
    for model, shots in udf_configs:
        for database in swan.database_names():
            run = run_udf(swan, model, shots, databases=[database], gold=gold)
            records.append(
                SweepRecord(
                    method="udf",
                    model=model,
                    shots=shots,
                    database=database,
                    execution_accuracy=run.ex_by_db[database],
                    factuality_f1=None,
                    input_tokens=run.usage.input_tokens,
                    output_tokens=run.usage.output_tokens,
                    llm_calls=run.usage.calls,
                )
            )
    return records


def write_csv(records: Sequence[SweepRecord], path: Union[str, Path]) -> Path:
    """Write sweep records to a CSV file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=FIELDNAMES)
        writer.writeheader()
        for record in records:
            writer.writerow(record.as_row())
    return path
