"""Traced benchmark runs (``BENCH_trace.json`` and friends).

Runs both pipelines over SWAN with telemetry fully enabled — a
:class:`~repro.obs.trace.Tracer` and
:class:`~repro.obs.metrics.MetricsRegistry` per pipeline — on a
:class:`~repro.llm.parallel.SimulatedClock`, so every span is stamped in
*virtual* time: the clock advances only when a paid LLM call would have
occupied a worker.  The resulting trace is exactly reproducible (same
seed → identical span tree, timestamps included) and the per-stage
breakdown attributes the whole makespan to named stages.

Outputs, via :func:`write_trace_json`:

- ``BENCH_trace.json`` — per-pipeline EX, makespan, token totals, and
  the per-stage self-time/token table;
- ``BENCH_trace_chrome.json`` — both pipelines as Chrome ``trace_event``
  processes, loadable in ``chrome://tracing`` / ui.perfetto.dev;
- ``BENCH_trace_spans.jsonl`` — the flat span log, one JSON per line;
- ``BENCH_trace.prom`` — the metric registries in Prometheus text form.

Entry point: ``python -m repro.harness trace``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.llm.parallel import SimulatedClock, SimulatedLatencyClient
from repro.llm.usage import Usage
from repro.obs import Telemetry
from repro.obs.export import (
    chrome_trace,
    format_stage_summary,
    spans_to_records,
    stage_summary,
)
from repro.swan.benchmark import Swan, load_benchmark


@dataclass
class PipelineTrace:
    """One fully-traced pipeline run, with its telemetry still attached."""

    pipeline: str
    ex: float
    makespan: float
    usage: Usage
    telemetry: Telemetry
    stages: list[dict]

    @property
    def attributed_share(self) -> float:
        """Fraction of recorded time attributed to *named* stages."""
        return sum(
            record["share"] for record in self.stages
            if record["stage"] != "(unaccounted)"
        )

    def as_record(self) -> dict:
        """The JSON payload entry for this pipeline."""
        return {
            "ex": round(self.ex, 4),
            "makespan_seconds": round(self.makespan, 4),
            "llm_calls": self.usage.calls,
            "input_tokens": self.usage.input_tokens,
            "output_tokens": self.usage.output_tokens,
            "spans": len(self.telemetry.tracer.spans),
            "attributed_share": round(self.attributed_share, 6),
            "stages": self.stages,
        }


def trace_pipelines(
    swan: Optional[Swan] = None,
    *,
    model_name: str = "gpt-3.5-turbo",
    shots: int = 0,
    databases: Optional[Sequence[str]] = None,
    workers: int = 1,
    scale: int = 1,
) -> dict[str, PipelineTrace]:
    """Run both pipelines traced, each on its own virtual clock.

    Each pipeline gets a fresh :class:`SimulatedClock` that serves double
    duty: it times the tracer's spans *and* absorbs the virtual latency
    of every paid LLM call (via :class:`SimulatedLatencyClient`), so the
    root span's duration equals the pipeline's makespan.  ``workers=1``
    (the default) keeps the span tree fully deterministic.  ``scale``
    traces the scaled benchmark worlds (ignored when ``swan`` is given).
    """
    from repro.harness.runner import GoldResults, run_hqdl, run_udf

    swan = swan if swan is not None else load_benchmark(scale)
    gold = GoldResults(swan)
    traces: dict[str, PipelineTrace] = {}
    for pipeline, runner in (("udf", run_udf), ("hqdl", run_hqdl)):
        clock = SimulatedClock(workers)
        telemetry = Telemetry.on(clock)
        run = runner(
            swan, model_name, shots,
            databases=databases, gold=gold, workers=workers,
            wrap_client=lambda model: SimulatedLatencyClient(model, clock),
            telemetry=telemetry,
        )
        traces[pipeline] = PipelineTrace(
            pipeline=pipeline,
            ex=run.overall_ex,
            makespan=clock.makespan(),
            usage=run.usage,
            telemetry=telemetry,
            stages=stage_summary(telemetry.tracer.roots),
        )
    return traces


def measure_trace(
    swan: Optional[Swan] = None,
    *,
    model_name: str = "gpt-3.5-turbo",
    shots: int = 0,
    databases: Optional[Sequence[str]] = None,
    workers: int = 1,
    scale: int = 1,
) -> tuple[dict, dict[str, PipelineTrace]]:
    """The BENCH_trace payload plus the live traces behind it."""
    traces = trace_pipelines(
        swan, model_name=model_name, shots=shots,
        databases=databases, workers=workers, scale=scale,
    )
    payload = {
        "bench": "trace",
        "model": model_name,
        "shots": shots,
        "workers": workers,
        "scale": scale,
        "databases": list(databases) if databases is not None else "all",
        "pipelines": {
            name: trace.as_record() for name, trace in traces.items()
        },
    }
    return payload, traces


def merged_chrome_trace(traces: dict[str, PipelineTrace]) -> dict:
    """Both pipelines in one Chrome trace, one process (pid) each."""
    events: list[dict] = []
    for pid, (name, trace) in enumerate(traces.items(), start=1):
        sub = chrome_trace(
            trace.telemetry.tracer.spans, process_name=f"repro:{name}"
        )
        for event in sub["traceEvents"]:
            event["pid"] = pid
        events.extend(sub["traceEvents"])
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_trace_json(
    path: Union[str, Path] = "BENCH_trace.json",
    *,
    swan: Optional[Swan] = None,
    **kwargs,
) -> tuple[list[Path], dict]:
    """Write the trace payload and its sibling artifacts.

    ``path`` names the JSON payload; the Chrome trace, span log, and
    Prometheus dump take the same stem with ``_chrome.json``,
    ``_spans.jsonl``, and ``.prom`` suffixes.  Returns (paths, payload).
    """
    payload, traces = measure_trace(swan, **kwargs)
    target = Path(path)
    target.write_text(json.dumps(payload, indent=2) + "\n")

    chrome_path = target.with_name(f"{target.stem}_chrome.json")
    chrome_path.write_text(
        json.dumps(merged_chrome_trace(traces), indent=2) + "\n"
    )

    spans_path = target.with_name(f"{target.stem}_spans.jsonl")
    lines = []
    for name, trace in traces.items():
        for record in spans_to_records(trace.telemetry.tracer.spans):
            record["pipeline"] = name
            lines.append(json.dumps(record, default=str))
    spans_path.write_text("\n".join(lines) + ("\n" if lines else ""))

    prom_path = target.with_name(f"{target.stem}.prom")
    sections = [
        f"# pipeline: {name}\n{trace.telemetry.metrics.render_prometheus()}"
        for name, trace in traces.items()
    ]
    prom_path.write_text("\n".join(sections))

    return [target, chrome_path, spans_path, prom_path], payload


def format_trace_report(payload: dict, paths: Sequence[Path] = ()) -> str:
    """Console rendering of a trace payload: one stage table per pipeline."""
    blocks = []
    for name, entry in payload["pipelines"].items():
        title = (
            f"{name.upper()} per-stage breakdown — EX "
            f"{entry['ex'] * 100:.1f}%, makespan "
            f"{entry['makespan_seconds']:.1f} s (virtual), "
            f"{entry['llm_calls']} LLM calls."
        )
        blocks.append(format_stage_summary(entry["stages"], title=title))
    if paths:
        blocks.append("written: " + ", ".join(str(p) for p in paths))
    return "\n\n".join(blocks)
