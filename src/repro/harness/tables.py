"""Regeneration of every table and figure in the paper's evaluation.

Each function returns ``(records, text)`` — structured rows plus the
rendered text table.  The bench suite and the ``python -m repro.harness``
CLI both go through these.
"""

from __future__ import annotations

from typing import Optional

from repro.eval.report import format_table, percent
from repro.harness.runner import GoldResults, run_hqdl, run_udf
from repro.llm.cache import PromptCache
from repro.llm.chat import MockChatModel
from repro.llm.oracle import KnowledgeOracle
from repro.llm.profiles import get_profile
from repro.swan.benchmark import Swan, load_benchmark
from repro.swan.build import build_curated_database
from repro.udf.executor import HybridQueryExecutor

#: Paper ordering of the per-database table columns.
_DB_COLUMNS = ("california_schools", "superhero", "formula_1", "european_football")

#: Shot counts the paper sweeps for HQDL (Tables 2 and 4).
HQDL_SHOTS = (0, 1, 3, 5)

#: Configurations of the paper's Table 3 (HQ UDFs on GPT-3.5).
UDF_CONFIGS = (("gpt-3.5-turbo", 0), ("gpt-3.5-turbo", 5))


def _swan(swan: Optional[Swan]) -> Swan:
    return swan or load_benchmark()


# -- Table 1: database statistics ---------------------------------------------------


def table1(swan: Optional[Swan] = None) -> tuple[list[dict], str]:
    """SWAN database statistics (tables, rows/table, columns dropped)."""
    swan = _swan(swan)
    records = swan.stats_table()
    rows = [
        [r["database"], r["tables"], r["rows_per_table"], r["cols_dropped"]]
        for r in records
    ]
    text = format_table(
        ["Database", "Tables", "Rows/Table", "Cols Dropped"],
        rows,
        title="Table 1: Statistics of databases in SWAN.",
    )
    return records, text


# -- Table 2: HQDL execution accuracy ------------------------------------------------


def table2(
    swan: Optional[Swan] = None,
    *,
    models: tuple[str, ...] = ("gpt-3.5-turbo", "gpt-4-turbo"),
    shots: tuple[int, ...] = HQDL_SHOTS,
    gold: Optional[GoldResults] = None,
) -> tuple[list[dict], str]:
    """HQDL execution accuracy per model × shots × database."""
    swan = _swan(swan)
    gold = gold or GoldResults(swan)
    records: list[dict] = []
    for model in models:
        zero_shot_overall: Optional[float] = None
        for shot_count in shots:
            run = run_hqdl(swan, model, shot_count, gold=gold)
            if zero_shot_overall is None:
                zero_shot_overall = run.overall_ex
            record = {
                "model": model,
                "shots": shot_count,
                "overall": run.overall_ex,
                "improvement": run.overall_ex - zero_shot_overall,
            }
            for name in _DB_COLUMNS:
                record[name] = run.ex_by_db.get(name, 0.0)
            records.append(record)
    rows = [
        [
            r["model"],
            f"{r['shots']}-shot",
            percent(r["california_schools"]),
            percent(r["superhero"]),
            percent(r["formula_1"]),
            percent(r["european_football"]),
            percent(r["overall"])
            + (f" (+{r['improvement'] * 100:.1f}%)" if r["shots"] else ""),
        ]
        for r in records
    ]
    text = format_table(
        ["Model", "Demonstrations", "California Schools", "Super Hero",
         "Formula One", "European Football", "Overall"],
        rows,
        title="Table 2: HQDL Execution Accuracy on SWAN.",
    )
    return records, text


# -- Table 3: HQ UDFs execution accuracy ----------------------------------------------


def table3(
    swan: Optional[Swan] = None,
    *,
    configs: tuple[tuple[str, int], ...] = UDF_CONFIGS,
    gold: Optional[GoldResults] = None,
) -> tuple[list[dict], str]:
    """HQ UDFs execution accuracy (paper: GPT-3.5, 0-shot and 5-shot)."""
    swan = _swan(swan)
    gold = gold or GoldResults(swan)
    records: list[dict] = []
    zero_shot_overall: Optional[float] = None
    for model, shot_count in configs:
        run = run_udf(swan, model, shot_count, gold=gold)
        if zero_shot_overall is None:
            zero_shot_overall = run.overall_ex
        record = {
            "model": model,
            "shots": shot_count,
            "overall": run.overall_ex,
            "improvement": run.overall_ex - zero_shot_overall,
        }
        for name in _DB_COLUMNS:
            record[name] = run.ex_by_db.get(name, 0.0)
        records.append(record)
    rows = [
        [
            r["model"],
            f"{r['shots']}-shot",
            percent(r["california_schools"]),
            percent(r["superhero"]),
            percent(r["formula_1"]),
            percent(r["european_football"]),
            percent(r["overall"])
            + (f" (+{r['improvement'] * 100:.1f}%)" if r["shots"] else ""),
        ]
        for r in records
    ]
    text = format_table(
        ["Model", "Demonstrations", "California Schools", "Super Hero",
         "Formula One", "European Football", "Overall"],
        rows,
        title="Table 3: HQ UDFs evaluation results on SWAN.",
    )
    return records, text


# -- Table 4: HQDL data factuality -----------------------------------------------------


def table4(
    swan: Optional[Swan] = None,
    *,
    models: tuple[str, ...] = ("gpt-3.5-turbo", "gpt-4-turbo"),
    shots: tuple[int, ...] = HQDL_SHOTS,
    gold: Optional[GoldResults] = None,
) -> tuple[list[dict], str]:
    """Average F1 factuality of HQDL-generated data."""
    swan = _swan(swan)
    gold = gold or GoldResults(swan)
    records: list[dict] = []
    for model in models:
        for shot_count in shots:
            run = run_hqdl(swan, model, shot_count, gold=gold)
            records.append(
                {
                    "model": model,
                    "shots": shot_count,
                    "average_f1": run.average_f1,
                    "f1_by_db": dict(run.f1_by_db),
                }
            )
    rows = [
        [r["model"], f"{r['shots']}-shot", percent(r["average_f1"])]
        for r in records
    ]
    text = format_table(
        ["Model", "Demonstrations", "Average"],
        rows,
        title="Table 4: Average F1 factuality of HQDL-generated data.",
    )
    return records, text


# -- Table 5: token usage ---------------------------------------------------------------


def table5(
    swan: Optional[Swan] = None,
    *,
    model: str = "gpt-3.5-turbo",
    gold: Optional[GoldResults] = None,
) -> tuple[list[dict], str]:
    """Total input/output tokens for zero-shot HQDL vs HQ UDFs."""
    swan = _swan(swan)
    gold = gold or GoldResults(swan)
    hqdl_run = run_hqdl(swan, model, 0, gold=gold)
    udf_run = run_udf(swan, model, 0, gold=gold)
    records = [
        {
            "algorithm": "HQDL",
            "input_tokens": hqdl_run.usage.input_tokens,
            "output_tokens": hqdl_run.usage.output_tokens,
            "calls": hqdl_run.usage.calls,
        },
        {
            "algorithm": "HQ UDFs",
            "input_tokens": udf_run.usage.input_tokens,
            "output_tokens": udf_run.usage.output_tokens,
            "calls": udf_run.usage.calls,
        },
    ]
    ratio_in = (
        udf_run.usage.input_tokens / hqdl_run.usage.input_tokens
        if hqdl_run.usage.input_tokens
        else 0.0
    )
    ratio_out = (
        udf_run.usage.output_tokens / hqdl_run.usage.output_tokens
        if hqdl_run.usage.output_tokens
        else 0.0
    )
    rows = [
        [r["algorithm"], r["input_tokens"], r["output_tokens"], r["calls"]]
        for r in records
    ]
    text = format_table(
        ["Algorithm", "Input Tokens", "Output Tokens", "LLM Calls"],
        rows,
        title="Table 5: Total tokens for zero-shot HQDL and HQ UDFs.",
    )
    text += (
        f"\nHQ UDFs / HQDL ratio: {ratio_in:.1f}x input, {ratio_out:.1f}x output"
        " (paper: 3.6x input, 1.3x output)"
    )
    return records, text


# -- Figure 1: the motivating example ---------------------------------------------------


def figure1(swan: Optional[Swan] = None) -> tuple[list[dict], str]:
    """The paper's motivating example: Marvel heroes, DB-only vs hybrid.

    The closed-world database cannot answer (no publisher information
    survives curation); the hybrid query over database + LLM can.
    """
    swan = _swan(swan)
    world = swan.world("superhero")
    lines = ["Figure 1: answering 'list all Marvel universe hero names'."]
    with build_curated_database(world) as db:
        lines.append("")
        lines.append("Database-only (closed world):")
        try:
            db.query(
                "SELECT superhero_name FROM superhero WHERE publisher = 'Marvel Comics'"
            )
            lines.append("  unexpectedly answerable")
            db_only_rows = -1
        except Exception as exc:  # noqa: BLE001 - we report the failure itself
            lines.append(f"  FAILS: {exc}")
            db_only_rows = 0
        model = MockChatModel(KnowledgeOracle(world), get_profile("gpt-4-turbo"))
        executor = HybridQueryExecutor(
            db, model, world, shots=5, cache=PromptCache()
        )
        hybrid_sql = (
            "SELECT superhero_name, full_name FROM superhero WHERE "
            "{{LLMMap('Which comic book publisher published this superhero?', "
            "'superhero::superhero_name', 'superhero::full_name')}} "
            "= 'Marvel Comics'"
        )
        result = executor.execute(hybrid_sql)
        lines.append("")
        lines.append(f"Hybrid query over database + LLM ({len(result)} heroes):")
        for row in result.rows[:10]:
            lines.append(f"  {row[0]} ({row[1]})")
        if len(result) > 10:
            lines.append(f"  ... and {len(result) - 10} more")
    records = [
        {"approach": "database-only", "rows": db_only_rows, "answerable": False},
        {"approach": "hybrid", "rows": len(result), "answerable": True},
    ]
    return records, "\n".join(lines)
