"""The serving load test behind ``python -m repro.harness loadtest``.

Sweeps the :class:`~repro.serve.server.QueryServer` across offered-load
levels — fractions and multiples of its *measured* capacity — and
records latency percentiles, throughput, shed rate, degraded-answer
rate, and per-tenant fairness at each level into ``BENCH_serve.json``.

Everything runs on the virtual clock, so the sweep is deterministic:
two invocations with the same scale and seed produce byte-identical
JSON, which is what lets the regress gate pin serve-mode p99 latency.

Capacity is not guessed: a low-rate probe run measures the mean virtual
service time, and ``capacity ≈ max_concurrent / mean_service`` anchors
the multipliers.  The sweep always includes ≥2× capacity, where the
overload invariants actually bite — every offered request must still
terminate as exactly one of served / degraded / rejected.
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.errors import ReproError
from repro.obs import FlightRecorder, Telemetry, WindowedAggregator
from repro.obs.export import stage_summary
from repro.obs.sampler import TailSampler
from repro.obs.slo import SLOAlert, SLOTracker, default_serving_slos
from repro.obs.timeseries import DEFAULT_RETENTION, DEFAULT_WINDOW_SECONDS
from repro.obs.trace import Span
from repro.serve.batcher import BatchingConfig
from repro.serve.server import QueryServer, ServeReport, ServerConfig
from repro.serve.trace import (
    ServeTraceLog,
    materialize_kept,
    materialize_request,
)
from repro.serve.traffic import TenantSpec, generate_traffic
from repro.swan.benchmark import Swan, load_benchmark_subset

DEFAULT_SERVE_BENCH = "BENCH_serve.json"
DEFAULT_SLO_BENCH = "BENCH_slo.json"
DEFAULT_INCIDENTS_JSONL = "BENCH_incidents.jsonl"
DEFAULT_TRACES_BENCH = "BENCH_serve_traces.json"
DEFAULT_TRACE_SPANS_JSONL = "BENCH_serve_trace_spans.jsonl"
DEFAULT_TRACE_CHROME = "BENCH_serve_trace_chrome.json"
#: default slowest-k kept per window by the tail sampler
DEFAULT_TRACE_SAMPLE = 3
SERVE_DATABASES = ("superhero", "formula_1")
#: offered load as multiples of measured capacity; 2× and 4× are the
#: sustained-overload points the degradation machinery exists for
DEFAULT_MULTIPLIERS = (0.25, 0.5, 1.0, 2.0, 4.0)
DEFAULT_HORIZON = 120.0

#: the per-tenant outcome series the windows table is built from
_STATUS_SERIES = (
    ("offered", "serve.offered"),
    ("served", "serve.served"),
    ("degraded", "serve.degraded"),
    ("rejected", "serve.rejected"),
)


def default_tenants(
    databases: Sequence[str] = SERVE_DATABASES,
) -> list[TenantSpec]:
    """The two-class tenant mix every load level scales from.

    An interactive tenant (priority 0, tight deadline, concurrency
    capped) and a batch tenant (priority 1, loose deadline, periodic
    bursts, a quarter of its traffic through HQDL) — enough structure to
    exercise priorities, aging, quotas, and both pipelines.
    """
    databases = tuple(databases)
    return [
        TenantSpec(
            name="interactive",
            rate=0.5,
            priority=0,
            deadline_seconds=30.0,
            databases=databases,
            max_queued=8,
            max_concurrent=2,
        ),
        TenantSpec(
            name="batch",
            rate=0.3,
            priority=1,
            deadline_seconds=60.0,
            databases=databases,
            burst_every=25.0,
            burst_size=4,
            hqdl_share=0.25,
            max_queued=12,
            token_budget=5_000_000,
        ),
    ]


def offered_rps(tenants: Sequence[TenantSpec]) -> float:
    """Mean offered requests/second of a tenant mix, bursts included."""
    total = 0.0
    for spec in tenants:
        total += spec.rate
        if spec.burst_every is not None and spec.burst_size:
            total += spec.burst_size / spec.burst_every
    return total


def default_config() -> ServerConfig:
    return ServerConfig(workers=4, max_concurrent=3, queue_limit=24)


def measure_capacity(
    swan: Swan,
    config: ServerConfig,
    tenants: Sequence[TenantSpec],
    *,
    seed: int = 0,
    horizon: float = DEFAULT_HORIZON,
) -> float:
    """Requests/second the server sustains, from a low-rate probe run.

    At a trickle of offered load nothing queues, so the mean service
    time is pure per-request cost; ``max_concurrent`` of those run side
    by side at saturation.
    """
    base = offered_rps(tenants)
    probe = [spec.scaled(0.1 / base) for spec in tenants]
    requests = generate_traffic(swan, probe, horizon=horizon, seed=seed)
    if not requests:
        raise ReproError("capacity probe generated no traffic")
    policies = {spec.name: spec.policy() for spec in probe}
    with QueryServer(swan, config, policies=policies) as server:
        report = server.run(requests)
    services = [o.service_seconds for o in report.outcomes if o.answered]
    if not services:
        raise ReproError("capacity probe answered no requests")
    mean_service = sum(services) / len(services)
    if mean_service <= 0:
        raise ReproError("capacity probe measured zero service time")
    return config.max_concurrent / mean_service


def run_level(
    swan: Swan,
    config: ServerConfig,
    tenants: Sequence[TenantSpec],
    multiplier: float,
    capacity: float,
    *,
    seed: int = 0,
    horizon: float = DEFAULT_HORIZON,
    telemetry: Optional[Telemetry] = None,
    slo_tracker: Optional[SLOTracker] = None,
    batching: Optional[BatchingConfig] = None,
    trace: Optional[ServeTraceLog] = None,
) -> tuple[ServeReport, dict]:
    """One sweep point: a fresh server at ``multiplier × capacity``.

    ``batching`` turns on cross-request continuous batching for this
    level's server; ``None`` keeps the per-request dispatch path (and
    its byte-identical record).  ``trace`` attaches a passive per-request
    trace log (tracing on); the report and record are byte-identical
    with or without it.
    """
    base = offered_rps(tenants)
    target = multiplier * capacity
    scaled = [spec.scaled(target / base) for spec in tenants]
    requests = generate_traffic(swan, scaled, horizon=horizon, seed=seed)
    policies = {spec.name: spec.policy() for spec in scaled}
    if batching is not None:
        config = replace(config, batching=batching)
    with QueryServer(
        swan, config, policies=policies,
        telemetry=telemetry, slo_tracker=slo_tracker, trace=trace,
    ) as server:
        report = server.run(requests)
    record = report.as_record()
    record["multiplier"] = round(multiplier, 6)
    record["offered_rps"] = round(target, 6)
    return report, record


def _tokens_per_answer(record: dict) -> float:
    """Total LLM tokens per answered request in one level record."""
    answered = record["served"] + record["degraded"]
    if not answered:
        return 0.0
    return round(
        (record["input_tokens"] + record["output_tokens"]) / answered, 6
    )


def _saved_pct(off: float, on: float) -> float:
    """Percent of ``off`` saved by ``on`` (negative = a regression)."""
    if off <= 0:
        return 0.0
    return round(100.0 * (off - on) / off, 6)


def _batching_summary(off_record: dict, on_record: dict) -> dict:
    """The batched arm's summary, diffed against the unbatched record.

    Starts from the batched run's own ``batching`` stats (occupancy,
    coalesced/paid calls, flush reasons, fair-share token attribution)
    and grafts on the outcome/latency/spend scalars plus the two
    headline savings percentages the acceptance gate reads.
    """
    summary = dict(on_record["batching"])
    summary.update({
        "llm_calls": on_record["llm_calls"],
        "input_tokens": on_record["input_tokens"],
        "output_tokens": on_record["output_tokens"],
        "served": on_record["served"],
        "degraded": on_record["degraded"],
        "rejected": on_record["rejected"],
        "p50": on_record["p50"],
        "p95": on_record["p95"],
        "p99": on_record["p99"],
        "accounting_ok": on_record["accounting_ok"],
        "calls_saved_pct": _saved_pct(
            off_record["llm_calls"], on_record["llm_calls"]
        ),
        "tokens_per_answer_saved_pct": _saved_pct(
            _tokens_per_answer(off_record), _tokens_per_answer(on_record)
        ),
    })
    return summary


def jain_fairness(shares: Sequence[float]) -> float:
    """Jain's index over per-tenant shares; 1.0 for empty/uniform."""
    if not shares:
        return 1.0
    squares = sum(s * s for s in shares)
    if squares == 0:
        return 1.0
    total = sum(shares)
    return (total * total) / (len(shares) * squares)


def _window_stats(timeseries: WindowedAggregator, index: int) -> dict:
    """Outcome counts + latency percentiles for one window."""
    stats: dict = {
        "index": index,
        "start": round(timeseries.window_start(index), 6),
    }
    for label, name in _STATUS_SERIES:
        total = 0
        for tenant in timeseries.label_values(name, "tenant"):
            for row in timeseries.rows(name, tenant=tenant):
                if row.window == index:
                    total += row.count
                    break
        stats[label] = total
    for row in timeseries.rows("serve.latency"):
        if row.window == index:
            stats["latency"] = row.as_record()
            break
    return stats


def _alert_handler(telemetry: Telemetry):
    """Wire SLO alerts to the flight recorder: dump evidence at fire time.

    The server never sees this coupling — the tracker calls back into
    the harness, which snapshots the triggering window's stats and the
    flight-recorder tail into one incident.
    """
    timeseries = telemetry.timeseries
    flight = telemetry.flight

    def fire(alert: SLOAlert) -> None:
        first, last = timeseries.span()
        flight.incident(
            alert.as_record(),
            window=_window_stats(timeseries, alert.window),
            span={"first_window": first, "last_window": last},
        )

    return fire


def build_observability(
    *,
    window_seconds: float = DEFAULT_WINDOW_SECONDS,
    retention: int = DEFAULT_RETENTION,
    incident_sink: Optional[Union[str, Path]] = None,
) -> tuple[Telemetry, SLOTracker]:
    """One serving run's telemetry bundle: windows + SLOs + flight ring.

    Alerts are wired so that the instant one fires, the flight recorder
    snapshots an incident (and appends it to ``incident_sink`` if set).
    """
    telemetry = Telemetry(
        timeseries=WindowedAggregator(window_seconds, retention),
        flight=FlightRecorder(sink=incident_sink),
    )
    tracker = SLOTracker(
        default_serving_slos(),
        window_seconds=window_seconds,
        on_alert=_alert_handler(telemetry),
    )
    return telemetry, tracker


def window_table(timeseries: WindowedAggregator) -> list[dict]:
    """Per-window serving rows with per-tenant accounting and fairness.

    Every retained window renders as one row — idle windows included —
    with global outcome counts, latency percentiles, queue depth, token
    and call spend per tenant, and Jain fairness over the tenants'
    answered shares *within that window*.
    """
    first, last = timeseries.span()
    if last < first:
        return []
    tenants = timeseries.label_values("serve.offered", "tenant")
    status = {
        (name, tenant): {
            row.window: row for row in timeseries.rows(name, tenant=tenant)
        }
        for _, name in _STATUS_SERIES
        for tenant in tenants
    }
    spend = {
        (name, tenant): {
            row.window: row for row in timeseries.rows(name, tenant=tenant)
        }
        for name in ("serve.tokens", "serve.llm_calls")
        for tenant in tenants
    }
    latency = {row.window: row for row in timeseries.rows("serve.latency")}
    depth = {row.window: row for row in timeseries.rows("serve.queue.depth")}
    rows = []
    for index in range(first, last + 1):
        per_tenant: dict[str, dict] = {}
        shares = []
        for tenant in tenants:
            entry = {}
            for label, name in _STATUS_SERIES:
                row = status[(name, tenant)].get(index)
                entry[label] = row.count if row is not None else 0
            tokens = spend[("serve.tokens", tenant)].get(index)
            calls = spend[("serve.llm_calls", tenant)].get(index)
            entry["tokens"] = int(tokens.sum) if tokens is not None else 0
            entry["llm_calls"] = int(calls.sum) if calls is not None else 0
            per_tenant[tenant] = entry
            if entry["offered"]:
                shares.append(
                    (entry["served"] + entry["degraded"]) / entry["offered"]
                )
        totals = {
            label: sum(per_tenant[t][label] for t in tenants)
            for label, _ in _STATUS_SERIES
        }
        lat = latency.get(index)
        dep = depth.get(index)
        rows.append({
            "window": index,
            "start": round(timeseries.window_start(index), 6),
            **totals,
            "shed_rate": (
                round(totals["rejected"] / totals["offered"], 6)
                if totals["offered"]
                else 0.0
            ),
            "p50": round(lat.p50, 6) if lat is not None else 0.0,
            "p95": round(lat.p95, 6) if lat is not None else 0.0,
            "p99": round(lat.p99, 6) if lat is not None else 0.0,
            "queue_depth_p95": round(dep.p95, 6) if dep is not None else 0.0,
            "fairness": round(jain_fairness(shares), 6),
            "per_tenant": per_tenant,
        })
    return rows


def slo_level_record(
    multiplier: float,
    target_rps: float,
    telemetry: Telemetry,
    tracker: SLOTracker,
) -> dict:
    """One sweep level's observability payload for BENCH_slo.json."""
    flight = telemetry.flight
    return {
        "multiplier": round(multiplier, 6),
        "offered_rps": round(target_rps, 6),
        "budgets": tracker.budgets(),
        "alerts": tracker.alert_timeline(),
        "incidents": len(flight.incidents),
        "flight_recorded": flight.recorded,
        "flight_dropped": flight.dropped,
        "windows": window_table(telemetry.timeseries),
    }


def trace_level_record(
    multiplier: float, log: ServeTraceLog, sampler: TailSampler
) -> dict:
    """One sweep level's trace payload for BENCH_serve_traces.json.

    Every kept trace is materialized and put through the stage summary;
    ``max_unaccounted_share`` is the worst per-trace fraction of
    offer-to-finish time that escaped the named stages — the acceptance
    gate pins it at 0.0 (the reconstruction tiles exactly).
    """
    kept = sampler.decide(log.records)
    waves = {wave.wave_id: wave for wave in log.waves}
    max_unaccounted = 0.0
    traces = []
    for record in sorted(log.records, key=lambda r: r.trace_id):
        reason = kept.get(record.trace_id)
        if reason is None:
            continue
        root = materialize_request(record, waves)
        rows = stage_summary([root])
        unaccounted = sum(
            row["self_s"] for row in rows if row["stage"] == "(unaccounted)"
        )
        share = unaccounted / root.duration if root.duration else 0.0
        max_unaccounted = max(max_unaccounted, share)
        summary = record.summary()
        summary["sampled"] = reason
        summary["stages"] = {
            row["stage"]: row["self_s"]
            for row in rows
            if row["stage"] != "(unaccounted)" and row["self_s"] > 0
        }
        traces.append(summary)
    return {
        "multiplier": round(multiplier, 6),
        "requests": len(log.records),
        "waves": len(log.waves),
        "sampler": sampler.stats(kept, len(log.records)),
        "max_unaccounted_share": round(max_unaccounted, 6),
        "traces": traces,
    }


def trace_spans(forest: Sequence[Span]) -> list[Span]:
    """Flatten a materialized forest for the JSONL/Chrome exporters."""
    return [span for root in forest for span in root.walk()]


def _run_sweep(
    *,
    scale: int,
    seed: int,
    horizon: float,
    multipliers: Sequence[float],
    databases: Sequence[str],
    config: Optional[ServerConfig],
    window_seconds: Optional[float],
    retention: int,
    incident_sink: Optional[Union[str, Path]],
    batching: Optional[BatchingConfig] = None,
    tracing: Optional[TailSampler] = None,
) -> tuple[dict, Optional[dict], Optional[dict], list[Span]]:
    """The shared sweep loop; observability attaches per level when
    ``window_seconds`` is set, and is entirely absent when it is None.

    With ``batching`` set, every level runs twice: the unbatched arm
    first (carrying the telemetry, so the SLO artifacts stay
    byte-identical to a batching-off sweep), then the batched arm,
    whose comparison grafts ``tokens_per_answer`` / ``batch_occupancy``
    / ``coalesced_calls`` / ``batching`` onto the level record.  The
    capacity probe always runs unbatched — capacity is a property of
    the per-request service path, and keeping it fixed makes the two
    arms face identical traffic.

    With ``tracing`` set, a fresh :class:`ServeTraceLog` also rides the
    unbatched arm of every level; the sampler's kept set becomes one
    trace-payload level, and the returned forest holds the *last*
    (highest-load) level's kept span trees plus their linked wave
    spans, ready for the JSONL/Chrome exporters."""
    swan = load_benchmark_subset(scale, list(databases))
    config = config if config is not None else default_config()
    tenants = default_tenants(databases)
    capacity = measure_capacity(
        swan, config, tenants, seed=seed, horizon=horizon
    )
    if incident_sink is not None:
        # the sink is append-at-fire-time; start each sweep from empty
        # so two runs at the same seed produce byte-identical files
        Path(incident_sink).unlink(missing_ok=True)
    levels = []
    slo_levels = []
    trace_levels = []
    forest: list[Span] = []
    for multiplier in multipliers:
        telemetry = tracker = None
        if window_seconds is not None:
            telemetry, tracker = build_observability(
                window_seconds=window_seconds,
                retention=retention,
                incident_sink=incident_sink,
            )
        trace_log = ServeTraceLog() if tracing is not None else None
        batched_log = (
            ServeTraceLog()
            if tracing is not None and batching is not None
            else None
        )
        _, record = run_level(
            swan, config, tenants, multiplier, capacity,
            seed=seed, horizon=horizon,
            telemetry=telemetry, slo_tracker=tracker, trace=trace_log,
        )
        if batching is not None:
            _, on_record = run_level(
                swan, config, tenants, multiplier, capacity,
                seed=seed, horizon=horizon, batching=batching,
                trace=batched_log,
            )
            record["tokens_per_answer"] = _tokens_per_answer(record)
            record["batch_occupancy"] = (
                on_record["batching"]["batch_occupancy"]
            )
            record["coalesced_calls"] = (
                on_record["batching"]["coalesced_calls"]
            )
            record["batching"] = _batching_summary(record, on_record)
        levels.append(record)
        if telemetry is not None and tracker is not None:
            slo_levels.append(
                slo_level_record(
                    multiplier, multiplier * capacity, telemetry, tracker
                )
            )
        if tracing is not None and trace_log is not None:
            level_trace = trace_level_record(multiplier, trace_log, tracing)
            if batched_log is not None:
                # the batched arm's traces carry the shared-wave link
                # spans; keep its sampler verdicts alongside
                level_trace["batched"] = trace_level_record(
                    multiplier, batched_log, tracing
                )
            trace_levels.append(level_trace)
            # the highest-load level is the one worth opening in a
            # trace viewer; export its kept forest (the batched arm's
            # when both arms ran — that one has the wave spans)
            export_log = batched_log if batched_log is not None else trace_log
            forest = materialize_kept(
                export_log, tracing.decide(export_log.records)
            )
    serve_payload = {
        "scale": scale,
        "seed": seed,
        "horizon": round(horizon, 6),
        "databases": list(databases),
        "model": config.model_name,
        "workers": config.workers,
        "max_concurrent": config.max_concurrent,
        "queue_limit": config.queue_limit,
        "capacity_rps": round(capacity, 6),
        "levels": levels,
    }
    if batching is not None:
        serve_payload["batch_window"] = round(batching.window, 6)
        serve_payload["max_batch"] = batching.max_batch
    trace_payload = None
    if tracing is not None:
        trace_payload = {
            "scale": scale,
            "seed": seed,
            "horizon": round(horizon, 6),
            "sampler": {
                "seed": tracing.seed,
                "slowest_k": tracing.slowest_k,
                "sample_rate": round(tracing.sample_rate, 6),
                "window_seconds": round(tracing.window_seconds, 6),
            },
            "export_multiplier": round(multipliers[-1], 6),
            "export_arm": "batched" if batching is not None else "unbatched",
            "levels": trace_levels,
        }
    if window_seconds is None:
        return serve_payload, None, trace_payload, forest
    slo_payload = {
        "scale": scale,
        "seed": seed,
        "horizon": round(horizon, 6),
        "window_seconds": round(window_seconds, 6),
        "retention": retention,
        "capacity_rps": round(capacity, 6),
        "slos": [slo.as_record() for slo in default_serving_slos()],
        "levels": slo_levels,
    }
    return serve_payload, slo_payload, trace_payload, forest


def run_loadtest(
    *,
    scale: int = 1,
    seed: int = 0,
    horizon: float = DEFAULT_HORIZON,
    multipliers: Sequence[float] = DEFAULT_MULTIPLIERS,
    databases: Sequence[str] = SERVE_DATABASES,
    config: Optional[ServerConfig] = None,
    batching: Optional[BatchingConfig] = None,
) -> dict:
    """The full sweep without telemetry; returns the BENCH_serve payload."""
    payload, _, _, _ = _run_sweep(
        scale=scale, seed=seed, horizon=horizon, multipliers=multipliers,
        databases=databases, config=config,
        window_seconds=None, retention=DEFAULT_RETENTION, incident_sink=None,
        batching=batching,
    )
    return payload


def run_slo_loadtest(
    *,
    scale: int = 1,
    seed: int = 0,
    horizon: float = DEFAULT_HORIZON,
    multipliers: Sequence[float] = DEFAULT_MULTIPLIERS,
    databases: Sequence[str] = SERVE_DATABASES,
    config: Optional[ServerConfig] = None,
    window_seconds: float = DEFAULT_WINDOW_SECONDS,
    retention: int = DEFAULT_RETENTION,
    incident_sink: Optional[Union[str, Path]] = None,
    batching: Optional[BatchingConfig] = None,
) -> tuple[dict, dict]:
    """The instrumented sweep: (BENCH_serve payload, BENCH_slo payload).

    The serve payload is byte-identical to :func:`run_loadtest`'s —
    telemetry is purely passive — so the CLI runs the sweep once and
    writes both artifacts from it.  ``batching`` adds the per-level
    batched arm to the serve payload only; the SLO payload is always
    measured on the unbatched arm, so it never changes shape.
    """
    serve_payload, slo_payload, _, _ = _run_sweep(
        scale=scale, seed=seed, horizon=horizon, multipliers=multipliers,
        databases=databases, config=config,
        window_seconds=window_seconds, retention=retention,
        incident_sink=incident_sink, batching=batching,
    )
    assert slo_payload is not None
    return serve_payload, slo_payload


def run_traced_loadtest(
    *,
    scale: int = 1,
    seed: int = 0,
    horizon: float = DEFAULT_HORIZON,
    multipliers: Sequence[float] = DEFAULT_MULTIPLIERS,
    databases: Sequence[str] = SERVE_DATABASES,
    config: Optional[ServerConfig] = None,
    window_seconds: float = DEFAULT_WINDOW_SECONDS,
    retention: int = DEFAULT_RETENTION,
    incident_sink: Optional[Union[str, Path]] = None,
    batching: Optional[BatchingConfig] = None,
    sampler: Optional[TailSampler] = None,
) -> tuple[dict, dict, dict, list[Span]]:
    """The instrumented sweep with request tracing on.

    Returns ``(serve, slo, traces, forest)`` — the first two are
    byte-identical to :func:`run_slo_loadtest`'s (the trace log is
    passive), the trace payload is ``BENCH_serve_traces.json``, and the
    forest is the highest-load level's kept span trees for the
    JSONL/Chrome exporters.
    """
    sampler = sampler if sampler is not None else TailSampler(
        seed=seed, slowest_k=DEFAULT_TRACE_SAMPLE,
        window_seconds=window_seconds,
    )
    serve_payload, slo_payload, trace_payload, forest = _run_sweep(
        scale=scale, seed=seed, horizon=horizon, multipliers=multipliers,
        databases=databases, config=config,
        window_seconds=window_seconds, retention=retention,
        incident_sink=incident_sink, batching=batching, tracing=sampler,
    )
    assert slo_payload is not None and trace_payload is not None
    return serve_payload, slo_payload, trace_payload, forest


def write_serve_json(payload: dict, path: Union[str, Path]) -> Path:
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def write_slo_json(payload: dict, path: Union[str, Path]) -> Path:
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def write_traces_json(payload: dict, path: Union[str, Path]) -> Path:
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def format_serve_report(payload: dict) -> str:
    """The human-readable sweep table printed by the CLI."""
    lines = [
        "Serving load test "
        f"(scale={payload['scale']}, seed={payload['seed']}, "
        f"horizon={payload['horizon']:g}s, "
        f"capacity={payload['capacity_rps']:.3f} req/s)",
        "",
        f"{'load':>6} {'offered':>8} {'served':>7} {'degr':>6} {'rej':>6} "
        f"{'shed%':>7} {'p50':>8} {'p95':>8} {'p99':>8} {'thru':>7} "
        f"{'fair':>6} {'trips':>6}",
    ]
    for level in payload["levels"]:
        lines.append(
            f"{level['multiplier']:>5.2f}x "
            f"{level['offered']:>8} "
            f"{level['served']:>7} "
            f"{level['degraded']:>6} "
            f"{level['rejected']:>6} "
            f"{100 * level['shed_rate']:>6.1f}% "
            f"{level['p50']:>8.3f} "
            f"{level['p95']:>8.3f} "
            f"{level['p99']:>8.3f} "
            f"{level['throughput_rps']:>7.3f} "
            f"{level['fairness']:>6.3f} "
            f"{level['breaker_trips']:>6}"
        )
    batched = [lv for lv in payload["levels"] if "batching" in lv]
    if batched:
        window = payload.get("batch_window", 0.0)
        cap = payload.get("max_batch")
        lines.append("")
        lines.append(
            f"Cross-request batching (window={window:g}s"
            + (f", max_batch={cap}" if cap is not None else "")
            + ") vs per-request dispatch:"
        )
        lines.append(
            f"{'load':>6} {'calls':>7} {'batched':>8} {'saved%':>7} "
            f"{'tok/ans':>9} {'batched':>9} {'saved%':>7} "
            f"{'occup':>6} {'coal':>6} {'p99':>8}"
        )
        for level in batched:
            arm = level["batching"]
            lines.append(
                f"{level['multiplier']:>5.2f}x "
                f"{level['llm_calls']:>7} "
                f"{arm['llm_calls']:>8} "
                f"{arm['calls_saved_pct']:>6.1f}% "
                f"{level['tokens_per_answer']:>9.1f} "
                f"{arm['tokens_per_answer']:>9.1f} "
                f"{arm['tokens_per_answer_saved_pct']:>6.1f}% "
                f"{arm['batch_occupancy']:>6.2f} "
                f"{arm['coalesced_calls']:>6} "
                f"{arm['p99']:>8.3f}"
            )
    lines.append("")
    lines.append(
        "All latencies are virtual seconds; every offered request "
        "terminated as served, degraded, or rejected."
    )
    overload = [lv for lv in payload["levels"] if lv["multiplier"] >= 2.0]
    if overload:
        worst = overload[-1]
        lines.append(
            f"At {worst['multiplier']:g}x capacity: "
            f"{worst['served']} served, {worst['degraded']} degraded, "
            f"{worst['rejected']} rejected of {worst['offered']} offered "
            f"(accounting {'OK' if worst['accounting_ok'] else 'BROKEN'})."
        )
    return "\n".join(lines)


def format_serve_demo(report: ServeReport) -> str:
    """A compact single-run summary for the ``serve`` CLI target."""
    record = report.as_record()
    lines = [
        "Query server demo run",
        "",
        f"offered {record['offered']}, served {record['served']}, "
        f"degraded {record['degraded']}, rejected {record['rejected']} "
        f"(accounting {'OK' if record['accounting_ok'] else 'BROKEN'})",
        f"latency p50/p95/p99: {record['p50']:.3f} / {record['p95']:.3f} "
        f"/ {record['p99']:.3f} s (max {record['max_latency']:.3f} s)",
        f"throughput {record['throughput_rps']:.3f} req/s, "
        f"fairness {record['fairness']:.3f}, "
        f"breaker trips {record['breaker_trips']}, "
        f"max queue depth {record['max_queue_depth']}",
        f"llm: {record['llm_calls']} calls, "
        f"{record['input_tokens']} in / {record['output_tokens']} out tokens, "
        f"cache {record['cache_hits']} hits / {record['cache_misses']} misses",
    ]
    if "batching" in record:
        arm = record["batching"]
        lines.append(
            f"batching: window {arm['window']:g}s, "
            f"{arm['paid_calls']} paid of {arm['formed_calls']} formed calls "
            f"({arm['coalesced_calls']} coalesced), "
            f"occupancy {arm['batch_occupancy']:.2f}, "
            f"tokens/answer {arm['tokens_per_answer']:.1f}"
        )
    lines.append("")
    lines.append(
        f"{'tenant':<14} {'offered':>8} {'served':>7} {'degr':>6} {'rej':>6} "
        f"{'answered':>9}"
    )
    for tenant, stats in record["per_tenant"].items():
        lines.append(
            f"{tenant:<14} {stats['offered']:>8} {stats['served']:>7} "
            f"{stats['degraded']:>6} {stats['rejected']:>6} "
            f"{100 * stats['answered_share']:>8.1f}%"
        )
    return "\n".join(lines)


def format_slo_report(payload: dict) -> str:
    """The SLO/error-budget summary printed after the sweep table."""
    objectives = ", ".join(
        f"{slo['name']} {100 * slo['objective']:g}%"
        + (
            f" (≤{slo['latency_target']:g}s)"
            if slo["latency_target"] is not None
            else ""
        )
        for slo in payload["slos"]
    )
    lines = [
        f"SLO report (window={payload['window_seconds']:g}s, "
        f"retention={payload['retention']}): {objectives}",
        "",
        f"{'load':>6} "
        + " ".join(f"{slo['name'] + '.budget%':>20}" for slo in payload["slos"])
        + f" {'alerts':>7} {'incidents':>10}",
    ]
    for level in payload["levels"]:
        cells = " ".join(
            f"{100 * level['budgets'][slo['name']]['budget_consumed']:>19.1f}%"
            for slo in payload["slos"]
        )
        lines.append(
            f"{level['multiplier']:>5.2f}x {cells} "
            f"{len(level['alerts']):>7} {level['incidents']:>10}"
        )
    noisiest = max(
        payload["levels"], key=lambda lv: (len(lv["alerts"]), lv["multiplier"])
    )
    if noisiest["alerts"]:
        lines.append("")
        lines.append(f"Alert timeline at {noisiest['multiplier']:g}x:")
        for alert in noisiest["alerts"]:
            lines.append(
                f"  t={alert['time']:>7.1f}  [{alert['severity']}] "
                f"{alert['slo']} burn={alert['burn_rate']:.1f} "
                f"(window {alert['window']}, {alert['bad']}/{alert['total']} "
                f"bad over {alert['lookback_windows']}w)"
            )
    else:
        lines.append("")
        lines.append("No burn-rate alerts fired at any level.")
    return "\n".join(lines)


def format_trace_report(payload: dict) -> str:
    """The tail-sampling summary printed when tracing is on."""
    sampler = payload["sampler"]
    lines = [
        "Request tracing (tail sampler: "
        f"slowest_k={sampler['slowest_k']}, "
        f"sample_rate={sampler['sample_rate']:g}, "
        f"window={sampler['window_seconds']:g}s)",
        "",
        f"{'load':>6} {'requests':>9} {'kept':>6} {'outcome':>8} "
        f"{'slowest':>8} {'hash':>6} {'waves':>6} {'unacct':>8}",
    ]

    def row(level: dict) -> str:
        stats = level["sampler"]
        reasons = stats["kept_by_reason"]
        return (
            f"{level['multiplier']:>5.2f}x "
            f"{stats['total']:>9} "
            f"{stats['kept']:>6} "
            f"{reasons['outcome']:>8} "
            f"{reasons['slowest']:>8} "
            f"{reasons['hash']:>6} "
            f"{level['waves']:>6} "
            f"{100 * level['max_unaccounted_share']:>7.2f}%"
        )

    for level in payload["levels"]:
        lines.append(row(level))
    batched = [lv["batched"] for lv in payload["levels"] if "batched" in lv]
    if batched:
        lines.append("")
        lines.append(
            "Batched arm (exported spans carry the shared-wave links):"
        )
        for level in batched:
            lines.append(row(level))
    worst = max(
        max(
            lv["max_unaccounted_share"],
            lv.get("batched", {}).get("max_unaccounted_share", 0.0),
        )
        for lv in payload["levels"]
    )
    lines.append("")
    lines.append(
        "Every kept trace attributes 100% of offer-to-finish time to "
        "named stages."
        if worst == 0.0
        else f"WARNING: worst unaccounted share is {100 * worst:.4f}%."
    )
    return "\n".join(lines)
