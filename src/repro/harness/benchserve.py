"""The serving load test behind ``python -m repro.harness loadtest``.

Sweeps the :class:`~repro.serve.server.QueryServer` across offered-load
levels — fractions and multiples of its *measured* capacity — and
records latency percentiles, throughput, shed rate, degraded-answer
rate, and per-tenant fairness at each level into ``BENCH_serve.json``.

Everything runs on the virtual clock, so the sweep is deterministic:
two invocations with the same scale and seed produce byte-identical
JSON, which is what lets the regress gate pin serve-mode p99 latency.

Capacity is not guessed: a low-rate probe run measures the mean virtual
service time, and ``capacity ≈ max_concurrent / mean_service`` anchors
the multipliers.  The sweep always includes ≥2× capacity, where the
overload invariants actually bite — every offered request must still
terminate as exactly one of served / degraded / rejected.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.errors import ReproError
from repro.serve.server import QueryServer, ServeReport, ServerConfig
from repro.serve.traffic import TenantSpec, generate_traffic
from repro.swan.benchmark import Swan, load_benchmark_subset

DEFAULT_SERVE_BENCH = "BENCH_serve.json"
SERVE_DATABASES = ("superhero", "formula_1")
#: offered load as multiples of measured capacity; 2× and 4× are the
#: sustained-overload points the degradation machinery exists for
DEFAULT_MULTIPLIERS = (0.25, 0.5, 1.0, 2.0, 4.0)
DEFAULT_HORIZON = 120.0


def default_tenants(
    databases: Sequence[str] = SERVE_DATABASES,
) -> list[TenantSpec]:
    """The two-class tenant mix every load level scales from.

    An interactive tenant (priority 0, tight deadline, concurrency
    capped) and a batch tenant (priority 1, loose deadline, periodic
    bursts, a quarter of its traffic through HQDL) — enough structure to
    exercise priorities, aging, quotas, and both pipelines.
    """
    databases = tuple(databases)
    return [
        TenantSpec(
            name="interactive",
            rate=0.5,
            priority=0,
            deadline_seconds=30.0,
            databases=databases,
            max_queued=8,
            max_concurrent=2,
        ),
        TenantSpec(
            name="batch",
            rate=0.3,
            priority=1,
            deadline_seconds=60.0,
            databases=databases,
            burst_every=25.0,
            burst_size=4,
            hqdl_share=0.25,
            max_queued=12,
            token_budget=5_000_000,
        ),
    ]


def offered_rps(tenants: Sequence[TenantSpec]) -> float:
    """Mean offered requests/second of a tenant mix, bursts included."""
    total = 0.0
    for spec in tenants:
        total += spec.rate
        if spec.burst_every is not None and spec.burst_size:
            total += spec.burst_size / spec.burst_every
    return total


def default_config() -> ServerConfig:
    return ServerConfig(workers=4, max_concurrent=3, queue_limit=24)


def measure_capacity(
    swan: Swan,
    config: ServerConfig,
    tenants: Sequence[TenantSpec],
    *,
    seed: int = 0,
    horizon: float = DEFAULT_HORIZON,
) -> float:
    """Requests/second the server sustains, from a low-rate probe run.

    At a trickle of offered load nothing queues, so the mean service
    time is pure per-request cost; ``max_concurrent`` of those run side
    by side at saturation.
    """
    base = offered_rps(tenants)
    probe = [spec.scaled(0.1 / base) for spec in tenants]
    requests = generate_traffic(swan, probe, horizon=horizon, seed=seed)
    if not requests:
        raise ReproError("capacity probe generated no traffic")
    policies = {spec.name: spec.policy() for spec in probe}
    with QueryServer(swan, config, policies=policies) as server:
        report = server.run(requests)
    services = [o.service_seconds for o in report.outcomes if o.answered]
    if not services:
        raise ReproError("capacity probe answered no requests")
    mean_service = sum(services) / len(services)
    if mean_service <= 0:
        raise ReproError("capacity probe measured zero service time")
    return config.max_concurrent / mean_service


def run_level(
    swan: Swan,
    config: ServerConfig,
    tenants: Sequence[TenantSpec],
    multiplier: float,
    capacity: float,
    *,
    seed: int = 0,
    horizon: float = DEFAULT_HORIZON,
) -> tuple[ServeReport, dict]:
    """One sweep point: a fresh server at ``multiplier × capacity``."""
    base = offered_rps(tenants)
    target = multiplier * capacity
    scaled = [spec.scaled(target / base) for spec in tenants]
    requests = generate_traffic(swan, scaled, horizon=horizon, seed=seed)
    policies = {spec.name: spec.policy() for spec in scaled}
    with QueryServer(swan, config, policies=policies) as server:
        report = server.run(requests)
    record = report.as_record()
    record["multiplier"] = round(multiplier, 6)
    record["offered_rps"] = round(target, 6)
    return report, record


def run_loadtest(
    *,
    scale: int = 1,
    seed: int = 0,
    horizon: float = DEFAULT_HORIZON,
    multipliers: Sequence[float] = DEFAULT_MULTIPLIERS,
    databases: Sequence[str] = SERVE_DATABASES,
    config: Optional[ServerConfig] = None,
) -> dict:
    """The full sweep; returns the BENCH_serve payload."""
    swan = load_benchmark_subset(scale, list(databases))
    config = config if config is not None else default_config()
    tenants = default_tenants(databases)
    capacity = measure_capacity(
        swan, config, tenants, seed=seed, horizon=horizon
    )
    levels = []
    for multiplier in multipliers:
        _, record = run_level(
            swan, config, tenants, multiplier, capacity,
            seed=seed, horizon=horizon,
        )
        levels.append(record)
    return {
        "scale": scale,
        "seed": seed,
        "horizon": round(horizon, 6),
        "databases": list(databases),
        "model": config.model_name,
        "workers": config.workers,
        "max_concurrent": config.max_concurrent,
        "queue_limit": config.queue_limit,
        "capacity_rps": round(capacity, 6),
        "levels": levels,
    }


def write_serve_json(payload: dict, path: Union[str, Path]) -> Path:
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def format_serve_report(payload: dict) -> str:
    """The human-readable sweep table printed by the CLI."""
    lines = [
        "Serving load test "
        f"(scale={payload['scale']}, seed={payload['seed']}, "
        f"horizon={payload['horizon']:g}s, "
        f"capacity={payload['capacity_rps']:.3f} req/s)",
        "",
        f"{'load':>6} {'offered':>8} {'served':>7} {'degr':>6} {'rej':>6} "
        f"{'shed%':>7} {'p50':>8} {'p95':>8} {'p99':>8} {'thru':>7} "
        f"{'fair':>6} {'trips':>6}",
    ]
    for level in payload["levels"]:
        lines.append(
            f"{level['multiplier']:>5.2f}x "
            f"{level['offered']:>8} "
            f"{level['served']:>7} "
            f"{level['degraded']:>6} "
            f"{level['rejected']:>6} "
            f"{100 * level['shed_rate']:>6.1f}% "
            f"{level['p50']:>8.3f} "
            f"{level['p95']:>8.3f} "
            f"{level['p99']:>8.3f} "
            f"{level['throughput_rps']:>7.3f} "
            f"{level['fairness']:>6.3f} "
            f"{level['breaker_trips']:>6}"
        )
    lines.append("")
    lines.append(
        "All latencies are virtual seconds; every offered request "
        "terminated as served, degraded, or rejected."
    )
    overload = [lv for lv in payload["levels"] if lv["multiplier"] >= 2.0]
    if overload:
        worst = overload[-1]
        lines.append(
            f"At {worst['multiplier']:g}x capacity: "
            f"{worst['served']} served, {worst['degraded']} degraded, "
            f"{worst['rejected']} rejected of {worst['offered']} offered "
            f"(accounting {'OK' if worst['accounting_ok'] else 'BROKEN'})."
        )
    return "\n".join(lines)


def format_serve_demo(report: ServeReport) -> str:
    """A compact single-run summary for the ``serve`` CLI target."""
    record = report.as_record()
    lines = [
        "Query server demo run",
        "",
        f"offered {record['offered']}, served {record['served']}, "
        f"degraded {record['degraded']}, rejected {record['rejected']} "
        f"(accounting {'OK' if record['accounting_ok'] else 'BROKEN'})",
        f"latency p50/p95/p99: {record['p50']:.3f} / {record['p95']:.3f} "
        f"/ {record['p99']:.3f} s (max {record['max_latency']:.3f} s)",
        f"throughput {record['throughput_rps']:.3f} req/s, "
        f"fairness {record['fairness']:.3f}, "
        f"breaker trips {record['breaker_trips']}, "
        f"max queue depth {record['max_queue_depth']}",
        f"llm: {record['llm_calls']} calls, "
        f"{record['input_tokens']} in / {record['output_tokens']} out tokens, "
        f"cache {record['cache_hits']} hits / {record['cache_misses']} misses",
        "",
        f"{'tenant':<14} {'offered':>8} {'served':>7} {'degr':>6} {'rej':>6} "
        f"{'answered':>9}",
    ]
    for tenant, stats in record["per_tenant"].items():
        lines.append(
            f"{tenant:<14} {stats['offered']:>8} {stats['served']:>7} "
            f"{stats['degraded']:>6} {stats['rejected']:>6} "
            f"{100 * stats['answered_share']:>8.1f}%"
        )
    return "\n".join(lines)
