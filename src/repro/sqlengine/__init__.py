"""SQLite storage-engine wrapper.

The paper runs everything on SQLite; this subpackage provides a typed
wrapper used by the benchmark builder, HQDL materialization, and the hybrid
query executor:

- :class:`~repro.sqlengine.database.Database` — connection lifecycle,
  queries, bulk inserts, temp tables.
- :class:`~repro.sqlengine.schema.TableSchema` — declarative schema objects
  with DDL generation and introspection.
- :class:`~repro.sqlengine.results.ResultSet` — normalised query results
  with the ordered/unordered comparison the EX metric needs.
"""

from repro.sqlengine.database import Database
from repro.sqlengine.results import ResultSet, results_match
from repro.sqlengine.schema import ColumnSchema, DatabaseSchema, ForeignKey, TableSchema

__all__ = [
    "Database",
    "ResultSet",
    "results_match",
    "ColumnSchema",
    "TableSchema",
    "ForeignKey",
    "DatabaseSchema",
]
