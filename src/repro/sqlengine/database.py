"""The Database wrapper around sqlite3.

One :class:`Database` owns one SQLite connection (file-backed or
in-memory).  It is deliberately small: execute/query/insert plus the
handful of conveniences the rest of the library needs — schema creation
from :class:`~repro.sqlengine.schema.TableSchema`, bulk inserts, temp
tables for the hybrid executor, cloning (for per-experiment isolation),
and introspection.
"""

from __future__ import annotations

import sqlite3
from pathlib import Path
from typing import Iterable, Sequence, Union

from repro.errors import ExecutionError, SchemaError
from repro.sqlengine.results import ResultSet
from repro.sqlengine.schema import DatabaseSchema, TableSchema


def _quote(name: str) -> str:
    return '"' + name.replace('"', '""') + '"'


class Database:
    """A SQLite database with a typed, convenient surface.

    Usage::

        with Database.in_memory() as db:
            db.create_table(schema)
            db.insert_rows("t", ["a", "b"], rows)
            result = db.query("SELECT * FROM t")
    """

    def __init__(self, path: Union[str, Path] = ":memory:") -> None:
        self.path = str(path)
        self.connection = sqlite3.connect(self.path)
        self.connection.execute("PRAGMA foreign_keys = OFF")

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def in_memory(cls) -> "Database":
        return cls(":memory:")

    @classmethod
    def open(cls, path: Union[str, Path]) -> "Database":
        return cls(path)

    def close(self) -> None:
        self.connection.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- execution -----------------------------------------------------------

    def execute(self, sql: str, params: Sequence[object] = ()) -> None:
        """Run a statement for its side effects and commit."""
        try:
            self.connection.execute(sql, params)
            self.connection.commit()
        except sqlite3.Error as exc:
            raise ExecutionError(f"{exc} while executing: {sql[:400]}") from exc

    def executescript(self, sql: str) -> None:
        """Run several semicolon-separated statements."""
        try:
            self.connection.executescript(sql)
            self.connection.commit()
        except sqlite3.Error as exc:
            raise ExecutionError(f"{exc} while executing script") from exc

    def query(self, sql: str, params: Sequence[object] = ()) -> ResultSet:
        """Run a SELECT and return its rows."""
        try:
            cursor = self.connection.execute(sql, params)
        except sqlite3.Error as exc:
            raise ExecutionError(f"{exc} while querying: {sql[:400]}") from exc
        return ResultSet.from_cursor(cursor)

    def query_column(self, sql: str, params: Sequence[object] = ()) -> list[object]:
        """First column of a SELECT as a plain list."""
        return [row[0] for row in self.query(sql, params).rows]

    def query_scalar(self, sql: str, params: Sequence[object] = ()) -> object:
        """Single value of a 1x1 SELECT (None when the result is empty)."""
        return self.query(sql, params).scalar()

    # -- schema --------------------------------------------------------------

    def create_table(self, schema: TableSchema, *, if_not_exists: bool = False) -> None:
        ddl = schema.ddl()
        if if_not_exists:
            ddl = ddl.replace("CREATE TABLE", "CREATE TABLE IF NOT EXISTS", 1)
        self.execute(ddl)

    def create_schema(self, schema: DatabaseSchema) -> None:
        for table in schema.tables:
            self.create_table(table)

    def drop_table(self, name: str) -> None:
        self.execute(f"DROP TABLE IF EXISTS {_quote(name)}")

    def has_table(self, name: str) -> bool:
        count = self.query_scalar(
            "SELECT COUNT(*) FROM sqlite_master WHERE type IN ('table', 'view')"
            " AND name = ?",
            (name,),
        )
        return bool(count)

    def table_names(self) -> list[str]:
        return [
            str(name)
            for name in self.query_column(
                "SELECT name FROM sqlite_master WHERE type = 'table'"
                " AND name NOT LIKE 'sqlite_%' ORDER BY name"
            )
        ]

    def table_columns(self, name: str) -> list[str]:
        if not self.has_table(name):
            raise SchemaError(f"no such table: {name!r}")
        rows = self.query(f"PRAGMA table_info({_quote(name)})").rows
        return [str(row[1]) for row in rows]

    def row_count(self, name: str) -> int:
        value = self.query_scalar(f"SELECT COUNT(*) FROM {_quote(name)}")
        return int(value) if value is not None else 0

    # -- data movement -------------------------------------------------------

    def insert_rows(
        self,
        table: str,
        columns: Sequence[str],
        rows: Iterable[Sequence[object]],
    ) -> int:
        """Bulk insert; returns the number of rows inserted."""
        placeholders = ", ".join("?" for _ in columns)
        column_list = ", ".join(_quote(c) for c in columns)
        sql = f"INSERT INTO {_quote(table)} ({column_list}) VALUES ({placeholders})"
        rows = list(rows)
        try:
            self.connection.executemany(sql, rows)
            self.connection.commit()
        except sqlite3.Error as exc:
            raise ExecutionError(f"{exc} while inserting into {table}") from exc
        return len(rows)

    def create_temp_table(
        self,
        name: str,
        columns: Sequence[str],
        rows: Iterable[Sequence[object]] = (),
    ) -> None:
        """Create (or replace) a TEMP table and optionally fill it.

        Temp tables shadow base tables in queries on this connection, which
        is exactly what the hybrid executor wants for ingredient results.
        """
        self.execute(f"DROP TABLE IF EXISTS temp.{_quote(name)}")
        body = ", ".join(f"{_quote(c)} TEXT" for c in columns)
        self.execute(f"CREATE TEMP TABLE {_quote(name)} ({body})")
        rows = list(rows)
        if rows:
            placeholders = ", ".join("?" for _ in columns)
            try:
                self.connection.executemany(
                    f"INSERT INTO temp.{_quote(name)} VALUES ({placeholders})", rows
                )
                self.connection.commit()
            except sqlite3.Error as exc:
                raise ExecutionError(f"{exc} while filling temp table {name}") from exc

    def clone_in_memory(self) -> "Database":
        """An independent in-memory copy of this database."""
        clone = Database.in_memory()
        self.connection.backup(clone.connection)
        return clone

    def save_to(self, path: Union[str, Path]) -> None:
        """Persist this database to a file (overwriting it)."""
        target = Database.open(path)
        try:
            self.connection.backup(target.connection)
        finally:
            target.close()
