"""The Database wrapper around sqlite3.

One :class:`Database` owns one SQLite connection (file-backed or
in-memory).  It is deliberately small: execute/query/insert plus the
handful of conveniences the rest of the library needs — schema creation
from :class:`~repro.sqlengine.schema.TableSchema`, bulk inserts, temp
tables for the hybrid executor, cloning (for per-experiment isolation),
and introspection.
"""

from __future__ import annotations

import sqlite3
from itertools import islice
from pathlib import Path
from typing import Iterable, Iterator, Sequence, Union

from repro.errors import ExecutionError, SchemaError
from repro.sqlengine.results import ResultSet
from repro.sqlengine.schema import DatabaseSchema, TableSchema


def _quote(name: str) -> str:
    return '"' + name.replace('"', '""') + '"'


#: rows per executemany chunk for bulk inserts — large enough to amortize
#: statement overhead, small enough that generated row streams (HQDL
#: materialization, big expansion tables) never materialize in full
INSERT_CHUNK_SIZE = 500


def _chunked(
    rows: Iterable[Sequence[object]], size: int
) -> Iterator[list[Sequence[object]]]:
    """Fixed-size chunks of a row iterable, without materializing it."""
    iterator = iter(rows)
    while True:
        chunk = list(islice(iterator, size))
        if not chunk:
            return
        yield chunk


class Database:
    """A SQLite database with a typed, convenient surface.

    Usage::

        with Database.in_memory() as db:
            db.create_table(schema)
            db.insert_rows("t", ["a", "b"], rows)
            result = db.query("SELECT * FROM t")
    """

    def __init__(self, path: Union[str, Path] = ":memory:") -> None:
        self.path = str(path)
        self.connection = sqlite3.connect(self.path)
        self.connection.execute("PRAGMA foreign_keys = OFF")

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def in_memory(cls) -> "Database":
        return cls(":memory:")

    @classmethod
    def open(cls, path: Union[str, Path]) -> "Database":
        return cls(path)

    def close(self) -> None:
        self.connection.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- execution -----------------------------------------------------------

    def execute(self, sql: str, params: Sequence[object] = ()) -> None:
        """Run a statement for its side effects and commit."""
        try:
            self.connection.execute(sql, params)
            self.connection.commit()
        except sqlite3.Error as exc:
            raise ExecutionError(f"{exc} while executing: {sql[:400]}") from exc

    def executescript(self, sql: str) -> None:
        """Run several semicolon-separated statements."""
        try:
            self.connection.executescript(sql)
            self.connection.commit()
        except sqlite3.Error as exc:
            raise ExecutionError(f"{exc} while executing script") from exc

    def query(self, sql: str, params: Sequence[object] = ()) -> ResultSet:
        """Run a SELECT and return its rows."""
        try:
            cursor = self.connection.execute(sql, params)
        except sqlite3.Error as exc:
            raise ExecutionError(f"{exc} while querying: {sql[:400]}") from exc
        return ResultSet.from_cursor(cursor)

    def query_rows(self, sql: str, params: Sequence[object] = ()) -> list[tuple]:
        """Rows of a SELECT as plain tuples, skipping :class:`ResultSet`.

        The bulk-fetch path for hot loops (key fetches at scale): one
        ``fetchall`` and no per-row column bookkeeping.
        """
        try:
            return self.connection.execute(sql, params).fetchall()
        except sqlite3.Error as exc:
            raise ExecutionError(f"{exc} while querying: {sql[:400]}") from exc

    def query_column(self, sql: str, params: Sequence[object] = ()) -> list[object]:
        """First column of a SELECT as a plain list."""
        return [row[0] for row in self.query(sql, params).rows]

    def query_scalar(self, sql: str, params: Sequence[object] = ()) -> object:
        """Single value of a 1x1 SELECT (None when the result is empty)."""
        return self.query(sql, params).scalar()

    # -- schema --------------------------------------------------------------

    def create_table(self, schema: TableSchema, *, if_not_exists: bool = False) -> None:
        ddl = schema.ddl()
        if if_not_exists:
            ddl = ddl.replace("CREATE TABLE", "CREATE TABLE IF NOT EXISTS", 1)
        self.execute(ddl)

    def create_schema(self, schema: DatabaseSchema) -> None:
        for table in schema.tables:
            self.create_table(table)

    def drop_table(self, name: str) -> None:
        self.execute(f"DROP TABLE IF EXISTS {_quote(name)}")

    def has_table(self, name: str) -> bool:
        count = self.query_scalar(
            "SELECT COUNT(*) FROM sqlite_master WHERE type IN ('table', 'view')"
            " AND name = ?",
            (name,),
        )
        return bool(count)

    def table_names(self) -> list[str]:
        return [
            str(name)
            for name in self.query_column(
                "SELECT name FROM sqlite_master WHERE type = 'table'"
                " AND name NOT LIKE 'sqlite_%' ORDER BY name"
            )
        ]

    def table_columns(self, name: str) -> list[str]:
        if not self.has_table(name):
            raise SchemaError(f"no such table: {name!r}")
        rows = self.query(f"PRAGMA table_info({_quote(name)})").rows
        return [str(row[1]) for row in rows]

    def row_count(self, name: str) -> int:
        value = self.query_scalar(f"SELECT COUNT(*) FROM {_quote(name)}")
        return int(value) if value is not None else 0

    # -- data movement -------------------------------------------------------

    def insert_rows(
        self,
        table: str,
        columns: Sequence[str],
        rows: Iterable[Sequence[object]],
        *,
        chunk_size: int = INSERT_CHUNK_SIZE,
    ) -> int:
        """Bulk insert, streamed in fixed-size chunks; returns rows inserted.

        The row iterable is consumed lazily — one chunk in memory at a
        time — and committed once at the end, so a failed insert leaves
        the table unchanged.
        """
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        placeholders = ", ".join("?" for _ in columns)
        column_list = ", ".join(_quote(c) for c in columns)
        sql = f"INSERT INTO {_quote(table)} ({column_list}) VALUES ({placeholders})"
        inserted = 0
        try:
            for chunk in _chunked(rows, chunk_size):
                self.connection.executemany(sql, chunk)
                inserted += len(chunk)
            self.connection.commit()
        except sqlite3.Error as exc:
            self.connection.rollback()
            raise ExecutionError(f"{exc} while inserting into {table}") from exc
        return inserted

    def create_temp_table(
        self,
        name: str,
        columns: Sequence[str],
        rows: Iterable[Sequence[object]] = (),
        *,
        chunk_size: int = INSERT_CHUNK_SIZE,
    ) -> None:
        """Create (or replace) a TEMP table and fill it in streamed chunks.

        Temp tables shadow base tables in queries on this connection, which
        is exactly what the hybrid executor wants for ingredient results.
        """
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.execute(f"DROP TABLE IF EXISTS temp.{_quote(name)}")
        body = ", ".join(f"{_quote(c)} TEXT" for c in columns)
        self.execute(f"CREATE TEMP TABLE {_quote(name)} ({body})")
        placeholders = ", ".join("?" for _ in columns)
        sql = f"INSERT INTO temp.{_quote(name)} VALUES ({placeholders})"
        try:
            for chunk in _chunked(rows, chunk_size):
                self.connection.executemany(sql, chunk)
            self.connection.commit()
        except sqlite3.Error as exc:
            self.connection.rollback()
            raise ExecutionError(f"{exc} while filling temp table {name}") from exc

    def create_index(
        self, table: str, columns: Sequence[str], *, name: str = ""
    ) -> str:
        """CREATE INDEX IF NOT EXISTS on ``table(columns)``; returns its name.

        Used for FK/join-key indexes at world build time and for the
        executor's temp mapping tables, whose correlated-subquery probes
        are the hot path of every rewritten hybrid query.
        """
        if not columns:
            raise ValueError("create_index requires at least one column")
        index_name = name or "idx_{}_{}".format(
            table.strip('"'), "_".join(c.strip('"') for c in columns)
        )
        column_list = ", ".join(_quote(c) for c in columns)
        self.execute(
            f"CREATE INDEX IF NOT EXISTS {_quote(index_name)} "
            f"ON {_quote(table)} ({column_list})"
        )
        return index_name

    def clone_in_memory(self) -> "Database":
        """An independent in-memory copy of this database."""
        clone = Database.in_memory()
        self.connection.backup(clone.connection)
        return clone

    def save_to(self, path: Union[str, Path]) -> None:
        """Persist this database to a file (overwriting it)."""
        target = Database.open(path)
        try:
            self.connection.backup(target.connection)
        finally:
            target.close()
