"""Declarative schema objects and DDL generation.

These classes describe tables the way the SWAN builder and HQDL's schema
expansion need them: column types, primary keys, and *meaningful* foreign
keys (Section 3.4 of the paper — FK columns that carry human-readable
values, such as ``superhero_name``, so an LLM can use them as lookup keys).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import SchemaError

_VALID_TYPES = frozenset({"TEXT", "INTEGER", "REAL", "NUMERIC", "BLOB"})


def _quote(name: str) -> str:
    return '"' + name.replace('"', '""') + '"'


@dataclass(frozen=True)
class ColumnSchema:
    """One column: name, SQLite affinity, and nullability."""

    name: str
    type: str = "TEXT"
    nullable: bool = True

    def __post_init__(self) -> None:
        if self.type.upper() not in _VALID_TYPES:
            raise SchemaError(f"unsupported column type {self.type!r} for {self.name!r}")

    def ddl(self) -> str:
        text = f"{_quote(self.name)} {self.type.upper()}"
        if not self.nullable:
            text += " NOT NULL"
        return text


@dataclass(frozen=True)
class ForeignKey:
    """A (possibly composite) foreign key reference."""

    columns: tuple[str, ...]
    ref_table: str
    ref_columns: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.columns) != len(self.ref_columns):
            raise SchemaError(
                f"foreign key arity mismatch: {self.columns} -> {self.ref_columns}"
            )

    def ddl(self) -> str:
        cols = ", ".join(_quote(c) for c in self.columns)
        refs = ", ".join(_quote(c) for c in self.ref_columns)
        return f"FOREIGN KEY ({cols}) REFERENCES {_quote(self.ref_table)} ({refs})"


@dataclass
class TableSchema:
    """A table definition.

    ``primary_key`` may be composite.  Foreign keys are advisory (SQLite
    does not enforce them unless the pragma is on) but are part of the
    benchmark's key design, so they are kept in the catalog.
    """

    name: str
    columns: list[ColumnSchema] = field(default_factory=list)
    primary_key: tuple[str, ...] = ()
    foreign_keys: list[ForeignKey] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in table {self.name!r}")
        known = set(names)
        for pk in self.primary_key:
            if pk not in known:
                raise SchemaError(f"primary key column {pk!r} not in table {self.name!r}")
        for fk in self.foreign_keys:
            for col in fk.columns:
                if col not in known:
                    raise SchemaError(
                        f"foreign key column {col!r} not in table {self.name!r}"
                    )

    # -- lookups -------------------------------------------------------------

    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    def column(self, name: str) -> ColumnSchema:
        for col in self.columns:
            if col.name == name:
                return col
        raise SchemaError(f"no column {name!r} in table {self.name!r}")

    def has_column(self, name: str) -> bool:
        return any(c.name == name for c in self.columns)

    # -- derivation ----------------------------------------------------------

    def without_columns(self, dropped: Iterable[str]) -> "TableSchema":
        """A copy of this schema with the given columns removed.

        Foreign keys touching a dropped column are removed too; the primary
        key is trimmed.  Raises :class:`SchemaError` when a named column
        does not exist (curation plans must match the world schema).
        """
        dropped_set = set(dropped)
        unknown = dropped_set - set(self.column_names())
        if unknown:
            raise SchemaError(
                f"cannot drop unknown columns {sorted(unknown)} from {self.name!r}"
            )
        return TableSchema(
            name=self.name,
            columns=[c for c in self.columns if c.name not in dropped_set],
            primary_key=tuple(c for c in self.primary_key if c not in dropped_set),
            foreign_keys=[
                fk
                for fk in self.foreign_keys
                if not dropped_set.intersection(fk.columns)
            ],
        )

    def ddl(self) -> str:
        """CREATE TABLE statement for this schema."""
        parts = [col.ddl() for col in self.columns]
        if self.primary_key:
            pk = ", ".join(_quote(c) for c in self.primary_key)
            parts.append(f"PRIMARY KEY ({pk})")
        parts.extend(fk.ddl() for fk in self.foreign_keys)
        body = ",\n  ".join(parts)
        return f"CREATE TABLE {_quote(self.name)} (\n  {body}\n)"


@dataclass
class DatabaseSchema:
    """An ordered collection of table schemas for one database."""

    name: str
    tables: list[TableSchema] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [t.name for t in self.tables]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate table names in database {self.name!r}")

    def table(self, name: str) -> TableSchema:
        for table in self.tables:
            if table.name == name:
                return table
        raise SchemaError(f"no table {name!r} in database {self.name!r}")

    def has_table(self, name: str) -> bool:
        return any(t.name == name for t in self.tables)

    def table_names(self) -> list[str]:
        return [t.name for t in self.tables]

    def ddl(self) -> str:
        return ";\n\n".join(t.ddl() for t in self.tables) + ";"

    def describe(self) -> str:
        """A compact schema sketch for prompts: name(col1, col2, ...)."""
        lines = []
        for table in self.tables:
            cols = ", ".join(table.column_names())
            lines.append(f"{table.name}({cols})")
        return "\n".join(lines)
