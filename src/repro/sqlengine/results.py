"""Query result container and the comparison semantics of the EX metric.

Execution accuracy (Section 5.1) counts a hybrid query as correct when its
result is *identical* to the gold query's result.  Identical means:

- same rows with the same multiplicity;
- in the same order when the gold query carries an ORDER BY, as a multiset
  otherwise;
- cell values compared after normalisation: floats rounded to a tolerance,
  integral floats folded into ints (SQLite freely mixes the two), strings
  compared exactly.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Sequence

#: Floats are rounded to this many decimal places before comparison, the
#: customary tolerance in text-to-SQL execution-accuracy harnesses.
FLOAT_DECIMALS = 4


def normalize_cell(value: object) -> object:
    """Normalise one cell for comparison."""
    if isinstance(value, bool):  # before int: bool is an int subclass
        return int(value)
    if isinstance(value, float):
        rounded = round(value, FLOAT_DECIMALS)
        if rounded == int(rounded):
            return int(rounded)
        return rounded
    if isinstance(value, bytes):
        return value.decode("utf-8", errors="replace")
    return value


def normalize_row(row: Sequence[object]) -> tuple[object, ...]:
    """Normalise one row for comparison."""
    return tuple(normalize_cell(cell) for cell in row)


@dataclass
class ResultSet:
    """Columns and rows returned by a query."""

    columns: list[str] = field(default_factory=list)
    rows: list[tuple[object, ...]] = field(default_factory=list)

    @classmethod
    def from_cursor(cls, cursor) -> "ResultSet":
        """Build from a sqlite3 cursor that has executed a statement."""
        columns = [d[0] for d in cursor.description] if cursor.description else []
        rows = [tuple(row) for row in cursor.fetchall()]
        return cls(columns=columns, rows=rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def is_empty(self) -> bool:
        return not self.rows

    def normalized_rows(self) -> list[tuple[object, ...]]:
        return [normalize_row(row) for row in self.rows]

    def column_values(self, index: int = 0) -> list[object]:
        """All values of one column position."""
        return [row[index] for row in self.rows]

    def scalar(self) -> object:
        """The single value of a 1x1 result; None when empty."""
        if not self.rows:
            return None
        return self.rows[0][0]

    def pretty(self, max_rows: int = 20) -> str:
        """Human-readable rendering for examples and error messages."""
        header = " | ".join(self.columns)
        divider = "-" * len(header)
        lines = [header, divider]
        for row in self.rows[:max_rows]:
            lines.append(" | ".join("" if v is None else str(v) for v in row))
        if len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join(lines)


def results_match(
    expected: ResultSet,
    actual: ResultSet,
    *,
    ordered: bool = False,
) -> bool:
    """The EX comparison: identical rows, ordered or as a multiset.

    Column *names* are ignored (gold and hybrid queries label columns
    differently); column count and cell values are what matters.
    """
    expected_rows = expected.normalized_rows()
    actual_rows = actual.normalized_rows()
    if len(expected_rows) != len(actual_rows):
        return False
    if expected_rows and len(expected_rows[0]) != len(actual_rows[0]):
        return False
    if ordered:
        return expected_rows == actual_rows
    return Counter(expected_rows) == Counter(actual_rows)


def rows_to_multiset(rows: Iterable[Sequence[object]]) -> Counter:
    """Multiset of normalised rows (exposed for property tests)."""
    return Counter(normalize_row(row) for row in rows)
