"""Exception hierarchy shared across the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type at an API boundary.  Subsystems raise the most
specific subclass available; messages always carry enough context (the
offending SQL fragment, prompt, table name, ...) to be actionable without
a debugger.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class SQLSyntaxError(ReproError):
    """Raised by the SQL lexer/parser on malformed input.

    Carries the source text position so tooling can point at the offending
    character.
    """

    def __init__(self, message: str, *, position: int = -1, line: int = -1) -> None:
        self.position = position
        self.line = line
        location = ""
        if line >= 0:
            location = f" (line {line})"
        elif position >= 0:
            location = f" (offset {position})"
        super().__init__(f"{message}{location}")


class UnsupportedSQLError(ReproError):
    """Raised when SQL is lexically valid but outside the supported subset."""


class SchemaError(ReproError):
    """Raised for inconsistent schema definitions or unknown tables/columns."""


class CurationError(ReproError):
    """Raised when a benchmark curation plan does not match the world schema."""


class ExtractionError(ReproError):
    """Raised when an LLM completion cannot be parsed into structured rows."""


class IngredientError(ReproError):
    """Raised for malformed {{...}} ingredient calls in hybrid queries."""


class ExecutionError(ReproError):
    """Raised when a hybrid query fails during execution."""


class LLMError(ReproError):
    """Raised by the simulated LLM stack (bad request, over budget, ...)."""


class BudgetExceededError(LLMError):
    """Raised when a token or call budget configured on a client is exhausted."""


class TransientLLMError(LLMError):
    """A retryable LLM failure (the provider said "try again").

    Carries an optional ``retry_after`` hint in seconds, the way HTTP 429
    and 503 responses do; retry layers honour it as a lower bound on the
    backoff delay.
    """

    def __init__(self, message: str, *, retry_after: float | None = None) -> None:
        self.retry_after = retry_after
        if retry_after is not None:
            message = f"{message} (retry after {retry_after:g}s)"
        super().__init__(message)


class RateLimitError(TransientLLMError):
    """The provider rejected the call for exceeding its rate limit (429)."""


class LLMTimeoutError(TransientLLMError):
    """The call exceeded its time budget before a completion arrived."""


class CircuitOpenError(TransientLLMError):
    """An open circuit breaker short-circuited the call without sending it.

    Transient by nature — the breaker will half-open after its cooldown —
    but retry layers must *not* spin on it; the ``retry_after`` hint says
    when the breaker is due to probe again.
    """


class DeadlineExceededError(LLMError):
    """Work was skipped (not dispatched) because its deadline had expired.

    Raised/captured by the dispatch layers when a request-level
    :class:`~repro.llm.resilience.Deadline` runs out before a prompt is
    sent upstream.  Degradable: pipelines turn it into NULL cells, the
    serving layer into a degraded answer — never into a hang.
    """


class AdmissionRejectedError(ReproError):
    """A query server refused to admit a request (load shedding).

    ``reason`` is a stable machine-readable class (``queue_full``,
    ``tenant_quota``, ``token_budget``); ``retry_after`` hints how many
    seconds until admission is likely to succeed, the way HTTP 429 does.
    """

    def __init__(
        self,
        message: str,
        *,
        reason: str = "overload",
        retry_after: float | None = None,
    ) -> None:
        self.reason = reason
        self.retry_after = retry_after
        if retry_after is not None:
            message = f"{message} (retry after {retry_after:g}s)"
        super().__init__(message)


class RetryBudgetExceededError(LLMError):
    """Every retry attempt was consumed (or the deadline passed) without success.

    Wraps the final transient error as ``__cause__``; raised only by
    :class:`~repro.llm.resilience.RetryingClient` when it gives up, so
    callers can distinguish "retried and lost" from a first-call failure.
    """

    def __init__(self, message: str, *, attempts: int = 0) -> None:
        self.attempts = attempts
        super().__init__(message)
