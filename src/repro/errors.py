"""Exception hierarchy shared across the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type at an API boundary.  Subsystems raise the most
specific subclass available; messages always carry enough context (the
offending SQL fragment, prompt, table name, ...) to be actionable without
a debugger.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class SQLSyntaxError(ReproError):
    """Raised by the SQL lexer/parser on malformed input.

    Carries the source text position so tooling can point at the offending
    character.
    """

    def __init__(self, message: str, *, position: int = -1, line: int = -1) -> None:
        self.position = position
        self.line = line
        location = ""
        if line >= 0:
            location = f" (line {line})"
        elif position >= 0:
            location = f" (offset {position})"
        super().__init__(f"{message}{location}")


class UnsupportedSQLError(ReproError):
    """Raised when SQL is lexically valid but outside the supported subset."""


class SchemaError(ReproError):
    """Raised for inconsistent schema definitions or unknown tables/columns."""


class CurationError(ReproError):
    """Raised when a benchmark curation plan does not match the world schema."""


class ExtractionError(ReproError):
    """Raised when an LLM completion cannot be parsed into structured rows."""


class IngredientError(ReproError):
    """Raised for malformed {{...}} ingredient calls in hybrid queries."""


class ExecutionError(ReproError):
    """Raised when a hybrid query fails during execution."""


class LLMError(ReproError):
    """Raised by the simulated LLM stack (bad request, over budget, ...)."""


class BudgetExceededError(LLMError):
    """Raised when a token or call budget configured on a client is exhausted."""
