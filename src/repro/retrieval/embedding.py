"""Deterministic sparse text embeddings.

The offline stand-in for the sentence-transformer embeddings the paper's
optimization discussion assumes: a bag-of-words vector with sub-linear
term weighting, compared by cosine similarity.  Shared by few-shot
demonstration selection (:mod:`repro.udf.fewshot`), the semantic cache,
and the row-context retriever.
"""

from __future__ import annotations

import math
import re

_WORD_RE = re.compile(r"[a-z0-9]+")


def embed(text: str) -> dict[str, float]:
    """A sparse bag-of-words vector with sub-linear term weighting."""
    counts: dict[str, float] = {}
    for word in _WORD_RE.findall(text.lower()):
        counts[word] = counts.get(word, 0.0) + 1.0
    return {word: 1.0 + math.log(count) for word, count in counts.items()}


def cosine_similarity(left: dict[str, float], right: dict[str, float]) -> float:
    """Cosine similarity between two sparse vectors (0.0 for empty ones)."""
    if not left or not right:
        return 0.0
    smaller, larger = (left, right) if len(left) <= len(right) else (right, left)
    dot = sum(value * larger.get(word, 0.0) for word, value in smaller.items())
    norm_left = math.sqrt(sum(v * v for v in left.values()))
    norm_right = math.sqrt(sum(v * v for v in right.values()))
    if norm_left == 0.0 or norm_right == 0.0:
        return 0.0
    return dot / (norm_left * norm_right)
