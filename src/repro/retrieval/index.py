"""The vector index and the row-context retriever.

:class:`VectorIndex` is a straightforward exact-scan similarity index —
at SWAN's scale an ANN structure would be noise; the interface (add /
search top-k) is what matters.

:class:`RowContextRetriever` builds one index per curated database:
every row of every table becomes a document of the form
``table_name: col=value | col=value | ...``.  Given an expansion key it
retrieves the most related rows, which HQDL can splice into its prompts
as grounding context (the paper's "fetch the relevant information based
on embedding similarity").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.retrieval.embedding import cosine_similarity, embed
from repro.swan.base import World


@dataclass(frozen=True)
class SearchHit:
    """One retrieval result."""

    doc_id: int
    text: str
    score: float


class VectorIndex:
    """An exact-scan cosine-similarity index over text documents."""

    def __init__(self) -> None:
        self._texts: list[str] = []
        self._vectors: list[dict[str, float]] = []

    def add(self, text: str) -> int:
        """Index one document; returns its doc id."""
        doc_id = len(self._texts)
        self._texts.append(text)
        self._vectors.append(embed(text))
        return doc_id

    def __len__(self) -> int:
        return len(self._texts)

    def document(self, doc_id: int) -> str:
        return self._texts[doc_id]

    def search(self, query: str, k: int = 5) -> list[SearchHit]:
        """Top-k documents by cosine similarity (ties broken by doc id)."""
        if k <= 0 or not self._texts:
            return []
        query_vector = embed(query)
        scored = sorted(
            range(len(self._vectors)),
            key=lambda i: (-cosine_similarity(query_vector, self._vectors[i]), i),
        )
        hits = []
        for doc_id in scored[:k]:
            score = cosine_similarity(query_vector, self._vectors[doc_id])
            if score <= 0.0:
                break
            hits.append(SearchHit(doc_id, self._texts[doc_id], score))
        return hits


class RowContextRetriever:
    """Indexes a world's curated rows for per-key context retrieval."""

    def __init__(self, world: World, *, max_cell_chars: int = 40) -> None:
        self.world = world
        self.max_cell_chars = max_cell_chars
        self.index = VectorIndex()
        for table in world.curated_schema.tables:
            columns = table.column_names()
            for row in world.curated_rows[table.name]:
                self.index.add(self._render_row(table.name, columns, row))

    def _render_row(self, table: str, columns: list[str], row: tuple) -> str:
        cells = " | ".join(
            f"{column}={self._clip(value)}"
            for column, value in zip(columns, row)
            if value is not None
        )
        return f"{table}: {cells}"

    def _clip(self, value: object) -> str:
        text = str(value)
        if len(text) > self.max_cell_chars:
            return text[: self.max_cell_chars - 1] + "…"
        return text

    def related_rows(self, key: tuple, k: int = 3) -> list[str]:
        """The k database rows most related to an expansion key."""
        query = " ".join(str(part) for part in key)
        return [hit.text for hit in self.index.search(query, k)]

    def context_provider(
        self, k: int = 3
    ) -> "Optional[_Provider]":
        """A key → context-lines callable for the HQDL prompt builder."""
        if k <= 0:
            return None
        return _Provider(self, k)


@dataclass(frozen=True)
class _Provider:
    retriever: RowContextRetriever
    k: int

    def __call__(self, key: tuple) -> list[str]:
        return self.retriever.related_rows(key, self.k)
