"""Context retrieval over database values (Section 4.3, opportunity #1).

"There are other attributes inside the relational database that may be
relevant and it remains an open question on how to select the best
context.  One possible approach is to build a vector index on the
database values or rows and then fetch the relevant information based on
embedding similarity."

- :class:`~repro.retrieval.index.VectorIndex` — a generic sparse-vector
  similarity index (the offline stand-in for an embedding index).
- :class:`~repro.retrieval.index.RowContextRetriever` — indexes every row
  of a curated database and fetches the rows most related to an
  expansion key, rendered as prompt context lines.

HQDL consumes this through its ``context_rows`` option; the ablation
bench measures the factuality-vs-token trade-off.
"""

from repro.retrieval.embedding import cosine_similarity, embed
from repro.retrieval.index import RowContextRetriever, VectorIndex

__all__ = [
    "VectorIndex",
    "RowContextRetriever",
    "embed",
    "cosine_similarity",
]
