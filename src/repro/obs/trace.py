"""Hierarchical spans over an injectable clock.

The tracing half of :mod:`repro.obs`.  A :class:`Tracer` produces
:class:`Span` trees — run → database → question → dispatch → LLM call →
retry attempt — with timestamps read from whatever clock it was given.
Production hands it a wall clock; tests and benches hand it the same
:class:`~repro.llm.parallel.SimulatedClock` that drives virtual LLM
latency, which makes whole traces *exactly reproducible*: two runs of
the same seed produce identical span trees, timestamps included.

Span nesting is tracked per thread (a thread-local stack), with an
explicit ``parent=`` escape hatch for work that hops threads — the
dispatcher captures its own span before fanning out and parents each
worker-side call span under it.

Disabled mode is :class:`NullTracer`: ``span()`` returns a shared no-op
context manager, so the off path costs one attribute check and no locks
or allocations.  Components should guard span creation with
``telemetry.enabled`` so attribute dicts are never built when tracing
is off.
"""

from __future__ import annotations

import threading
import time
from typing import Iterator, Optional


class WallClock:
    """The default time source: monotonic seconds."""

    def now(self) -> float:
        return time.monotonic()


_UNSET = object()


class Span:
    """One timed operation, with attributes and child spans."""

    __slots__ = ("name", "span_id", "parent_id", "start", "end",
                 "attributes", "children", "lane")

    def __init__(
        self,
        name: str,
        span_id: str,
        parent_id: Optional[str],
        start: float,
        lane: int = 0,
        attributes: Optional[dict] = None,
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end: Optional[float] = None
        self.attributes: dict[str, object] = attributes if attributes else {}
        self.children: list[Span] = []
        self.lane = lane

    @property
    def duration(self) -> float:
        """Seconds from start to end (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def set(self, key: str, value: object) -> None:
        """Attach one attribute to the span."""
        self.attributes[key] = value

    def self_time(self) -> float:
        """Duration not covered by child spans (clamped at zero).

        With sequential children this is an exact decomposition: the
        self times of a tree sum to the root's duration.  Overlapping
        (parallel) children can exceed the parent, hence the clamp.
        """
        return max(0.0, self.duration - sum(c.duration for c in self.children))

    def walk(self) -> Iterator["Span"]:
        """This span and all descendants, depth-first in start order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def tree(self) -> tuple:
        """A structural fingerprint for exact-equality assertions."""
        return (
            self.name,
            self.start,
            self.end,
            tuple(sorted((str(k), str(v)) for k, v in self.attributes.items())),
            tuple(child.tree() for child in self.children),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"start={self.start:g}, end={self.end}, "
            f"children={len(self.children)})"
        )


def closed_span(
    name: str,
    span_id: str,
    parent: Optional[Span],
    start: float,
    end: float,
    *,
    lane: int = 0,
    attributes: Optional[dict] = None,
) -> Span:
    """Build an already-finished span with explicit virtual timestamps.

    Post-hoc trace materialization (the serving layer reconstructs span
    trees from per-request numbers after the run) needs spans whose
    start/end are chosen, not read from a clock.  The span is attached
    to ``parent``'s children when one is given.
    """
    if end < start:
        raise ValueError(f"span end {end} precedes start {start}")
    span = Span(
        name,
        span_id,
        parent.span_id if parent is not None else None,
        start,
        lane=lane,
        attributes=dict(attributes) if attributes else None,
    )
    span.end = end
    if parent is not None:
        parent.children.append(span)
    return span


class _SpanContext:
    """Context manager that opens a span on entry, closes it on exit."""

    __slots__ = ("_tracer", "_name", "_parent", "_attributes", "_span")

    def __init__(self, tracer: "Tracer", name: str, parent, attributes: dict):
        self._tracer = tracer
        self._name = name
        self._parent = parent
        self._attributes = attributes
        self._span: Optional[Span] = None

    def __enter__(self) -> Span:
        self._span = self._tracer._start(self._name, self._parent, self._attributes)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        assert self._span is not None
        if exc_type is not None and "error" not in self._span.attributes:
            self._span.set("error", exc_type.__name__)
        self._tracer._finish(self._span)
        return False


class _NullSpan:
    """A no-op Span/context-manager hybrid, shared by all callers."""

    __slots__ = ()

    name = ""
    span_id = ""
    parent_id = None
    start = 0.0
    end = 0.0
    duration = 0.0
    attributes: dict = {}
    children: list = []
    lane = 0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, key: str, value: object) -> None:
        pass

    def self_time(self) -> float:
        return 0.0

    def walk(self):
        return iter(())

    def tree(self) -> tuple:
        return ()


NULL_SPAN = _NullSpan()


class Tracer:
    """Produces span trees; thread-safe; deterministic under virtual time.

    Span ids are assigned in start order (``s1``, ``s2``, ...) and lanes
    (for Chrome-trace track layout) in thread-first-seen order, so a
    sequential run always yields the same ids and lanes.
    """

    enabled = True

    def __init__(self, clock=None) -> None:
        self.clock = clock if clock is not None else WallClock()
        self.roots: list[Span] = []
        self.spans: list[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_id = 1
        self._lanes: dict[int, int] = {}

    # -- span API ----------------------------------------------------------------

    def span(self, name: str, parent=_UNSET, **attributes: object) -> _SpanContext:
        """A context manager that records one span.

        ``parent`` defaults to the calling thread's innermost open span;
        pass an explicit :class:`Span` to attach work that crosses
        threads, or ``None`` to force a new root.
        """
        return _SpanContext(self, name, parent, attributes)

    def current(self) -> Optional[Span]:
        """The calling thread's innermost open span, if any."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    # -- internals ---------------------------------------------------------------

    def _start(self, name: str, parent, attributes: dict) -> Span:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        if parent is _UNSET:
            resolved: Optional[Span] = stack[-1] if stack else None
        else:
            resolved = parent if isinstance(parent, Span) else None
        ident = threading.get_ident()
        now = self.clock.now()
        with self._lock:
            lane = self._lanes.get(ident)
            if lane is None:
                lane = len(self._lanes)
                self._lanes[ident] = lane
            span = Span(
                name,
                f"s{self._next_id}",
                resolved.span_id if resolved is not None else None,
                now,
                lane=lane,
                attributes=dict(attributes) if attributes else None,
            )
            self._next_id += 1
            if resolved is not None:
                resolved.children.append(span)
            else:
                self.roots.append(span)
            self.spans.append(span)
        stack.append(span)
        return span

    def _finish(self, span: Span) -> None:
        span.end = self.clock.now()
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] is span:
            stack.pop()
        elif stack and span in stack:  # pragma: no cover - defensive
            stack.remove(span)


class NullTracer:
    """The disabled tracer: every span is the shared no-op."""

    enabled = False

    __slots__ = ()

    roots: list = []
    spans: list = []

    def span(self, name: str, parent=None, **attributes: object) -> _NullSpan:
        return NULL_SPAN

    def current(self) -> None:
        return None
