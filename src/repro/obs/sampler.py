"""Deterministic tail-based trace sampling.

Head-based sampling (flip a coin at arrival) is cheap but blind: the
traces worth keeping — the degraded, the rejected, the slow — are
exactly the ones a uniform coin drops.  The :class:`TailSampler` instead
decides *after* each request terminates, when the outcome is known:

1. **outcome** — every trace that did not end in a clean serve is kept
   unconditionally (degraded, rejected, deadline-reaped, circuit-open);
2. **slowest** — among clean serves, the slowest ``slowest_k`` per
   finish window are kept, so latency regressions inside the SLO still
   leave evidence;
3. **hash** — the remainder keep with probability ``sample_rate`` by a
   stable hash of ``(seed, trace_id)`` — no RNG state, so the kept set
   is a pure function of the run's outcomes and the sampler config.

Everything runs on the virtual clock and plain request data, so the
same run always keeps the same traces, byte for byte.
"""

from __future__ import annotations

from typing import Iterable, Protocol

from repro.llm.oracle import stable_uniform
from repro.obs.timeseries import DEFAULT_WINDOW_SECONDS

#: kept because the outcome was not a clean serve
KEEP_OUTCOME = "outcome"
#: kept as one of the slowest-k clean serves in its finish window
KEEP_SLOWEST = "slowest"
#: kept by the stable hash draw
KEEP_HASH = "hash"


class Sampleable(Protocol):
    """What the sampler needs to know about one finished request."""

    trace_id: str

    @property
    def status(self) -> str: ...

    @property
    def finish(self) -> float: ...

    @property
    def latency(self) -> float: ...


class TailSampler:
    """Decide which finished-request traces to keep, deterministically."""

    def __init__(
        self,
        *,
        seed: int = 0,
        slowest_k: int = 3,
        sample_rate: float = 0.0,
        window_seconds: float = DEFAULT_WINDOW_SECONDS,
    ) -> None:
        if slowest_k < 0:
            raise ValueError(f"slowest_k must be >= 0, got {slowest_k}")
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate must be in [0, 1], got {sample_rate}"
            )
        if window_seconds <= 0:
            raise ValueError(
                f"window_seconds must be > 0, got {window_seconds}"
            )
        self.seed = seed
        self.slowest_k = slowest_k
        self.sample_rate = sample_rate
        self.window_seconds = window_seconds

    def decide(self, records: Iterable[Sampleable]) -> dict[str, str]:
        """Map each kept trace id to the reason it was kept.

        Input order does not matter: slowest-k ties break by trace id,
        and the hash draw depends only on ``(seed, trace_id)``.
        """
        kept: dict[str, str] = {}
        by_window: dict[int, list[Sampleable]] = {}
        for record in records:
            if record.status != "served":
                kept[record.trace_id] = KEEP_OUTCOME
                continue
            window = int(record.finish // self.window_seconds)
            by_window.setdefault(window, []).append(record)
        for window in sorted(by_window):
            ranked = sorted(
                by_window[window],
                key=lambda r: (-r.latency, r.trace_id),
            )
            for record in ranked[: self.slowest_k]:
                kept[record.trace_id] = KEEP_SLOWEST
            for record in ranked[self.slowest_k:]:
                if (
                    self.sample_rate > 0.0
                    and stable_uniform(str(self.seed), record.trace_id)
                    < self.sample_rate
                ):
                    kept[record.trace_id] = KEEP_HASH
        return kept

    def stats(self, decisions: dict[str, str], total: int) -> dict:
        """Aggregate keep/drop counts for bench payloads."""
        by_reason = {KEEP_OUTCOME: 0, KEEP_SLOWEST: 0, KEEP_HASH: 0}
        for reason in decisions.values():
            by_reason[reason] += 1
        return {
            "total": total,
            "kept": len(decisions),
            "dropped": total - len(decisions),
            "kept_by_reason": by_reason,
        }
