"""A bounded flight recorder for post-mortem serving incidents.

Aggregates tell you *that* the burst hurt; a post-mortem needs to know
*what happened* — which tenants were shed, when the breaker opened,
which deadlines were reaped — in the seconds before an alert fired.
The :class:`FlightRecorder` keeps a bounded ring of structured server
events (admit / shed / degrade / breaker transitions / deadline reaps),
cheap enough to leave on, and snapshots it into an **incident** the
moment an SLO alert fires: the alert, the triggering window's stats,
the open span context, and the recent event tail, serialized as one
JSONL line.  With a ``sink`` path the line is appended to disk at fire
time — the crash-dump discipline: evidence is persisted while the
server is still drowning, not after.

Events carry virtual-clock timestamps, so incident dumps are
byte-stable across runs at the same seed.  Disabled mode is
:class:`NullFlightRecorder` (:data:`NULL_FLIGHT_RECORDER`): recording
is a no-op and incident capture returns an empty dict.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from pathlib import Path
from typing import Callable, Optional, Union

#: default ring size — deep enough for the tail of a sustained burst
DEFAULT_CAPACITY = 512


class FlightEvent:
    """One structured server event in the ring."""

    __slots__ = ("time", "kind", "fields")

    def __init__(self, time: float, kind: str, fields: dict) -> None:
        self.time = time
        self.kind = kind
        self.fields = fields

    def as_record(self) -> dict:
        record = {"t": round(self.time, 6), "kind": self.kind}
        for key in sorted(self.fields):
            record[key] = self.fields[key]
        return record


class FlightRecorder:
    """Bounded ring of server events + incident snapshots on alert.

    Thread-safe (the ring lock is a leaf); eviction is implicit via the
    deque's ``maxlen``, so steady-state recording never allocates more
    than ``capacity`` events.
    """

    enabled = True

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        *,
        sink: Optional[Union[str, Path]] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.sink = Path(sink) if sink is not None else None
        self.dropped = 0
        self.recorded = 0
        self.incidents: list[dict] = []
        #: optional zero-arg callable snapshotting live request context
        #: (e.g. trace ids in flight / queued) merged into each incident
        self.context_provider: Optional[Callable[[], dict]] = None
        self._ring: deque[FlightEvent] = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def record(self, time: float, kind: str, **fields: object) -> None:
        """Append one event; the oldest falls off a full ring."""
        event = FlightEvent(time, kind, fields)
        with self._lock:
            if len(self._ring) == self.capacity:
                self.dropped += 1
            self._ring.append(event)
            self.recorded += 1

    def events(self) -> list[dict]:
        """The retained tail, oldest first, JSON-stable."""
        with self._lock:
            return [event.as_record() for event in self._ring]

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def incident(
        self,
        alert: dict,
        *,
        window: Optional[dict] = None,
        span: Optional[dict] = None,
    ) -> dict:
        """Snapshot the ring into an incident; append to the sink if set.

        ``alert`` is the firing alert's record (see
        :meth:`~repro.obs.slo.SLOAlert.as_record`), ``window`` the
        triggering window's per-window stats, and ``span`` whatever
        span context was open when the alert fired.
        """
        with self._lock:
            tail = [event.as_record() for event in self._ring]
            dropped = self.dropped
        record = {
            "incident": len(self.incidents) + 1,
            "alert": alert,
            "window": window if window is not None else {},
            "span": span if span is not None else {},
            "events": tail,
            "events_dropped": dropped,
        }
        if self.context_provider is not None:
            record["context"] = self.context_provider()
        self.incidents.append(record)
        if self.sink is not None:
            with self.sink.open("a", encoding="utf-8") as handle:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        return record

    def write_jsonl(self, path: Union[str, Path]) -> Path:
        """Write every captured incident as JSONL (one object per line)."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            for record in self.incidents:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        return path


class NullFlightRecorder:
    """The disabled recorder: nothing is kept, nothing is written."""

    enabled = False

    __slots__ = ()

    capacity = 0
    dropped = 0
    recorded = 0
    incidents: list = []
    sink = None

    def record(self, time: float, kind: str, **fields: object) -> None:
        pass

    def events(self) -> list:
        return []

    def __len__(self) -> int:
        return 0

    def incident(self, alert: dict, *, window=None, span=None) -> dict:
        return {}

    def write_jsonl(self, path):
        raise ValueError("the null flight recorder has nothing to write")


#: The shared disabled recorder every component defaults to.
NULL_FLIGHT_RECORDER = NullFlightRecorder()
