"""Thread-safe counters, gauges, and fixed-bucket histograms.

The metrics half of :mod:`repro.obs`: a :class:`MetricsRegistry` hands
out named instruments (optionally labelled) and can render everything it
holds as a flat snapshot dict or a Prometheus-style text dump.  All
instruments are safe for concurrent use — every mutation happens under
the instrument's own lock, and instrument locks are leaves (no code
path acquires another lock while holding one), so they can be bumped
from inside other components' critical sections without deadlock risk.

Disabled mode is :class:`NullMetrics`: its ``counter``/``gauge``/
``histogram`` return shared no-op singletons, so components can bind
instruments once at construction time and call ``.inc()`` on the hot
path without allocating or locking anything when observability is off.
"""

from __future__ import annotations

import bisect
import threading
from typing import Mapping, Optional, Sequence, Union

Number = Union[int, float]

#: Default histogram bucket upper bounds, in seconds — tuned for LLM
#: call latencies (milliseconds to a minute); +Inf is implicit.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count (int or float increments)."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self._value: Number = 0
        self._lock = threading.Lock()

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease by {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> Number:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down, with a high-water mark.

    The high-water mark (:attr:`max_value`) is what makes gauges useful
    for things like dispatcher in-flight occupancy: the instantaneous
    value is usually back to zero by the time anyone looks.
    """

    __slots__ = ("name", "labels", "_value", "_max", "_lock")

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self._value: Number = 0
        self._max: Number = 0
        self._lock = threading.Lock()

    def set(self, value: Number) -> None:
        with self._lock:
            self._value = value
            if value > self._max:
                self._max = value

    def inc(self, amount: Number = 1) -> None:
        with self._lock:
            self._value += amount
            if self._value > self._max:
                self._max = self._value

    def dec(self, amount: Number = 1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> Number:
        with self._lock:
            return self._value

    @property
    def max_value(self) -> Number:
        with self._lock:
            return self._max


class Histogram:
    """A fixed-bucket histogram (cumulative counts, Prometheus-style)."""

    __slots__ = ("name", "labels", "bounds", "_counts", "_sum", "_count", "_lock")

    def __init__(
        self,
        name: str,
        labels: LabelKey = (),
        bounds: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        if list(bounds) != sorted(bounds):
            raise ValueError(f"histogram bounds must be sorted, got {bounds}")
        self.name = name
        self.labels = labels
        self.bounds = tuple(bounds)
        self._counts = [0] * (len(self.bounds) + 1)  # last bucket is +Inf
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: Number) -> None:
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def snapshot(self) -> dict:
        """Bucket counts keyed by upper bound, plus sum and count."""
        with self._lock:
            buckets: dict[str, int] = {}
            cumulative = 0
            for bound, count in zip(self.bounds, self._counts):
                cumulative += count
                buckets[f"{bound:g}"] = cumulative
            buckets["+Inf"] = cumulative + self._counts[-1]
            return {"count": self._count, "sum": self._sum, "buckets": buckets}


class _NullInstrument:
    """Shared no-op stand-in for every instrument kind."""

    __slots__ = ()

    name = ""
    labels: LabelKey = ()
    value: Number = 0
    max_value: Number = 0
    count = 0
    sum = 0.0

    def inc(self, amount: Number = 1) -> None:
        pass

    def dec(self, amount: Number = 1) -> None:
        pass

    def set(self, value: Number) -> None:
        pass

    def observe(self, value: Number) -> None:
        pass

    def snapshot(self) -> dict:
        return {"count": 0, "sum": 0.0, "buckets": {}}


NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """The disabled registry: every instrument is the shared no-op."""

    enabled = False

    __slots__ = ()

    def counter(self, name: str, **labels: object) -> _NullInstrument:
        return NULL_INSTRUMENT

    def gauge(self, name: str, **labels: object) -> _NullInstrument:
        return NULL_INSTRUMENT

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None, **labels: object
    ) -> _NullInstrument:
        return NULL_INSTRUMENT

    def snapshot(self) -> dict:
        return {}

    def render_prometheus(self) -> str:
        return ""

    def value(self, name: str, **labels: object) -> Number:
        return 0


def _render_name(name: str) -> str:
    """``llm.cache.hits`` → ``llm_cache_hits`` (Prometheus identifier)."""
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    text = "".join(out)
    if text and text[0].isdigit():
        text = "_" + text
    return text


def _render_labels(labels: LabelKey) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{_render_name(k)}="{v}"' for k, v in labels)
    return "{" + inner + "}"


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_prometheus_labels(labels: LabelKey) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_render_name(k)}="{_escape_label_value(v)}"' for k, v in labels
    )
    return "{" + inner + "}"


class MetricsRegistry:
    """Get-or-create home for named instruments; thread-safe.

    The same ``(name, labels)`` always returns the same instrument; a
    name registered as one kind cannot be re-registered as another.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[tuple[str, LabelKey], object] = {}
        self._kinds: dict[str, str] = {}

    def _get(self, kind: str, name: str, labels: LabelKey, factory):
        with self._lock:
            registered = self._kinds.get(name)
            if registered is None:
                self._kinds[name] = kind
            elif registered != kind:
                raise ValueError(
                    f"metric {name!r} is a {registered}, not a {kind}"
                )
            key = (name, labels)
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = factory()
                self._instruments[key] = instrument
            return instrument

    def counter(self, name: str, **labels: object) -> Counter:
        key = _label_key(labels)
        return self._get("counter", name, key, lambda: Counter(name, key))

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = _label_key(labels)
        return self._get("gauge", name, key, lambda: Gauge(name, key))

    def histogram(
        self,
        name: str,
        bounds: Optional[Sequence[float]] = None,
        **labels: object,
    ) -> Histogram:
        key = _label_key(labels)
        chosen = bounds if bounds is not None else DEFAULT_BUCKETS
        return self._get(
            "histogram", name, key, lambda: Histogram(name, key, chosen)
        )

    def value(self, name: str, **labels: object) -> Number:
        """The current value of a counter/gauge, or 0 when absent."""
        key = (name, _label_key(labels))
        with self._lock:
            instrument = self._instruments.get(key)
        if instrument is None:
            return 0
        return instrument.value  # type: ignore[union-attr]

    def _sorted_items(self) -> list[tuple[tuple[str, LabelKey], object]]:
        with self._lock:
            return sorted(self._instruments.items(), key=lambda kv: kv[0])

    def snapshot(self) -> dict[str, object]:
        """A flat, deterministic name → value mapping.

        Counters and gauges flatten to numbers (gauges also emit a
        ``<name>.max`` high-water entry); histograms flatten to their
        bucket dict.  Labelled instruments render as ``name{k=v}``.
        """
        out: dict[str, object] = {}
        for (name, labels), instrument in self._sorted_items():
            suffix = _render_labels(labels)
            if isinstance(instrument, Counter):
                out[name + suffix] = instrument.value
            elif isinstance(instrument, Gauge):
                out[name + suffix] = instrument.value
                out[name + ".max" + suffix] = instrument.max_value
            else:
                assert isinstance(instrument, Histogram)
                out[name + suffix] = instrument.snapshot()
        return out

    def render_prometheus(self) -> str:
        """The registry as Prometheus text exposition format.

        Label values are escaped (``\\``, ``"``, and newlines) and the
        dump always ends with a newline, per the exposition format.
        """
        lines: list[str] = []
        seen_types: set[str] = set()
        for (name, labels), instrument in self._sorted_items():
            metric = _render_name(name)
            suffix = _render_prometheus_labels(labels)
            if isinstance(instrument, Counter):
                if metric not in seen_types:
                    lines.append(f"# TYPE {metric} counter")
                    seen_types.add(metric)
                lines.append(f"{metric}{suffix} {instrument.value}")
            elif isinstance(instrument, Gauge):
                if metric not in seen_types:
                    lines.append(f"# TYPE {metric} gauge")
                    lines.append(f"# TYPE {metric}_max gauge")
                    seen_types.add(metric)
                lines.append(f"{metric}{suffix} {instrument.value}")
                lines.append(f"{metric}_max{suffix} {instrument.max_value}")
            else:
                assert isinstance(instrument, Histogram)
                if metric not in seen_types:
                    lines.append(f"# TYPE {metric} histogram")
                    seen_types.add(metric)
                snap = instrument.snapshot()
                for bound, cumulative in snap["buckets"].items():
                    label_items = list(labels) + [("le", bound)]
                    rendered = _render_prometheus_labels(tuple(label_items))
                    lines.append(f"{metric}_bucket{rendered} {cumulative}")
                lines.append(f"{metric}_sum{suffix} {snap['sum']}")
                lines.append(f"{metric}_count{suffix} {snap['count']}")
        return "\n".join(lines) + "\n" if lines else "\n"
