"""Zero-dependency tracing + metrics for the hybrid-query pipelines.

The accounting story the paper tells — accuracy per token, per call,
per retry — needs per-stage visibility, not just end-of-run aggregates.
This package provides it without perturbing a single result byte:

- :mod:`repro.obs.trace` — hierarchical :class:`~repro.obs.trace.Span`
  trees from a :class:`~repro.obs.trace.Tracer`, timestamped by an
  injectable clock so traces are exactly reproducible under
  :class:`~repro.llm.parallel.SimulatedClock`.
- :mod:`repro.obs.metrics` — a thread-safe
  :class:`~repro.obs.metrics.MetricsRegistry` of counters, gauges, and
  fixed-bucket histograms.
- :mod:`repro.obs.export` — JSONL span logs, Chrome ``trace_event``
  JSON, Prometheus text, and per-stage console summaries.

Components receive a :class:`Telemetry` handle bundling one tracer and
one registry.  The default, :data:`NULL_TELEMETRY`, is fully disabled:
``telemetry.enabled`` is ``False``, spans are a shared no-op, and
instruments are shared no-ops — the hot path pays one attribute check,
no locks, no allocations.  Instrumented code follows two rules:

1. bind instruments once at construction time
   (``self._hits = telemetry.metrics.counter("llm.cache.hits")``);
2. guard span creation with ``telemetry.enabled`` so attribute dicts
   are never built when tracing is off::

       with (tel.tracer.span("stage", qid=qid) if tel.enabled
             else NULL_SPAN) as span:
           ...
"""

from __future__ import annotations

from typing import Optional

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
)
from repro.obs.ledger import (
    LEDGER_SCHEMA_VERSION,
    RunLedger,
    config_fingerprint,
)
from repro.obs.provenance import (
    NULL_PROVENANCE,
    CallProvenance,
    CellProvenance,
    NullProvenance,
    ProvenanceRecorder,
    call_id_for,
    resolve_provenance,
)
from repro.obs.trace import NULL_SPAN, NullTracer, Span, Tracer

_NULL_METRICS = NullMetrics()
_NULL_TRACER = NullTracer()


class Telemetry:
    """One tracer + one metrics registry, handed through the stack.

    ``enabled`` is precomputed so hot paths pay a single attribute
    read.  ``Telemetry()`` with no arguments is fully disabled (and
    :data:`NULL_TELEMETRY` is a shared instance of exactly that);
    :meth:`on` builds an enabled handle over an optional clock.
    """

    __slots__ = ("tracer", "metrics", "enabled")

    def __init__(self, tracer=None, metrics=None) -> None:
        self.tracer = tracer if tracer is not None else _NULL_TRACER
        self.metrics = metrics if metrics is not None else _NULL_METRICS
        self.enabled = bool(
            getattr(self.tracer, "enabled", True)
            or getattr(self.metrics, "enabled", True)
        )

    @classmethod
    def on(cls, clock=None) -> "Telemetry":
        """An enabled handle: fresh tracer (over ``clock``) + registry."""
        return cls(Tracer(clock), MetricsRegistry())


#: The shared disabled handle every component defaults to.
NULL_TELEMETRY = Telemetry()


def resolve(telemetry: Optional[Telemetry]) -> Telemetry:
    """``telemetry`` or the shared null handle (never None)."""
    return telemetry if telemetry is not None else NULL_TELEMETRY


__all__ = [
    "CallProvenance",
    "CellProvenance",
    "Counter",
    "Gauge",
    "Histogram",
    "LEDGER_SCHEMA_VERSION",
    "MetricsRegistry",
    "NullMetrics",
    "NullProvenance",
    "NullTracer",
    "NULL_PROVENANCE",
    "NULL_SPAN",
    "NULL_TELEMETRY",
    "ProvenanceRecorder",
    "RunLedger",
    "Span",
    "Telemetry",
    "Tracer",
    "call_id_for",
    "config_fingerprint",
    "resolve",
    "resolve_provenance",
]
