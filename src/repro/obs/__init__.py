"""Zero-dependency tracing + metrics for the hybrid-query pipelines.

The accounting story the paper tells — accuracy per token, per call,
per retry — needs per-stage visibility, not just end-of-run aggregates.
This package provides it without perturbing a single result byte:

- :mod:`repro.obs.trace` — hierarchical :class:`~repro.obs.trace.Span`
  trees from a :class:`~repro.obs.trace.Tracer`, timestamped by an
  injectable clock so traces are exactly reproducible under
  :class:`~repro.llm.parallel.SimulatedClock`.
- :mod:`repro.obs.metrics` — a thread-safe
  :class:`~repro.obs.metrics.MetricsRegistry` of counters, gauges, and
  fixed-bucket histograms.
- :mod:`repro.obs.export` — JSONL span logs, Chrome ``trace_event``
  JSON, Prometheus text, and per-stage console summaries.
- :mod:`repro.obs.timeseries` — a
  :class:`~repro.obs.timeseries.WindowedAggregator` rolling events into
  fixed virtual-time windows (rates, per-window percentiles) with
  bounded ring retention.
- :mod:`repro.obs.slo` — declarative SLOs with error-budget accounting
  and multi-window burn-rate alerts.
- :mod:`repro.obs.flightrec` — a bounded
  :class:`~repro.obs.flightrec.FlightRecorder` ring of server events,
  snapshotted to JSONL incidents when an alert fires.

Components receive a :class:`Telemetry` handle bundling one tracer and
one registry.  The default, :data:`NULL_TELEMETRY`, is fully disabled:
``telemetry.enabled`` is ``False``, spans are a shared no-op, and
instruments are shared no-ops — the hot path pays one attribute check,
no locks, no allocations.  Instrumented code follows two rules:

1. bind instruments once at construction time
   (``self._hits = telemetry.metrics.counter("llm.cache.hits")``);
2. guard span creation with ``telemetry.enabled`` so attribute dicts
   are never built when tracing is off::

       with (tel.tracer.span("stage", qid=qid) if tel.enabled
             else NULL_SPAN) as span:
           ...
"""

from __future__ import annotations

from typing import Optional

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
)
from repro.obs.ledger import (
    LEDGER_SCHEMA_VERSION,
    RunLedger,
    config_fingerprint,
)
from repro.obs.provenance import (
    NULL_PROVENANCE,
    CallProvenance,
    CellProvenance,
    NullProvenance,
    ProvenanceRecorder,
    call_id_for,
    resolve_provenance,
)
from repro.obs.flightrec import (
    NULL_FLIGHT_RECORDER,
    FlightEvent,
    FlightRecorder,
    NullFlightRecorder,
)
from repro.obs.sampler import (
    KEEP_HASH,
    KEEP_OUTCOME,
    KEEP_SLOWEST,
    TailSampler,
)
from repro.obs.timeseries import (
    NULL_TIMESERIES,
    NullWindowedAggregator,
    WindowedAggregator,
    WindowRow,
)
from repro.obs.trace import NULL_SPAN, NullTracer, Span, Tracer

_NULL_METRICS = NullMetrics()
_NULL_TRACER = NullTracer()


class Telemetry:
    """Tracer + metrics + windowed time series + flight recorder.

    One handle handed through the stack.  ``enabled`` is precomputed so
    hot paths pay a single attribute read.  ``Telemetry()`` with no
    arguments is fully disabled (and :data:`NULL_TELEMETRY` is a shared
    instance of exactly that); :meth:`on` builds an enabled handle over
    an optional clock.  ``timeseries`` and ``flight`` default to the
    shared no-ops, so only callers that want time-resolved serving
    telemetry (the serving benches and the ``dash`` target) pay for it.
    """

    __slots__ = ("tracer", "metrics", "timeseries", "flight", "enabled")

    def __init__(
        self, tracer=None, metrics=None, timeseries=None, flight=None
    ) -> None:
        self.tracer = tracer if tracer is not None else _NULL_TRACER
        self.metrics = metrics if metrics is not None else _NULL_METRICS
        self.timeseries = (
            timeseries if timeseries is not None else NULL_TIMESERIES
        )
        self.flight = flight if flight is not None else NULL_FLIGHT_RECORDER
        self.enabled = bool(
            getattr(self.tracer, "enabled", True)
            or getattr(self.metrics, "enabled", True)
            or getattr(self.timeseries, "enabled", True)
            or getattr(self.flight, "enabled", True)
        )

    @classmethod
    def on(cls, clock=None) -> "Telemetry":
        """An enabled handle: fresh tracer (over ``clock``) + registry."""
        return cls(Tracer(clock), MetricsRegistry())


#: The shared disabled handle every component defaults to.
NULL_TELEMETRY = Telemetry()


def resolve(telemetry: Optional[Telemetry]) -> Telemetry:
    """``telemetry`` or the shared null handle (never None)."""
    return telemetry if telemetry is not None else NULL_TELEMETRY


__all__ = [
    "CallProvenance",
    "CellProvenance",
    "Counter",
    "FlightEvent",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "KEEP_HASH",
    "KEEP_OUTCOME",
    "KEEP_SLOWEST",
    "LEDGER_SCHEMA_VERSION",
    "MetricsRegistry",
    "NullFlightRecorder",
    "NullMetrics",
    "NullProvenance",
    "NullTracer",
    "NullWindowedAggregator",
    "NULL_FLIGHT_RECORDER",
    "NULL_PROVENANCE",
    "NULL_SPAN",
    "NULL_TELEMETRY",
    "NULL_TIMESERIES",
    "ProvenanceRecorder",
    "RunLedger",
    "Span",
    "TailSampler",
    "Telemetry",
    "Tracer",
    "WindowedAggregator",
    "WindowRow",
    "call_id_for",
    "config_fingerprint",
    "resolve",
    "resolve_provenance",
]
