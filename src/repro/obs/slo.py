"""Declarative SLOs with error budgets and burn-rate alerts.

An :class:`SLO` states an objective over a stream of good/bad events —
"99% of offered requests get an answer" (availability), "95% of
answered requests land under 20 virtual seconds" (latency).  The
:class:`SLOTracker` consumes the serving layer's outcome stream on the
virtual clock, buckets it into the same fixed windows as
:class:`~repro.obs.timeseries.WindowedAggregator`, and accounts the
**error budget**: with objective ``o``, a fraction ``1 - o`` of events
may be bad before the SLO is violated, and

    burn rate = (bad fraction over a lookback) / (1 - o)

is how many times faster than "exactly on budget" the service is
spending it.  Alerting follows the Google-SRE multi-window pattern:

- a **fast** burn alert fires when the burn rate over a short lookback
  (``fast_windows`` windows) reaches ``fast_burn`` — the "page now"
  signal for sudden overload;
- a **slow** burn alert fires when the burn rate over a long lookback
  (``slow_windows``) reaches ``slow_burn`` — the "budget will not last
  the period" signal for sustained degradation.

Alerts are *edge-triggered* typed events (:class:`SLOAlert`): one fires
when a severity's condition becomes true at a window close, and the
condition must clear before that severity can fire again.  Everything
is evaluated at deterministic window boundaries on the virtual clock,
so the alert timeline is byte-stable across runs at the same seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.obs.timeseries import DEFAULT_WINDOW_SECONDS

#: event classifications an SLO can be defined over
AVAILABILITY = "availability"
LATENCY = "latency"

FAST = "fast"
SLOW = "slow"


@dataclass(frozen=True)
class SLO:
    """One declarative objective over the serving outcome stream.

    ``kind`` picks the event classification the server applies:
    ``availability`` counts an offered request good when it was answered
    (served or degraded — a refusal is the bad event); ``latency``
    counts an answered request good when its end-to-end latency is at
    most ``latency_target`` virtual seconds.
    """

    name: str
    kind: str
    objective: float
    latency_target: Optional[float] = None
    fast_burn: float = 10.0
    slow_burn: float = 2.0
    fast_windows: int = 2
    slow_windows: int = 8

    def __post_init__(self) -> None:
        if self.kind not in (AVAILABILITY, LATENCY):
            raise ValueError(
                f"kind must be '{AVAILABILITY}' or '{LATENCY}', got {self.kind!r}"
            )
        if not 0.0 < self.objective < 1.0:
            raise ValueError(
                f"objective must be in (0, 1), got {self.objective}"
            )
        if self.kind == LATENCY and (
            self.latency_target is None or self.latency_target <= 0
        ):
            raise ValueError(
                "latency SLOs need latency_target > 0, got "
                f"{self.latency_target}"
            )
        if self.fast_burn <= 0 or self.slow_burn <= 0:
            raise ValueError("burn thresholds must be > 0")
        if self.fast_windows < 1 or self.slow_windows < 1:
            raise ValueError("alert lookbacks must be >= 1 window")
        if self.fast_windows > self.slow_windows:
            raise ValueError(
                f"fast lookback ({self.fast_windows}) must not exceed "
                f"slow lookback ({self.slow_windows})"
            )

    @property
    def error_budget(self) -> float:
        """The bad-event fraction the objective tolerates (1 - objective)."""
        return 1.0 - self.objective

    def as_record(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "objective": round(self.objective, 6),
            "latency_target": (
                round(self.latency_target, 6)
                if self.latency_target is not None
                else None
            ),
            "fast_burn": round(self.fast_burn, 6),
            "slow_burn": round(self.slow_burn, 6),
            "fast_windows": self.fast_windows,
            "slow_windows": self.slow_windows,
        }


@dataclass(frozen=True)
class SLOAlert:
    """One burn-rate alert, fired at a window close on the virtual clock."""

    slo: str
    severity: str  # FAST or SLOW
    time: float  # the window-close instant that tripped it
    window: int  # the last (triggering) window of the lookback
    burn_rate: float
    lookback_windows: int
    bad: int
    total: int
    budget_consumed: float  # cumulative at fire time
    #: trace id of a bad event inside the lookback — the budget burner
    exemplar: Optional[str] = None

    def as_record(self) -> dict:
        record = {
            "slo": self.slo,
            "severity": self.severity,
            "time": round(self.time, 6),
            "window": self.window,
            "burn_rate": round(self.burn_rate, 6),
            "lookback_windows": self.lookback_windows,
            "bad": self.bad,
            "total": self.total,
            "budget_consumed": round(self.budget_consumed, 6),
        }
        if self.exemplar is not None:
            record["exemplar"] = self.exemplar
        return record


class _SloState:
    """Tracker-internal per-SLO accounting."""

    __slots__ = ("slo", "windows", "good", "bad", "active", "exemplars")

    def __init__(self, slo: SLO) -> None:
        self.slo = slo
        #: window index → [good, bad]
        self.windows: dict[int, list[int]] = {}
        self.good = 0
        self.bad = 0
        self.active = {FAST: False, SLOW: False}
        #: window index → trace id of the window's first bad event
        self.exemplars: dict[int, str] = {}

    @property
    def total(self) -> int:
        return self.good + self.bad

    def budget_consumed(self) -> float:
        """Fraction of the error budget spent so far (can exceed 1)."""
        if self.total == 0:
            return 0.0
        bad_fraction = self.bad / self.total
        return bad_fraction / self.slo.error_budget

    def burn_rate(self, last_window: int, lookback: int) -> tuple[float, int, int]:
        """(burn, bad, total) over ``lookback`` windows ending at ``last_window``."""
        good = bad = 0
        for index in range(last_window - lookback + 1, last_window + 1):
            counts = self.windows.get(index)
            if counts is not None:
                good += counts[0]
                bad += counts[1]
        total = good + bad
        if total == 0:
            return 0.0, 0, 0
        return (bad / total) / self.slo.error_budget, bad, total

    def as_record(self) -> dict:
        return {
            "objective": round(self.slo.objective, 6),
            "good": self.good,
            "bad": self.bad,
            "bad_fraction": (
                round(self.bad / self.total, 6) if self.total else 0.0
            ),
            "budget_consumed": round(self.budget_consumed(), 6),
            "budget_remaining": round(max(0.0, 1.0 - self.budget_consumed()), 6),
        }


class SLOTracker:
    """Window the good/bad stream of several SLOs and fire burn alerts.

    Feed events in non-decreasing virtual time (the serving event loop
    already emits outcomes that way).  A window is *closed* — and its
    alert conditions evaluated — the moment a later window receives its
    first event, or when :meth:`finalize` seals the run.
    """

    def __init__(
        self,
        slos: Sequence[SLO],
        *,
        window_seconds: float = DEFAULT_WINDOW_SECONDS,
        on_alert: Optional[Callable[[SLOAlert], None]] = None,
    ) -> None:
        if not slos:
            raise ValueError("at least one SLO is required")
        names = [slo.name for slo in slos]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO names: {names}")
        if window_seconds <= 0:
            raise ValueError(
                f"window_seconds must be > 0, got {window_seconds}"
            )
        self.slos = tuple(slos)
        self.window_seconds = float(window_seconds)
        self.on_alert = on_alert
        self.alerts: list[SLOAlert] = []
        self._states = {slo.name: _SloState(slo) for slo in self.slos}
        self._frontier: Optional[int] = None  # newest window with events

    def __iter__(self):
        return iter(self.slos)

    def window_index(self, t: float) -> int:
        return math.floor(t / self.window_seconds)

    # -- recording -----------------------------------------------------------------

    def record(
        self,
        name: str,
        t: float,
        good: bool,
        *,
        exemplar: Optional[str] = None,
    ) -> None:
        """One good/bad event for SLO ``name`` at virtual instant ``t``.

        ``exemplar`` names the trace behind a *bad* event; each window
        keeps its first bad exemplar, and an alert firing over that
        window carries it — the alert names a trace that burned budget.
        """
        state = self._states.get(name)
        if state is None:
            raise KeyError(f"unknown SLO {name!r}")
        index = self.window_index(t)
        if self._frontier is None:
            self._frontier = index
        elif index > self._frontier:
            # the frontier window(s) just closed: evaluate their alerts
            self._close_through(index - 1)
            self._frontier = index
        counts = state.windows.get(index)
        if counts is None:
            counts = [0, 0]
            state.windows[index] = counts
        counts[0 if good else 1] += 1
        if good:
            state.good += 1
        else:
            state.bad += 1
            if exemplar is not None and index not in state.exemplars:
                state.exemplars[index] = exemplar

    def finalize(self, t_end: Optional[float] = None) -> None:
        """Seal the run: close every open window up to ``t_end``."""
        if self._frontier is None:
            return
        last = self._frontier
        if t_end is not None:
            last = max(last, self.window_index(t_end))
        self._close_through(last)
        self._frontier = last + 1

    # -- alert evaluation ----------------------------------------------------------

    def _close_through(self, last: int) -> None:
        assert self._frontier is not None
        for index in range(self._frontier, last + 1):
            for slo in self.slos:
                self._evaluate(self._states[slo.name], index)

    def _evaluate(self, state: _SloState, closed: int) -> None:
        slo = state.slo
        for severity, lookback, threshold in (
            (FAST, slo.fast_windows, slo.fast_burn),
            (SLOW, slo.slow_windows, slo.slow_burn),
        ):
            burn, bad, total = state.burn_rate(closed, lookback)
            firing = burn >= threshold - 1e-9
            if firing and not state.active[severity]:
                exemplar = None
                for index in range(closed, closed - lookback, -1):
                    if index in state.exemplars:
                        exemplar = state.exemplars[index]
                        break
                alert = SLOAlert(
                    slo=slo.name,
                    severity=severity,
                    time=(closed + 1) * self.window_seconds,
                    window=closed,
                    burn_rate=burn,
                    lookback_windows=lookback,
                    bad=bad,
                    total=total,
                    budget_consumed=state.budget_consumed(),
                    exemplar=exemplar,
                )
                self.alerts.append(alert)
                if self.on_alert is not None:
                    self.on_alert(alert)
            state.active[severity] = firing

    # -- reading -------------------------------------------------------------------

    def budget(self, name: str) -> dict:
        """Error-budget accounting for one SLO, JSON-stable."""
        state = self._states.get(name)
        if state is None:
            raise KeyError(f"unknown SLO {name!r}")
        return state.as_record()

    def budgets(self) -> dict[str, dict]:
        return {slo.name: self.budget(slo.name) for slo in self.slos}

    def alert_timeline(self) -> list[dict]:
        """Every alert fired so far, in firing order, JSON-stable."""
        return [alert.as_record() for alert in self.alerts]


#: thresholds tuned for the serving sweep's 5 s windows / 120 s horizon
def default_serving_slos(
    *,
    availability_objective: float = 0.99,
    latency_objective: float = 0.95,
    latency_target: float = 20.0,
) -> tuple[SLO, SLO]:
    """The two SLOs the query server is judged by.

    Availability: 99% of offered requests get an answer (a shed or
    queue-expired request is the bad event).  Latency: 95% of answered
    requests land within ``latency_target`` virtual seconds.
    """
    return (
        SLO(
            name="availability",
            kind=AVAILABILITY,
            objective=availability_objective,
            fast_burn=10.0,
            slow_burn=2.0,
            fast_windows=2,
            slow_windows=8,
        ),
        SLO(
            name="latency",
            kind=LATENCY,
            objective=latency_objective,
            latency_target=latency_target,
            fast_burn=8.0,
            slow_burn=2.0,
            fast_windows=2,
            slow_windows=8,
        ),
    )
