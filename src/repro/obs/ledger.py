"""A persistent run ledger: every harness run, appended to SQLite.

The paper's tables are point-in-time snapshots; a growing reproduction
needs the *history* — what EX, token bill, and virtual makespan each
configuration produced on each run — so a regression (an accuracy drop,
a token blow-up, a scheduling slowdown) is caught by diffing the ledger
instead of by eyeballing BENCH JSON files.

Design, mirroring :class:`~repro.llm.diskcache.PersistentPromptCache`:

- **corruption tolerance** — a ledger file SQLite refuses to open is
  discarded and recreated (``recovered`` records that it happened); the
  ledger is an accelerator for regression detection, never a dependency.
- **versioned schema** — a ``meta`` table carries
  :data:`LEDGER_SCHEMA_VERSION`; opening a ledger written by another
  generation wipes the rows and stamps the new version, so readers never
  parse rows with a stale shape.
- **config fingerprints** — each run is stamped with a SHA-256 of its
  canonical configuration JSON, so "the same configuration" is an exact
  equality test, not a guess from CLI flags.
- **scalars + payload** — the regression-gated scalars (EX, F1, calls,
  tokens, makespan) live in typed columns; everything else (stage
  timings, counter snapshots, provenance stats) rides in one JSON
  payload column, so new diagnostics never need a schema bump.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import threading
from pathlib import Path
from typing import Optional, Union

#: Bump when the row shape changes; old ledgers are wiped on open.
LEDGER_SCHEMA_VERSION = 1


def config_fingerprint(config: dict) -> str:
    """A stable 12-hex fingerprint of one run configuration.

    Canonical JSON (sorted keys, no whitespace variance) makes the
    fingerprint independent of dict ordering and run context.
    """
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


class RunLedger:
    """An append-only SQLite ledger of harness runs.

    Thread-safe: one connection guarded by one lock, like the persistent
    prompt cache.  Usable as a context manager.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        #: True when a corrupt ledger file was discarded during open.
        self.recovered = False
        #: True when a previous-generation ledger was wiped on open.
        self.wiped = False
        self.appends = 0
        self._lock = threading.Lock()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = self._open()

    # -- lifecycle -----------------------------------------------------------

    def _open(self) -> sqlite3.Connection:
        """Open (or recreate) the ledger file, tolerating corruption."""
        try:
            return self._connect()
        except sqlite3.Error:
            # history that cannot be read is worth less than no history:
            # discard it and start a fresh ledger rather than fail the run
            self.recovered = True
            self.path.unlink(missing_ok=True)
            return self._connect()

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self.path, check_same_thread=False)
        try:
            conn.execute(
                "CREATE TABLE IF NOT EXISTS runs ("
                "  id INTEGER PRIMARY KEY AUTOINCREMENT,"
                "  label TEXT NOT NULL,"
                "  pipeline TEXT NOT NULL,"
                "  fingerprint TEXT NOT NULL,"
                "  ex REAL,"
                "  f1 REAL,"
                "  llm_calls INTEGER NOT NULL DEFAULT 0,"
                "  input_tokens INTEGER NOT NULL DEFAULT 0,"
                "  output_tokens INTEGER NOT NULL DEFAULT 0,"
                "  makespan REAL,"
                "  payload TEXT NOT NULL"
                ")"
            )
            conn.execute(
                "CREATE TABLE IF NOT EXISTS meta (version INTEGER NOT NULL)"
            )
            row = conn.execute("SELECT version FROM meta").fetchone()
            if row is None:
                conn.execute(
                    "INSERT INTO meta (version) VALUES (?)",
                    (LEDGER_SCHEMA_VERSION,),
                )
            elif row[0] != LEDGER_SCHEMA_VERSION:
                # stale generation: wipe the rows, keep the file
                conn.execute("DELETE FROM runs")
                conn.execute(
                    "UPDATE meta SET version = ?", (LEDGER_SCHEMA_VERSION,)
                )
                self.wiped = True
            conn.commit()
        except sqlite3.Error:
            conn.close()
            raise
        return conn

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- writing -------------------------------------------------------------

    def append(
        self,
        *,
        label: str,
        pipeline: str,
        config: Optional[dict] = None,
        ex: Optional[float] = None,
        f1: Optional[float] = None,
        llm_calls: int = 0,
        input_tokens: int = 0,
        output_tokens: int = 0,
        makespan: Optional[float] = None,
        payload: Optional[dict] = None,
    ) -> int:
        """Append one run; returns its ledger id (monotonic per file)."""
        config = config if config is not None else {}
        record = dict(payload) if payload else {}
        record["config"] = config
        with self._lock:
            cursor = self._conn.execute(
                "INSERT INTO runs (label, pipeline, fingerprint, ex, f1,"
                " llm_calls, input_tokens, output_tokens, makespan, payload)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    label,
                    pipeline,
                    config_fingerprint(config),
                    ex,
                    f1,
                    llm_calls,
                    input_tokens,
                    output_tokens,
                    makespan,
                    json.dumps(record, sort_keys=True),
                ),
            )
            self._conn.commit()
            self.appends += 1
            return int(cursor.lastrowid)

    # -- reading -------------------------------------------------------------

    _COLUMNS = (
        "id", "label", "pipeline", "fingerprint", "ex", "f1",
        "llm_calls", "input_tokens", "output_tokens", "makespan", "payload",
    )

    def _row_to_record(self, row: tuple) -> dict:
        record = dict(zip(self._COLUMNS, row))
        record["payload"] = json.loads(record["payload"])
        return record

    def runs(
        self,
        *,
        label: Optional[str] = None,
        pipeline: Optional[str] = None,
        fingerprint: Optional[str] = None,
    ) -> list[dict]:
        """Matching runs in append order (oldest first)."""
        sql = f"SELECT {', '.join(self._COLUMNS)} FROM runs"
        clauses, params = [], []
        for column, value in (
            ("label", label), ("pipeline", pipeline), ("fingerprint", fingerprint)
        ):
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY id ASC"
        with self._lock:
            rows = self._conn.execute(sql, params).fetchall()
        return [self._row_to_record(row) for row in rows]

    def latest(
        self,
        *,
        label: Optional[str] = None,
        pipeline: Optional[str] = None,
        fingerprint: Optional[str] = None,
    ) -> Optional[dict]:
        """The most recently appended matching run, or None."""
        matching = self.runs(
            label=label, pipeline=pipeline, fingerprint=fingerprint
        )
        return matching[-1] if matching else None

    def __len__(self) -> int:
        with self._lock:
            row = self._conn.execute("SELECT COUNT(*) FROM runs").fetchone()
            return int(row[0])

    def stats(self) -> dict:
        """A flat snapshot for reports and BENCH JSON."""
        return {
            "runs": len(self),
            "appends": self.appends,
            "recovered": self.recovered,
            "wiped": self.wiped,
        }
