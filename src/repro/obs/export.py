"""Exporters for recorded spans and metrics.

Four output shapes, all zero-dependency:

- :func:`write_spans_jsonl` — one JSON object per span, streamable.
- :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome
  ``trace_event`` format (complete ``"X"`` events), loadable in
  ``chrome://tracing`` or https://ui.perfetto.dev.
- :func:`stage_summary` / :func:`format_stage_summary` — per-stage
  self-time and token attribution, as records or an aligned console
  table.  Self-time decomposition is exhaustive: every recorded second
  lands in exactly one stage, and whatever escapes (overlapping
  parallel children) shows up as an explicit ``(unaccounted)`` row
  rather than silently disappearing.
- Prometheus text comes from
  :meth:`~repro.obs.metrics.MetricsRegistry.render_prometheus`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence, Union

from repro.obs.trace import Span


def spans_to_records(spans: Iterable[Span]) -> list[dict]:
    """Flatten spans (parent links intact) into JSON-ready dicts."""
    records = []
    for span in spans:
        records.append(
            {
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "name": span.name,
                "start": span.start,
                "end": span.end,
                "duration": span.duration,
                "lane": span.lane,
                "attributes": dict(span.attributes),
            }
        )
    return records


def write_spans_jsonl(spans: Iterable[Span], path: Union[str, Path]) -> Path:
    """Write one span per line; returns the path."""
    target = Path(path)
    lines = [json.dumps(record, default=str) for record in spans_to_records(spans)]
    target.write_text("\n".join(lines) + ("\n" if lines else ""))
    return target


# -- Chrome trace_event ------------------------------------------------------------


def chrome_trace(spans: Iterable[Span], *, process_name: str = "repro") -> dict:
    """Spans as a Chrome ``trace_event`` payload (complete events).

    Timestamps are microseconds (the format's unit); each tracer lane
    becomes a ``tid`` so concurrent spans get their own tracks.
    """
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for span in spans:
        events.append(
            {
                "name": span.name,
                "cat": "repro",
                "ph": "X",
                "ts": round(span.start * 1e6, 3),
                "dur": round(span.duration * 1e6, 3),
                "pid": 1,
                "tid": span.lane + 1,
                "args": {str(k): _jsonable(v) for k, v in span.attributes.items()},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    spans: Iterable[Span], path: Union[str, Path], *, process_name: str = "repro"
) -> Path:
    target = Path(path)
    target.write_text(
        json.dumps(chrome_trace(spans, process_name=process_name), indent=2) + "\n"
    )
    return target


def _jsonable(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


# -- per-stage summary -------------------------------------------------------------

#: Span attributes summed into the stage table when present.
_TOKEN_ATTRS = ("input_tokens", "output_tokens")


def stage_summary(roots: Sequence[Span]) -> list[dict]:
    """Aggregate a span forest into per-stage (per span name) records.

    ``self_s`` is the time spent in spans of that name *excluding* their
    children, so the column sums to the total recorded time; ``share``
    is that sum as a fraction of the forest's root time.  Token counts
    come from ``input_tokens``/``output_tokens`` span attributes.
    """
    total = sum(root.duration for root in roots)
    stages: dict[str, dict] = {}
    attributed = 0.0
    for root in roots:
        for span in root.walk():
            record = stages.setdefault(
                span.name,
                {
                    "stage": span.name,
                    "spans": 0,
                    "total_s": 0.0,
                    "self_s": 0.0,
                    "input_tokens": 0,
                    "output_tokens": 0,
                },
            )
            record["spans"] += 1
            record["total_s"] += span.duration
            own = span.self_time()
            record["self_s"] += own
            attributed += own
            for attr in _TOKEN_ATTRS:
                value = span.attributes.get(attr)
                if isinstance(value, (int, float)):
                    record[attr] += int(value)
    records = sorted(
        stages.values(), key=lambda r: (-r["self_s"], r["stage"])
    )
    unaccounted = max(0.0, total - attributed)
    if total and unaccounted / total > 1e-9:
        records.append(
            {
                "stage": "(unaccounted)",
                "spans": 0,
                "total_s": unaccounted,
                "self_s": unaccounted,
                "input_tokens": 0,
                "output_tokens": 0,
            }
        )
    for record in records:
        record["share"] = (record["self_s"] / total) if total else 0.0
        record["total_s"] = round(record["total_s"], 6)
        record["self_s"] = round(record["self_s"], 6)
        record["share"] = round(record["share"], 6)
    return records


def format_stage_summary(records: Sequence[dict], *, title: str = "") -> str:
    """Render :func:`stage_summary` records as an aligned console table."""
    from repro.eval.report import format_table, percent

    rows = [
        [
            record["stage"],
            record["spans"],
            f"{record['self_s']:.3f} s",
            percent(record["share"]),
            record["input_tokens"],
            record["output_tokens"],
        ]
        for record in records
    ]
    return format_table(
        ["Stage", "Spans", "Self time", "Share", "Input tok", "Output tok"],
        rows,
        title=title,
    )
