"""Fixed-interval windowed aggregation over the virtual clock.

Point-in-time counters (:mod:`repro.obs.metrics`) answer "how many in
total"; serving questions are *time-resolved* — "what was p99 during
the burst", "how many requests did tenant B shed in the 30s before the
breaker opened".  The :class:`WindowedAggregator` rolls events into
fixed-interval windows with deterministic boundaries::

    window(t) = floor(t / window_seconds)

Windows are half-open ``[k*w, (k+1)*w)``: an event exactly on a
boundary belongs to the window it *starts*, never the one it ends, so
two runs of the same virtual-time trace always bucket identically.

Two event kinds share the machinery:

- :meth:`WindowedAggregator.record` — counter-style events (arrival,
  shed, tokens spent): each window accumulates count and sum, and
  renders a per-second *rate*;
- :meth:`WindowedAggregator.observe` — sample-style events (latency,
  queue depth): each window keeps its samples and renders
  min/max/mean and nearest-rank p50/p95/p99.

Retention is a bounded ring: the aggregator keeps at most ``retention``
windows ending at the newest window seen; older windows are evicted on
insert.  :meth:`rows` zero-fills gaps inside the retained span, so an
idle window renders as an explicit zero-rate row, not a hole in the
timeline.

Disabled mode is :class:`NullWindowedAggregator` (shared as
:data:`NULL_TIMESERIES`): every method is a no-op, so instrumented code
pays one attribute check when windowed telemetry is off.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Iterator, Mapping, Optional, Union

Number = Union[int, float]

LabelKey = tuple[tuple[str, str], ...]

#: default window width (virtual seconds) for serving telemetry
DEFAULT_WINDOW_SECONDS = 5.0
#: default ring size — enough for a 2-minute horizon at 5 s windows
DEFAULT_RETENTION = 64


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def render_series(name: str, labels: LabelKey) -> str:
    """``serve.shed`` + ``(("reason","queue_full"),)`` → ``serve.shed{reason=queue_full}``."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class _Bucket:
    """One (series, window) accumulator."""

    __slots__ = ("count", "sum", "samples", "exemplar", "exemplar_value")

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.samples: Optional[list[float]] = None
        #: trace id of the window's largest exemplared sample
        self.exemplar: Optional[str] = None
        self.exemplar_value = 0.0

    def add(self, value: float) -> None:
        self.count += 1
        self.sum += value

    def sample(self, value: float, exemplar: Optional[str] = None) -> None:
        """Add a value and keep it for percentile computation."""
        self.count += 1
        self.sum += value
        if self.samples is None:
            self.samples = []
        self.samples.append(value)
        if exemplar is not None and (
            self.exemplar is None or value > self.exemplar_value
        ):
            # first-max wins: deterministic under the serving loop's
            # recording order, and ties (deadline-clamped latencies)
            # keep the earliest offender
            self.exemplar = exemplar
            self.exemplar_value = value


def percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile of a *sorted* sample list; 0.0 when empty."""
    if not samples:
        return 0.0
    rank = max(1, math.ceil(q * len(samples)))
    return samples[min(rank, len(samples)) - 1]


@dataclass(frozen=True)
class WindowRow:
    """One window of one series, zero-filled when the window was idle."""

    window: int
    start: float
    count: int
    sum: float
    rate: float
    min: float = 0.0
    max: float = 0.0
    mean: float = 0.0
    p50: float = 0.0
    p95: float = 0.0
    p99: float = 0.0
    #: trace id of the window's max-value sample, when one was offered
    exemplar: Optional[str] = None

    def as_record(self) -> dict:
        record = {
            "window": self.window,
            "start": round(self.start, 6),
            "count": self.count,
            "sum": round(self.sum, 6),
            "rate": round(self.rate, 6),
            "min": round(self.min, 6),
            "max": round(self.max, 6),
            "mean": round(self.mean, 6),
            "p50": round(self.p50, 6),
            "p95": round(self.p95, 6),
            "p99": round(self.p99, 6),
        }
        if self.exemplar is not None:
            record["exemplar"] = self.exemplar
        return record


class WindowedAggregator:
    """Roll events into fixed windows with bounded ring retention.

    Thread-safe: LLM retry events arrive from dispatcher worker threads
    while the serving loop records outcomes.  The aggregator's lock is a
    leaf (no code path acquires another lock while holding it), and the
    aggregation itself is order-insensitive — counts and sums commute,
    and samples are sorted before percentiles — so concurrent recording
    of the same virtual-time trace always renders identical windows.
    """

    enabled = True

    def __init__(
        self,
        window_seconds: float = DEFAULT_WINDOW_SECONDS,
        retention: int = DEFAULT_RETENTION,
    ) -> None:
        if window_seconds <= 0:
            raise ValueError(
                f"window_seconds must be > 0, got {window_seconds}"
            )
        if retention < 1:
            raise ValueError(f"retention must be >= 1, got {retention}")
        self.window_seconds = float(window_seconds)
        self.retention = retention
        self._lock = threading.Lock()
        self._series: dict[tuple[str, LabelKey], dict[int, _Bucket]] = {}
        self._min_window: Optional[int] = None
        self._max_window: Optional[int] = None

    # -- recording -----------------------------------------------------------------

    def window_index(self, t: float) -> int:
        """The window holding instant ``t`` (half-open [k*w, (k+1)*w))."""
        return math.floor(t / self.window_seconds)

    def window_start(self, index: int) -> float:
        return index * self.window_seconds

    def _bucket(
        self, name: str, t: float, labels: Mapping[str, object]
    ) -> Optional[_Bucket]:
        # caller holds the lock
        index = self.window_index(t)
        if (
            self._max_window is not None
            and index <= self._max_window - self.retention
        ):
            return None  # older than the ring: already evicted, stays out
        key = (name, _label_key(labels) if labels else ())
        windows = self._series.get(key)
        if windows is None:
            windows = {}
            self._series[key] = windows
        if self._min_window is None or index < self._min_window:
            self._min_window = index
        if self._max_window is None or index > self._max_window:
            self._max_window = index
            self._evict()
        bucket = windows.get(index)
        if bucket is None:
            bucket = _Bucket()
            windows[index] = bucket
        return bucket

    def _evict(self) -> None:
        """Drop windows older than the retained ring (all series)."""
        assert self._max_window is not None
        floor_index = self._max_window - self.retention + 1
        if self._min_window is not None and self._min_window >= floor_index:
            return
        for windows in self._series.values():
            stale = [w for w in windows if w < floor_index]
            for w in stale:
                del windows[w]
        self._min_window = max(
            self._min_window if self._min_window is not None else floor_index,
            floor_index,
        )

    def record(
        self, name: str, t: float, value: Number = 1, **labels: object
    ) -> None:
        """A counter-style event: ``value`` accrues to ``t``'s window."""
        with self._lock:
            bucket = self._bucket(name, t, labels)
            if bucket is not None:
                bucket.add(float(value))

    def observe(
        self,
        name: str,
        t: float,
        value: Number,
        *,
        exemplar: Optional[str] = None,
        **labels: object,
    ) -> None:
        """A sample-style event: kept for per-window percentiles.

        ``exemplar`` names a trace id to attach to the window; the
        window keeps the exemplar of its largest exemplared sample, so
        a slow p99 window points straight at the request that made it
        slow.
        """
        with self._lock:
            bucket = self._bucket(name, t, labels)
            if bucket is not None:
                bucket.sample(float(value), exemplar)

    # -- reading -------------------------------------------------------------------

    @property
    def empty(self) -> bool:
        return self._max_window is None

    def span(self) -> tuple[int, int]:
        """(first, last) retained window index; (0, -1) when empty."""
        if self._max_window is None:
            return (0, -1)
        assert self._min_window is not None
        return (
            max(self._min_window, self._max_window - self.retention + 1),
            self._max_window,
        )

    def series_keys(self) -> list[tuple[str, LabelKey]]:
        return sorted(self._series.keys())

    def label_values(self, name: str, label: str) -> list[str]:
        """Every value ``label`` takes across ``name``'s series, sorted."""
        values = set()
        for series_name, labels in self._series:
            if series_name != name:
                continue
            for key, value in labels:
                if key == label:
                    values.add(value)
        return sorted(values)

    def _row(self, index: int, bucket: Optional[_Bucket]) -> WindowRow:
        start = self.window_start(index)
        if bucket is None or bucket.count == 0:
            return WindowRow(window=index, start=start, count=0, sum=0.0, rate=0.0)
        rate = bucket.sum / self.window_seconds
        if bucket.samples is None:
            return WindowRow(
                window=index, start=start, count=bucket.count,
                sum=bucket.sum, rate=rate,
            )
        ordered = sorted(bucket.samples)
        return WindowRow(
            window=index,
            start=start,
            count=bucket.count,
            sum=bucket.sum,
            rate=rate,
            min=ordered[0],
            max=ordered[-1],
            mean=bucket.sum / bucket.count,
            p50=percentile(ordered, 0.50),
            p95=percentile(ordered, 0.95),
            p99=percentile(ordered, 0.99),
            exemplar=bucket.exemplar,
        )

    def rows(self, name: str, **labels: object) -> list[WindowRow]:
        """Every retained window of one series, oldest first, zero-filled.

        The row list always covers the aggregator's full retained span
        (so every series aligns window-for-window in a dashboard), and
        idle windows appear as explicit zero-rate rows.
        """
        first, last = self.span()
        if last < first:
            return []
        windows = self._series.get((name, _label_key(labels) if labels else ()), {})
        return [self._row(i, windows.get(i)) for i in range(first, last + 1)]

    def total(self, name: str, **labels: object) -> float:
        """Sum of one series over its retained windows."""
        windows = self._series.get((name, _label_key(labels) if labels else ()))
        if not windows:
            return 0.0
        return sum(bucket.sum for bucket in windows.values())

    def iter_series(self) -> Iterator[tuple[str, dict[str, str], list[WindowRow]]]:
        """(name, labels dict, rows) per series, deterministically ordered."""
        for name, labels in self.series_keys():
            yield name, dict(labels), self.rows(name, **dict(labels))

    def snapshot(self) -> dict:
        """A JSON-stable dump: every retained window of every series."""
        series: dict[str, list[dict]] = {}
        for name, labels in self.series_keys():
            rendered = render_series(name, labels)
            series[rendered] = [
                row.as_record() for row in self.rows(name, **dict(labels))
            ]
        return {
            "window_seconds": round(self.window_seconds, 6),
            "retention": self.retention,
            "series": series,
        }


class NullWindowedAggregator:
    """The disabled aggregator: every call is a no-op."""

    enabled = False

    __slots__ = ()

    window_seconds = 0.0
    retention = 0
    empty = True

    def window_index(self, t: float) -> int:
        return 0

    def window_start(self, index: int) -> float:
        return 0.0

    def record(self, name: str, t: float, value: Number = 1, **labels: object) -> None:
        pass

    def observe(
        self,
        name: str,
        t: float,
        value: Number,
        *,
        exemplar: Optional[str] = None,
        **labels: object,
    ) -> None:
        pass

    def span(self) -> tuple[int, int]:
        return (0, -1)

    def series_keys(self) -> list:
        return []

    def label_values(self, name: str, label: str) -> list[str]:
        return []

    def rows(self, name: str, **labels: object) -> list[WindowRow]:
        return []

    def total(self, name: str, **labels: object) -> float:
        return 0.0

    def iter_series(self) -> Iterator:
        return iter(())

    def snapshot(self) -> dict:
        return {}


#: The shared disabled aggregator every component defaults to.
NULL_TIMESERIES = NullWindowedAggregator()
