"""HQDL prompt construction (paper Section 4.1.1).

The prompt format follows the paper's example verbatim in structure:
task statement, the 'No Explanation' rule, the column list, the retained
value lists for selection columns, optional few-shot demonstrations
(static rows from the original database), the target entry, and the field
count.  Marker strings are imported from :mod:`repro.llm.chat` so the
simulated model and this builder can never drift apart.

Prompts are declared through the :mod:`repro.llm.declarative` toolkit
(the Section 4.3 "principled declarative prompt engineering" direction):
:meth:`RowPromptBuilder.build_spec` exposes the structured
:class:`~repro.llm.declarative.PromptSpec` and :meth:`RowPromptBuilder.build`
renders it to text.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.llm.chat import (
    ANSWER_MARKER,
    COLUMNS_MARKER,
    CONTEXT_ROW_MARKER,
    EXAMPLE_ENTRY_MARKER,
    TARGET_ENTRY_MARKER,
    VALUES_HINT_MARKER,
    quote_field,
)
from repro.llm.declarative import PromptSpec
from repro.llm.oracle import KnowledgeOracle
from repro.swan.base import ExpansionTable, World
from repro.swan.worlds.util import det_sample

#: Cap on how many values of a retained list are spelled out in the prompt;
#: long lists are elided the way the paper's example uses "...".
MAX_LISTED_VALUES = 40


class RowPromptBuilder:
    """Builds row-completion prompts for one expansion table."""

    def __init__(
        self,
        world: World,
        expansion: ExpansionTable,
        *,
        shots: int = 0,
        context_provider: Optional[Callable[[tuple], list[str]]] = None,
        optimize: bool = True,
    ) -> None:
        if shots < 0:
            raise ValueError(f"shots must be >= 0, got {shots}")
        self.world = world
        self.expansion = expansion
        self.shots = shots
        self.context_provider = context_provider
        self.optimize = optimize
        self._oracle = KnowledgeOracle(world)
        self._static_demos = self._select_demonstrations()
        # Pre-rendered constant prompt parts for the fast `build` path.
        # Everything before the target entry (and everything after it) is
        # the same string for every key, so it is rendered exactly once.
        self._prefix: Optional[str] = None
        self._suffix: Optional[str] = None

    # -- section content ---------------------------------------------------------

    def _task_line(self) -> str:
        return (
            "Your task is to fill in the missing values in the target entry "
            f"from the `{self.expansion.name}` table of the "
            f"`{self.world.name}` database."
        )

    def _columns_line(self) -> str:
        columns = self.expansion.all_column_names()
        return COLUMNS_MARKER + " " + ",".join(f"`{name}`" for name in columns)

    def _value_hint_lines(self) -> list[str]:
        lines = []
        for column in self.expansion.columns:
            if not column.value_list:
                continue
            values = self.world.value_lists.get(column.value_list, [])
            shown = values[:MAX_LISTED_VALUES]
            rendered = ", ".join(f"'{v}'" for v in shown)
            ellipsis = ", ..." if len(values) > len(shown) else ""
            lines.append(
                f"{VALUES_HINT_MARKER} `{column.name}` are [{rendered}{ellipsis}]"
            )
        return lines

    def _select_demonstrations(self) -> list[tuple]:
        """Static demonstration keys, the same for every prompt (Section 5.2)."""
        if self.shots == 0:
            return []
        keys = sorted(self.world.truth[self.expansion.name].keys())
        count = min(self.shots, len(keys))
        return det_sample(
            keys, count, "hqdl-demos", self.world.name, self.expansion.name
        )

    def _entry_line(self, key: tuple) -> str:
        fields = [quote_field(str(part)) for part in key]
        fields.extend("?" for _ in self.expansion.columns)
        return ",".join(fields)

    def _answer_line(self, key: tuple) -> str:
        fields = [quote_field(str(part)) for part in key]
        for column in self.expansion.columns:
            truth = self.world.truth_value(self.expansion.name, key, column.name)
            fields.append(quote_field(self._oracle.format_value(truth, column)))
        return ",".join(fields)

    # -- public API --------------------------------------------------------------

    def build_spec(self, key: tuple) -> PromptSpec:
        """The structured prompt declaration for one target key."""
        spec = PromptSpec()
        spec.add_task(self._task_line())
        spec.add_rule("Return a single row with no explanation.")
        spec.add_schema(self._columns_line())
        for line in self._value_hint_lines():
            spec.add_values(line)
        if self.context_provider is not None:
            for row_text in self.context_provider(key):
                spec.add_context(f"{CONTEXT_ROW_MARKER} {row_text}")
        for demo_key in self._static_demos:
            spec.add_demonstration(
                f"{EXAMPLE_ENTRY_MARKER}{self._entry_line(demo_key)}",
                f"{ANSWER_MARKER}{self._answer_line(demo_key)}",
            )
        field_count = len(self.expansion.all_column_names())
        spec.add_target(
            f"{TARGET_ENTRY_MARKER}{self._entry_line(key)}",
            "The output should consist of a single row containing "
            f"{field_count} fields.",
        )
        spec.add_cue(ANSWER_MARKER)
        return spec

    def _constant_parts(self) -> tuple[str, str]:
        lines = [
            self._task_line(),
            "Return a single row with no explanation.",
            self._columns_line(),
        ]
        lines.extend(self._value_hint_lines())
        for demo_key in self._static_demos:
            lines.append(f"{EXAMPLE_ENTRY_MARKER}{self._entry_line(demo_key)}")
            lines.append(f"{ANSWER_MARKER}{self._answer_line(demo_key)}")
        field_count = len(self.expansion.all_column_names())
        suffix = (
            "The output should consist of a single row containing "
            f"{field_count} fields.\n{ANSWER_MARKER}"
        )
        return "\n".join(lines), suffix

    def build(self, key: tuple) -> str:
        """The full prompt asking the model to complete the row for ``key``.

        :class:`~repro.llm.declarative.PromptSpec` joins sections (and
        lines within sections) with single newlines, so the rendered
        prompt equals the flat newline join of all lines; with no
        per-key context rows the only key-dependent line is the target
        entry, and the fast path splices it between two cached constant
        strings — byte-identical to ``build_spec(key).render()``.
        """
        if not self.optimize or self.context_provider is not None:
            return self.build_spec(key).render()
        if self._prefix is None:
            self._prefix, self._suffix = self._constant_parts()
        return (
            f"{self._prefix}\n{TARGET_ENTRY_MARKER}{self._entry_line(key)}"
            f"\n{self._suffix}"
        )

    def expected_field_count(self) -> int:
        return len(self.expansion.all_column_names())
