"""HQDL — Hybrid Query over Database and LLM (the paper's Section 4.1).

HQDL answers a beyond-database question by *schema expansion*: the curated
schema gains the missing expansion tables, an LLM fills in every missing
data entry (one row-completion call per key), the rows are extracted with
the Python ``csv`` module and materialized into SQLite, and the question
is then answered by a *regular* SQL query over the expanded schema.

Public surface:

- :class:`~repro.core.hqdl.HQDL` — the pipeline orchestrator.
- :class:`~repro.core.prompts.RowPromptBuilder` — zero/few-shot prompt
  construction (paper Section 4.1.1 format).
- :func:`~repro.core.extraction.extract_row` — completion → fields.
- :func:`~repro.core.materialize.materialize_expansion` — rows → table.
"""

from repro.core.extraction import extract_row
from repro.core.hqdl import HQDL, GenerationResult, TableGeneration
from repro.core.materialize import expansion_table_schema, materialize_expansion
from repro.core.prompts import RowPromptBuilder

__all__ = [
    "HQDL",
    "GenerationResult",
    "TableGeneration",
    "RowPromptBuilder",
    "extract_row",
    "expansion_table_schema",
    "materialize_expansion",
]
