"""Materializing LLM-generated rows into SQLite expansion tables.

Generated values arrive as strings.  Numeric expansion columns are
declared with NUMERIC affinity so SQLite coerces numeric-looking strings
on insert, letting the hybrid SQL compare them to integers directly —
exactly the behaviour the hand-written HQDL queries rely on.

One-to-many relationships are already condensed ("Agility, Super
Strength") by the generation step, per Section 4.1's condensation rule;
materialization stores the condensed string as a single TEXT cell.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

from repro.sqlengine.database import Database
from repro.sqlengine.schema import ColumnSchema, TableSchema
from repro.swan.base import KIND_NUMERIC, ExpansionTable


def expansion_table_schema(expansion: ExpansionTable) -> TableSchema:
    """The SQLite schema for one expansion table."""
    columns = [ColumnSchema(name, "TEXT") for name in expansion.key_columns]
    for column in expansion.columns:
        affinity = "NUMERIC" if column.kind == KIND_NUMERIC else "TEXT"
        columns.append(ColumnSchema(column.name, affinity))
    return TableSchema(
        name=expansion.name,
        columns=columns,
        primary_key=tuple(expansion.key_columns),
    )


def materialize_expansion(
    db: Database,
    expansion: ExpansionTable,
    rows: Mapping[tuple, Optional[Sequence[str]]] | Iterable[tuple],
) -> int:
    """Create the expansion table and insert the generated rows.

    ``rows`` maps key tuple → generated values (in expansion column
    order), with None marking rows whose completion could not be
    extracted — those are skipped (the entity simply stays missing, as in
    HQDL).  Returns the number of rows inserted.
    """
    db.drop_table(expansion.name)
    db.create_table(expansion_table_schema(expansion))
    if isinstance(rows, Mapping):
        items = rows.items()
    else:
        items = ((tuple(row[: len(expansion.key_columns)]),
                  row[len(expansion.key_columns):]) for row in rows)
    to_insert = []
    for key, values in items:
        if values is None:
            continue
        to_insert.append(tuple(key) + tuple(values))
    if to_insert:
        db.insert_rows(
            expansion.name, expansion.all_column_names(), to_insert
        )
    return len(to_insert)
