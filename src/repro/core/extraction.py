"""Data extraction: LLM completion text → structured row fields.

HQDL "uses the Python csv module's reader to process these entries"
(Section 4.1).  Real completions are messy — chatty preambles, wrong
field counts, stray blank lines — so extraction is defensive:

- the row line is the *last* line that looks like data (contains a quote
  or a comma), skipping any explanation text the model prepended;
- fields are parsed with ``csv.reader`` using the single-quote convention
  the prompts demonstrate;
- a row with the wrong field count raises :class:`ExtractionError`; the
  caller decides whether to drop the row (HQDL does, and counts it).
"""

from __future__ import annotations

import csv
import io

from repro.errors import ExtractionError


def _candidate_line(completion: str) -> str:
    """Pick the line of the completion that carries the data row."""
    lines = [line.strip() for line in completion.splitlines() if line.strip()]
    if not lines:
        raise ExtractionError("empty completion")
    for line in reversed(lines):
        if "'" in line or "," in line:
            return line
    return lines[-1]


def parse_fields(line: str) -> list[str]:
    """Parse one `'a','b','c'` style line into its fields."""
    reader = csv.reader(io.StringIO(line), quotechar="'", skipinitialspace=True)
    rows = list(reader)
    if not rows:
        raise ExtractionError(f"unparseable row: {line[:120]!r}")
    return [field.strip() for field in rows[0]]


def extract_row(completion: str, expected_fields: int) -> list[str]:
    """Extract exactly ``expected_fields`` fields from a completion.

    Raises :class:`ExtractionError` on empty completions, unparseable
    lines, wrong field counts, or empty field values (the failure modes
    Section 5.3 reports for zero-shot prompts).
    """
    line = _candidate_line(completion)
    fields = parse_fields(line)
    if len(fields) != expected_fields:
        raise ExtractionError(
            f"expected {expected_fields} fields, got {len(fields)}: {line[:120]!r}"
        )
    for index, field in enumerate(fields):
        if field == "":
            raise ExtractionError(f"field {index} is empty in: {line[:120]!r}")
    return fields
