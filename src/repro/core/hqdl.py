"""The HQDL pipeline orchestrator (paper Section 4.1).

Flow, per database:

1. **Schema expansion** — the curated schema gains the expansion tables
   SWAN specifies (missing columns/tables plus meaningful keys).
2. **Data generation** — one LLM row-completion call per key, with the
   configured number of static few-shot demonstrations.
3. **Data extraction** — completions parsed via the csv module; malformed
   rows are dropped and counted.
4. **Materialization** — extracted rows inserted into the expansion
   tables of a (copy of the) curated database.
5. **Query execution** — each question's ``hqdl_sql`` runs as plain SQL.

A key operational property (Section 5.5): generation happens *once per
database*, and every question over that database reuses the materialized
tables — which is why HQDL's token bill is a fraction of HQ UDFs'.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.extraction import extract_row
from repro.core.materialize import materialize_expansion
from repro.core.prompts import RowPromptBuilder
from repro.errors import ExtractionError, ReproError
from repro.llm.batching import LatencyModel
from repro.llm.client import ChatClient
from repro.llm.tokenizer import count_tokens
from repro.llm.parallel import DispatchOutcome, ParallelDispatcher
from repro.llm.resilience import ResilienceReport
from repro.obs import NULL_PROVENANCE, NULL_TELEMETRY, Telemetry
from repro.obs.provenance import call_id_for
from repro.obs.trace import NULL_SPAN
from repro.sqlengine.database import Database
from repro.sqlengine.results import ResultSet
from repro.swan.base import Question, World
from repro.swan.build import build_curated_database


@dataclass
class TableGeneration:
    """Everything generated for one expansion table.

    ``rows`` maps key → list of generated values (expansion column order),
    or None when the completion was malformed beyond extraction.
    """

    expansion_name: str
    rows: dict[tuple, Optional[list[str]]] = field(default_factory=dict)
    malformed: int = 0
    calls: int = 0
    #: rows whose LLM call failed outright (transient error that survived
    #: the retry layer) and degraded to NULLs, distinct from ``malformed``
    #: (the call returned, but the completion resisted extraction).
    degraded: int = 0

    def generated_cells(self) -> int:
        return sum(len(v) for v in self.rows.values() if v is not None)


@dataclass
class GenerationResult:
    """Per-expansion generations for one (database, model, shots) config."""

    database: str
    shots: int
    tables: dict[str, TableGeneration] = field(default_factory=dict)

    def total_malformed(self) -> int:
        return sum(t.malformed for t in self.tables.values())

    def total_calls(self) -> int:
        return sum(t.calls for t in self.tables.values())

    def total_degraded(self) -> int:
        return sum(t.degraded for t in self.tables.values())


class HQDL:
    """Schema-expansion hybrid querying for one world."""

    def __init__(
        self,
        world: World,
        client: ChatClient,
        *,
        shots: int = 0,
        context_rows: int = 0,
        workers: int = 1,
        call_order: str = "collection",
        resilience: Optional[ResilienceReport] = None,
        telemetry: Optional[Telemetry] = None,
        provenance=None,
        optimize: bool = True,
    ) -> None:
        if call_order not in ("collection", "lpt"):
            raise ReproError(
                f"call_order must be 'collection' or 'lpt', got {call_order!r}"
            )
        self.world = world
        self.client = client
        self.shots = shots
        self.context_rows = context_rows
        self.workers = workers
        #: toggles the byte-identical fast paths (cached prompt prefixes);
        #: ``False`` keeps the original per-key PromptSpec rendering and
        #: exists as the bench-scale 'pre-optimization' reference.
        self.optimize = optimize
        #: 'collection' dispatches row calls in table/key order; 'lpt'
        #: dispatches longest-prompt-first so a parallel pool doesn't end
        #: on one big straggler.  Results are identical either way —
        #: outcomes are re-assembled in key order.
        self.call_order = call_order
        self.resilience = resilience
        #: optional request-level :class:`~repro.llm.resilience.Deadline`
        #: (set per request by the serving layer): once expired, remaining
        #: row calls are skipped with typed degradable outcomes, so their
        #: rows materialize as NULLs instead of blocking past the budget.
        self.deadline = None
        self._tel = telemetry if telemetry is not None else NULL_TELEMETRY
        self._prov = provenance if provenance is not None else NULL_PROVENANCE
        self._dispatcher = ParallelDispatcher(
            workers, telemetry=self._tel, provenance=self._prov
        )
        self._m_degraded_rows = self._tel.metrics.counter("pipeline.degraded_rows")
        self._m_malformed = self._tel.metrics.counter("pipeline.malformed_rows")
        self._retriever = None
        if context_rows > 0:
            # built lazily-but-eagerly here: one index serves every table
            from repro.retrieval.index import RowContextRetriever

            self._retriever = RowContextRetriever(world)

    # -- generation ------------------------------------------------------------

    def _prepare_table(
        self, expansion_name: str
    ) -> tuple[RowPromptBuilder, list[tuple], list[str]]:
        """The prompt builder, keys, and prompts for one expansion table."""
        expansion = self.world.expansion(expansion_name)
        context_provider = None
        if self._retriever is not None:
            context_provider = self._retriever.context_provider(self.context_rows)
        builder = RowPromptBuilder(
            self.world,
            expansion,
            shots=self.shots,
            context_provider=context_provider,
            optimize=self.optimize,
        )
        keys = list(self.world.keys_for(expansion_name))
        prompts = [builder.build(key) for key in keys]
        return builder, keys, prompts

    def plan_calls(self) -> list[tuple[str, str]]:
        """Every (prompt, label) generation would dispatch, without calling.

        HQDL already generates once per database, so there is nothing to
        dedup — planning here feeds benchmarking (call counts, virtual
        makespans) and cache pre-warming.
        """
        calls: list[tuple[str, str]] = []
        for expansion in self.world.expansions:
            _, _, prompts = self._prepare_table(expansion.name)
            calls.extend((p, f"hqdl:{expansion.name}") for p in prompts)
        return calls

    def _dispatch_ordered(
        self, prompts: list[str], labels
    ) -> list[DispatchOutcome]:
        """Dispatch, longest-prompt-first when ``call_order='lpt'``.

        Outcomes always come back aligned to the *input* prompt order,
        so assembly is unaffected by the dispatch permutation.
        """
        if self.call_order != "lpt" or len(prompts) <= 1:
            return self._dispatcher.dispatch(
                self.client, prompts, labels=labels, capture_errors="transient",
                deadline=self.deadline,
            )
        model = LatencyModel()
        estimates = [
            model.base_seconds + model.per_input_token * count_tokens(p)
            for p in prompts
        ]
        order = sorted(range(len(prompts)), key=lambda i: (-estimates[i], i))
        permuted_labels = (
            labels if isinstance(labels, str) else [labels[i] for i in order]
        )
        permuted = self._dispatcher.dispatch(
            self.client,
            [prompts[i] for i in order],
            labels=permuted_labels,
            capture_errors="transient",
            deadline=self.deadline,
        )
        outcomes: list[Optional[DispatchOutcome]] = [None] * len(prompts)
        for position, index in enumerate(order):
            outcomes[index] = permuted[position]
        return outcomes

    def _assemble_table(
        self,
        expansion_name: str,
        builder: RowPromptBuilder,
        keys: list[tuple],
        outcomes: list[DispatchOutcome],
        prompts: Optional[list[str]] = None,
    ) -> TableGeneration:
        """Extract dispatched completions into a TableGeneration, in key order.

        A row whose call failed outright (a degradable dispatch outcome)
        yields NULLs — the materialized table keeps the key but loses the
        generated cells — and is counted as ``degraded``, mirroring how a
        production pipeline survives a partial provider outage.
        """
        generation = TableGeneration(expansion_name=expansion_name)
        expansion = self.world.expansion(expansion_name)
        key_width = len(expansion.key_columns)
        prov = self._prov
        value_columns = (
            expansion.generated_column_names() if prov.enabled else []
        )
        for index, (key, outcome) in enumerate(zip(keys, outcomes)):
            generation.calls += 1
            cid = (
                call_id_for(prompts[index])
                if prov.enabled and prompts is not None
                else ""
            )
            if outcome.error is not None:
                generation.rows[key] = None
                generation.degraded += 1
                self._m_degraded_rows.inc()
                if self.resilience is not None:
                    self.resilience.record_degraded(1)
                if prov.enabled:
                    for column in value_columns:
                        prov.record_cell(
                            expansion_name, key, column, cid,
                            null=True, degraded=True,
                        )
                continue
            try:
                fields = extract_row(
                    outcome.response.text, builder.expected_field_count()
                )
            except ExtractionError:
                generation.rows[key] = None
                generation.malformed += 1
                self._m_malformed.inc()
                if prov.enabled:
                    for column in value_columns:
                        prov.record_cell(
                            expansion_name, key, column, cid, null=True
                        )
                continue
            generation.rows[key] = fields[key_width:]
            if prov.enabled:
                for column in value_columns:
                    prov.record_cell(expansion_name, key, column, cid)
        return generation

    def generate_table(self, expansion_name: str) -> TableGeneration:
        """Generate all rows of one expansion table, one call per key.

        With ``workers > 1`` the per-key calls run concurrently; rows are
        assembled in key order, so the result is identical to sequential
        generation.
        """
        tel = self._tel
        with (
            tel.tracer.span("hqdl:generate", table=expansion_name)
            if tel.enabled
            else NULL_SPAN
        ):
            with (tel.tracer.span("hqdl:prepare") if tel.enabled else NULL_SPAN):
                builder, keys, prompts = self._prepare_table(expansion_name)
            outcomes = self._dispatch_ordered(
                prompts, f"hqdl:{expansion_name}"
            )
            with (tel.tracer.span("hqdl:assemble") if tel.enabled else NULL_SPAN):
                return self._assemble_table(
                    expansion_name, builder, keys, outcomes, prompts
                )

    def generate_all(self) -> GenerationResult:
        """Generate every expansion table of this world.

        All row-completion calls of *all* expansion tables form one flat
        dispatch, so with ``workers > 1`` generation parallelizes across
        attributes (tables) and keys alike, instead of finishing one
        table before starting the next.
        """
        tel = self._tel
        result = GenerationResult(database=self.world.name, shots=self.shots)
        with (
            tel.tracer.span("hqdl:generate", database=self.world.name)
            if tel.enabled
            else NULL_SPAN
        ):
            with (tel.tracer.span("hqdl:prepare") if tel.enabled else NULL_SPAN):
                prepared = [
                    (expansion.name, *self._prepare_table(expansion.name))
                    for expansion in self.world.expansions
                ]
                prompts = [
                    p for _, _, _, table_prompts in prepared for p in table_prompts
                ]
                labels = [
                    f"hqdl:{name}"
                    for name, _, _, table_prompts in prepared
                    for _ in table_prompts
                ]
            outcomes = self._dispatch_ordered(prompts, labels)
            with (tel.tracer.span("hqdl:assemble") if tel.enabled else NULL_SPAN):
                offset = 0
                for name, builder, keys, table_prompts in prepared:
                    table_outcomes = outcomes[offset : offset + len(table_prompts)]
                    offset += len(table_prompts)
                    result.tables[name] = self._assemble_table(
                        name, builder, keys, table_outcomes, table_prompts
                    )
        return result

    # -- materialization ---------------------------------------------------------

    def materialize(self, db: Database, generation: GenerationResult) -> None:
        """Insert all generated tables into ``db`` (the curated database)."""
        tel = self._tel
        with (
            tel.tracer.span("hqdl:materialize", database=self.world.name)
            if tel.enabled
            else NULL_SPAN
        ):
            for expansion in self.world.expansions:
                table_generation = generation.tables.get(expansion.name)
                if table_generation is None:
                    raise ReproError(
                        f"generation result is missing table {expansion.name!r}"
                    )
                materialize_expansion(db, expansion, table_generation.rows)

    def build_expanded_database(
        self, generation: Optional[GenerationResult] = None
    ) -> Database:
        """Curated database + materialized expansions, ready for queries."""
        generation = generation or self.generate_all()
        db = build_curated_database(self.world)
        self.materialize(db, generation)
        return db

    # -- query execution -----------------------------------------------------------

    def answer(self, db: Database, question: Question) -> ResultSet:
        """Execute a question's HQDL hybrid SQL on an expanded database."""
        if question.database != self.world.name:
            raise ReproError(
                f"question {question.qid} belongs to {question.database!r}, "
                f"not {self.world.name!r}"
            )
        tel = self._tel
        with (
            tel.tracer.span("hqdl:answer", qid=question.qid)
            if tel.enabled
            else NULL_SPAN
        ):
            return db.query(question.hqdl_sql)
