"""Batch-size policies for LLMMap/LLMJoin key batching.

BlendSQL fixes the batch size at 5 keys per call (Section 4.3) and
defers smarter scheduling to future work.  The profiles in
:mod:`repro.llm.profiles` calibrate exactly the two effects that make
large batches risky:

- ``batch_item_factor`` — per-item knowledge decays geometrically with
  batch size (each extra key in the prompt dilutes attention);
- ``format_error_rate(shots)`` — the chance one completion misaligns its
  ``index. answer`` lines, which corrupts the *whole* batch.

:class:`AdaptiveBatchPolicy` inverts those curves: the largest batch
whose expected per-item accuracy loss and misalignment exposure stay
inside configured budgets.  Fewer calls means fewer base-latency round
trips and less repeated prompt scaffolding — the token line item the
paper's Table 4 bills per call.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.llm.batching import DEFAULT_BATCH_SIZE
from repro.llm.profiles import ModelProfile, get_profile

#: Past ~20 keys the prompt outgrows the scaffolding it amortizes.
DEFAULT_MAX_BATCH_SIZE = 20


@dataclass(frozen=True)
class FixedBatchPolicy:
    """Always the same batch size — BlendSQL's behaviour as a policy."""

    size: int = DEFAULT_BATCH_SIZE

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError(f"size must be >= 1, got {self.size}")

    def batch_size(self, call: Optional[object] = None) -> int:
        return self.size


class AdaptiveBatchPolicy:
    """Profile-driven batch sizing, bounded below by BlendSQL's default.

    Two caps, take the tighter:

    - **accuracy cap** — per-item accuracy scales with
      ``batch_item_factor ** (size - 1)``; the cap is the largest size
      whose relative loss stays within ``max_item_loss``:
      ``1 + ln(1 - max_item_loss) / ln(batch_item_factor)``.
    - **format cap** — a misaligned completion loses the whole batch, so
      the expected keys lost per call is ``rate * size``; the cap keeps
      it within ``misalign_budget`` keys: ``misalign_budget / rate``.

    Worked examples (0 shots): gpt-3.5-turbo (factor 0.99, rate 0.04)
    → min(6, 6) = 6; gpt-4-turbo (0.993, 0.025) → min(8, 10) = 8;
    perfect (1.0, 0.0) → both caps infinite → ceiling 20.
    """

    def __init__(
        self,
        profile: ModelProfile,
        shots: int = 0,
        *,
        floor: int = DEFAULT_BATCH_SIZE,
        ceiling: int = DEFAULT_MAX_BATCH_SIZE,
        max_item_loss: float = 0.05,
        misalign_budget: float = 0.25,
    ) -> None:
        if floor < 1:
            raise ValueError(f"floor must be >= 1, got {floor}")
        if ceiling < floor:
            raise ValueError(
                f"ceiling ({ceiling}) must be >= floor ({floor})"
            )
        if not 0 < max_item_loss < 1:
            raise ValueError(
                f"max_item_loss must be in (0, 1), got {max_item_loss}"
            )
        if misalign_budget <= 0:
            raise ValueError(
                f"misalign_budget must be > 0, got {misalign_budget}"
            )
        self.profile = profile
        self.shots = shots
        self.floor = floor
        self.ceiling = ceiling
        self.max_item_loss = max_item_loss
        self.misalign_budget = misalign_budget
        self._size = self._compute()

    @classmethod
    def for_model(cls, model_name: str, shots: int = 0, **kwargs) -> "AdaptiveBatchPolicy":
        return cls(get_profile(model_name), shots, **kwargs)

    def _compute(self) -> int:
        factor = self.profile.batch_item_factor
        if factor >= 1.0:
            accuracy_cap = math.inf
        else:
            accuracy_cap = 1 + math.log(1 - self.max_item_loss) / math.log(factor)
        rate = self.profile.format_error_rate(self.shots)
        format_cap = self.misalign_budget / rate if rate > 0 else math.inf
        cap = min(accuracy_cap, format_cap)
        if math.isinf(cap):
            return self.ceiling
        return max(self.floor, min(self.ceiling, int(cap)))

    def batch_size(self, call: Optional[object] = None) -> int:
        """The chosen size (``call`` accepted for per-attribute policies)."""
        return self._size

    def explain(self) -> dict:
        """The caps behind the choice, for reports and BENCH JSON."""
        factor = self.profile.batch_item_factor
        rate = self.profile.format_error_rate(self.shots)
        accuracy_cap = (
            None
            if factor >= 1.0
            else 1 + math.log(1 - self.max_item_loss) / math.log(factor)
        )
        format_cap = None if rate <= 0 else self.misalign_budget / rate
        return {
            "model": self.profile.name,
            "shots": self.shots,
            "accuracy_cap": round(accuracy_cap, 2) if accuracy_cap else None,
            "format_cap": round(format_cap, 2) if format_cap else None,
            "floor": self.floor,
            "ceiling": self.ceiling,
            "batch_size": self._size,
        }
