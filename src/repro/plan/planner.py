"""Run-level call planning over one database's full question set.

The :class:`CallPlanner` front-loads the LLM work of many hybrid queries
into one deduplicated, longest-first dispatch, in one of two modes:

``prompt`` (behaviour-preserving)
    Collect the *exact* prompts each question's execution would issue
    (same pushdown, same batching, same text), dedup identical prompts
    across questions, and dispatch them through the executor's caching
    client.  Question-time execution then finds every prompt already in
    the cache, so results, EX, and token totals are byte-identical to
    the unplanned path — the plan only moves the paid calls earlier and
    schedules them longest-first (LPT) across the whole run instead of
    per ingredient.

``pairs`` (aggressive)
    Union the (attribute, key) pairs of all questions per ingredient
    signature, pack them with the executor's batch policy, and store the
    parsed answers in a :class:`~repro.plan.store.MappingStore`.
    Executors then answer fully-covered ingredients with zero LLM calls.
    Cross-question batching means fewer, fuller calls — and different
    prompt text, so answers may drift within the model's noise band;
    this mode trades strict identity for the token savings the paper's
    Table 4 prices.

Both modes dispatch with ``capture_errors=True`` and never cache or
store a failed call, so question-time execution re-attempts exactly what
the unplanned path would — the deterministic mock fails the same way,
keeping error behaviour aligned.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.llm.batching import LatencyModel, batched
from repro.llm.tokenizer import count_tokens
from repro.obs import NULL_TELEMETRY, Telemetry
from repro.obs.provenance import call_id_for
from repro.obs.trace import NULL_SPAN
from repro.plan.store import MappingStore
from repro.udf.executor import HybridQueryExecutor, _parse_map_answers

#: rough output-tokens-per-answered-key, for LPT ordering only — the
#: ordering needs relative sizes, not accurate absolutes
_EST_OUTPUT_TOKENS_PER_ITEM = 8


@dataclass(frozen=True)
class PlannedCall:
    """One LLM call the plan will dispatch.

    ``signature``/``batch`` are set in ``pairs`` mode for LLMMap/LLMJoin
    calls so the parsed answers can be stored per (signature, key); QA
    calls and all ``prompt``-mode calls carry only the prompt text.
    """

    prompt: str
    label: str
    signature: Optional[tuple] = None
    batch: Optional[tuple] = None

    def items(self) -> int:
        return len(self.batch) if self.batch else 1


@dataclass
class PlanStats:
    """Accounting for one planning pass (collection + dispatch)."""

    mode: str = "prompt"
    questions: int = 0
    #: prompt mode: prompts collected/unique; pairs mode: pairs
    collected: int = 0
    unique: int = 0
    signatures: int = 0
    planned_calls: int = 0
    #: dispatch outcome split: paid + cached + failed == planned_calls
    llm_calls: int = 0
    cached_calls: int = 0
    failed_calls: int = 0
    input_tokens: int = 0
    output_tokens: int = 0
    keys_stored: int = 0
    #: virtual seconds if the planned calls ran back to back
    estimated_sequential_seconds: float = 0.0
    #: (input, output) tokens of each paid planner call, for makespans
    call_sizes: list = field(default_factory=list)

    @property
    def dedup_pct(self) -> float:
        """Share of collected work eliminated by global dedup."""
        if self.collected == 0:
            return 0.0
        return 100.0 * (self.collected - self.unique) / self.collected

    def as_record(self) -> dict:
        return {
            "mode": self.mode,
            "questions": self.questions,
            "collected": self.collected,
            "unique": self.unique,
            "dedup_pct": round(self.dedup_pct, 2),
            "signatures": self.signatures,
            "planned_calls": self.planned_calls,
            "llm_calls": self.llm_calls,
            "cached_calls": self.cached_calls,
            "failed_calls": self.failed_calls,
            "input_tokens": self.input_tokens,
            "output_tokens": self.output_tokens,
            "keys_stored": self.keys_stored,
        }


@dataclass
class Plan:
    """An ordered set of LLM calls covering a whole question set."""

    mode: str
    calls: list[PlannedCall] = field(default_factory=list)
    stats: PlanStats = field(default_factory=PlanStats)


class CallPlanner:
    """Plans and pre-executes the LLM calls of a batch of hybrid queries."""

    MODES = ("prompt", "pairs")

    def __init__(
        self,
        executor: HybridQueryExecutor,
        *,
        mode: str = "prompt",
        store: Optional[MappingStore] = None,
        latency: Optional[LatencyModel] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if mode not in self.MODES:
            raise ValueError(
                f"mode must be one of {self.MODES}, got {mode!r}"
            )
        self.executor = executor
        self.mode = mode
        # pairs mode fills the executor's store so execution can serve
        # from it; an explicitly passed store wins for standalone use.
        self.store = store if store is not None else executor.mapping_store
        if mode == "pairs" and self.store is None:
            self.store = MappingStore()
        self.latency = latency if latency is not None else LatencyModel()
        self._tel = telemetry if telemetry is not None else NULL_TELEMETRY

    # -- planning ------------------------------------------------------------

    def plan(self, hybrid_queries: Sequence[str]) -> Plan:
        """Collect, dedup, and LPT-order the calls of all queries."""
        tel = self._tel
        stats = PlanStats(mode=self.mode, questions=len(hybrid_queries))
        with (
            tel.tracer.span("plan:collect", mode=self.mode)
            if tel.enabled
            else NULL_SPAN
        ) as span:
            if self.mode == "prompt":
                calls = self._collect_prompts(hybrid_queries, stats)
            else:
                calls = self._collect_pairs(hybrid_queries, stats)
            span.set("collected", stats.collected)
        with (
            tel.tracer.span("plan:dedup") if tel.enabled else NULL_SPAN
        ) as span:
            ordered = self._order(calls)
            span.set("unique", stats.unique)
            span.set("calls", len(ordered))
        stats.planned_calls = len(ordered)
        stats.estimated_sequential_seconds = round(
            sum(self._estimate_seconds(c) for c in ordered), 6
        )
        if tel.enabled:
            metrics = tel.metrics
            metrics.counter("plan.collected", mode=self.mode).inc(stats.collected)
            metrics.counter("plan.unique", mode=self.mode).inc(stats.unique)
        return Plan(mode=self.mode, calls=ordered, stats=stats)

    def _collect_prompts(
        self, hybrid_queries: Sequence[str], stats: PlanStats
    ) -> list[PlannedCall]:
        """Exact execution prompts, deduped across questions, first-seen order."""
        seen: dict[str, PlannedCall] = {}
        for sql in hybrid_queries:
            for prompt, label in self.executor.plan_calls(sql):
                stats.collected += 1
                if prompt not in seen:
                    seen[prompt] = PlannedCall(prompt=prompt, label=label)
        stats.unique = len(seen)
        return list(seen.values())

    def _collect_pairs(
        self, hybrid_queries: Sequence[str], stats: PlanStats
    ) -> list[PlannedCall]:
        """Union (attribute, key) pairs per signature, repacked into batches."""
        executor = self.executor
        # signature -> (first-seen call object, ordered key set)
        requests: dict[tuple, tuple] = {}
        qa_seen: dict[str, PlannedCall] = {}
        for sql in hybrid_queries:
            map_requests, qa_prompts = executor.plan_key_requests(sql)
            for call, keys in map_requests:
                signature = call.signature()
                if signature not in requests:
                    requests[signature] = (call, {})
                _, key_order = requests[signature]
                for key in keys:
                    stats.collected += 1
                    if key not in key_order:
                        key_order[key] = None
            for prompt in qa_prompts:
                stats.collected += 1
                if prompt not in qa_seen:
                    qa_seen[prompt] = PlannedCall(prompt=prompt, label="udf:qa")
        stats.signatures = len(requests)
        calls: list[PlannedCall] = list(qa_seen.values())
        unique_pairs = len(qa_seen)
        for signature, (call, key_order) in requests.items():
            keys = list(key_order)
            unique_pairs += len(keys)
            for batch in batched(keys, executor._batch_size_for(call)):
                calls.append(
                    PlannedCall(
                        prompt=executor._map_prompt(call, batch),
                        label="udf:map",
                        signature=signature,
                        batch=tuple(batch),
                    )
                )
        stats.unique = unique_pairs
        return calls

    def _estimate_seconds(self, call: PlannedCall) -> float:
        model = self.latency
        return (
            model.base_seconds
            + model.per_input_token * count_tokens(call.prompt)
            + model.per_output_token * _EST_OUTPUT_TOKENS_PER_ITEM * call.items()
        )

    def _order(self, calls: list[PlannedCall]) -> list[PlannedCall]:
        """Longest-first (LPT), ties broken by collection order.

        LPT minimizes the parallel makespan bound: starting the largest
        batches first keeps the tail of the dispatch from being one big
        straggler on an otherwise idle pool.
        """
        indexed = sorted(
            range(len(calls)),
            key=lambda i: (-self._estimate_seconds(calls[i]), i),
        )
        return [calls[i] for i in indexed]

    # -- execution -----------------------------------------------------------

    def execute(self, plan: Plan) -> PlanStats:
        """Dispatch the planned calls; warm caches and fill the store."""
        tel = self._tel
        stats = plan.stats
        prov = self.executor._prov
        if prov.enabled:
            # planned dispatches of a prompt share the unplanned path's
            # call-id (a pure content hash); mark them as planner-issued
            for call in plan.calls:
                prov.record_planned(call.prompt, label=call.label)
        with (
            tel.tracer.span("plan:dispatch", calls=len(plan.calls))
            if tel.enabled
            else NULL_SPAN
        ) as span:
            outcomes = self.executor.dispatcher.dispatch(
                self.executor.client,
                [c.prompt for c in plan.calls],
                labels=[c.label for c in plan.calls],
                capture_errors=True,
            )
            for call, outcome in zip(plan.calls, outcomes):
                if outcome.error is not None:
                    # not cached, not stored: question-time execution
                    # re-attempts and fails identically (the mock is
                    # deterministic), preserving error behaviour.
                    stats.failed_calls += 1
                    continue
                usage = outcome.response.usage
                if usage.calls:
                    stats.llm_calls += 1
                    stats.input_tokens += usage.input_tokens
                    stats.output_tokens += usage.output_tokens
                    stats.call_sizes.append(
                        (usage.input_tokens, usage.output_tokens)
                    )
                else:
                    stats.cached_calls += 1
                if call.signature is not None and self.store is not None:
                    answers = _parse_map_answers(
                        outcome.response.text, len(call.batch)
                    )
                    self.store.put(
                        call.signature,
                        dict(zip(call.batch, answers)),
                        call_ids=(
                            {
                                key: call_id_for(call.prompt)
                                for key in call.batch
                            }
                            if prov.enabled
                            else None
                        ),
                    )
                    stats.keys_stored += len(call.batch)
            span.set("llm_calls", stats.llm_calls)
            span.set("failed", stats.failed_calls)
        if tel.enabled:
            tel.metrics.counter("plan.llm_calls", mode=plan.mode).inc(
                stats.llm_calls
            )
        return stats

    def plan_and_execute(self, hybrid_queries: Sequence[str]) -> Plan:
        """The full pass: collect → dedup → order → dispatch."""
        plan = self.plan(hybrid_queries)
        self.execute(plan)
        return plan
