"""The shared mapping store filled by aggressive call planning.

A planning pass in ``pairs`` mode answers every (attribute, key) pair a
run will need, once, up front.  The :class:`MappingStore` is where those
answers live: keyed by ingredient signature (kind, question, source
table, key columns), each entry maps key tuples to generated values.

Executors consult the store before generating: when it covers *every*
key an ingredient needs, the whole ingredient is answered with zero LLM
calls.  Partial coverage falls back to the normal generate path — a
half-served batch would change batching (and therefore answers), so
serving is all-or-nothing per ingredient.
"""

from __future__ import annotations

import threading
from typing import Optional, Sequence


class MappingStore:
    """Thread-safe (signature → key → value) store shared across questions."""

    def __init__(self) -> None:
        self._data: dict[tuple, dict[tuple, Optional[str]]] = {}
        #: signature → key → call-id of the planning call that answered it
        self._producers: dict[tuple, dict[tuple, str]] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        #: lookups that found the signature but not every requested key
        self.partial = 0
        self.keys_served = 0

    def put(
        self,
        signature: tuple,
        mapping: dict[tuple, Optional[str]],
        *,
        call_ids: Optional[dict[tuple, str]] = None,
    ) -> None:
        """Merge answers for one signature (later puts win per key)."""
        with self._lock:
            self._data.setdefault(signature, {}).update(mapping)
            if call_ids:
                self._producers.setdefault(signature, {}).update(call_ids)

    def call_ids(self, signature: tuple) -> dict[tuple, str]:
        """key → producing call-id, for provenance of served ingredients."""
        with self._lock:
            return dict(self._producers.get(signature, ()))

    def lookup(
        self, signature: tuple, keys: Sequence[tuple]
    ) -> Optional[dict[tuple, Optional[str]]]:
        """All requested keys' values, or None unless fully covered."""
        with self._lock:
            stored = self._data.get(signature)
            if stored is None:
                self.misses += 1
                return None
            if any(key not in stored for key in keys):
                self.partial += 1
                self.misses += 1
                return None
            self.hits += 1
            self.keys_served += len(keys)
            return {key: stored[key] for key in keys}

    def peek(
        self, signature: tuple, keys: Sequence[tuple]
    ) -> dict[tuple, Optional[str]]:
        """The stored subset of ``keys``, without touching hit/miss stats.

        The cross-request batcher uses this at enqueue time to skip work
        the store already covers; unlike :meth:`lookup` it is not
        all-or-nothing (partial coverage still prunes the covered keys)
        and it never perturbs the serving statistics of real lookups.
        """
        with self._lock:
            stored = self._data.get(signature)
            if not stored:
                return {}
            return {key: stored[key] for key in keys if key in stored}

    def coverage(self, signature: tuple) -> int:
        """How many keys the store holds for one signature."""
        with self._lock:
            return len(self._data.get(signature, ()))

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def total_keys(self) -> int:
        with self._lock:
            return sum(len(m) for m in self._data.values())

    def stats(self) -> dict:
        with self._lock:
            return {
                "signatures": len(self._data),
                "keys": sum(len(m) for m in self._data.values()),
                "hits": self.hits,
                "misses": self.misses,
                "partial": self.partial,
                "keys_served": self.keys_served,
            }
