"""Run-level LLM call planning.

The executor answers one question at a time, so its reuse horizon is a
single query (plus the per-database prompt cache).  This package plans
the LLM work of *all* questions over a database before the dispatcher
sees any of it:

- :class:`~repro.plan.planner.CallPlanner` collects every ingredient
  call up front, dedups globally, orders longest-first, and pre-warms
  the caches in one dispatch;
- :class:`~repro.plan.store.MappingStore` holds the (attribute, key) →
  value answers the aggressive planning mode produces, so executors can
  answer questions without re-calling;
- :mod:`~repro.plan.policy` chooses per-attribute batch sizes from the
  calibrated model profiles instead of BlendSQL's fixed default of 5.
"""

from repro.plan.planner import CallPlanner, Plan, PlannedCall, PlanStats
from repro.plan.policy import (
    DEFAULT_MAX_BATCH_SIZE,
    AdaptiveBatchPolicy,
    FixedBatchPolicy,
)
from repro.plan.store import MappingStore

__all__ = [
    "AdaptiveBatchPolicy",
    "CallPlanner",
    "DEFAULT_MAX_BATCH_SIZE",
    "FixedBatchPolicy",
    "MappingStore",
    "Plan",
    "PlannedCall",
    "PlanStats",
]
