"""Materialize SWAN worlds into SQLite databases.

Two databases exist per world:

- the **original** database (full schema) — gold queries run here;
- the **curated** database (after drops) — hybrid pipelines run here.

Both can be built in memory (the default for tests and benches) or saved
to files for inspection.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.sqlengine.database import Database
from repro.sqlengine.schema import DatabaseSchema
from repro.swan.base import World


def _materialize(
    schema: DatabaseSchema, rows: dict[str, list[tuple]]
) -> Database:
    db = Database.in_memory()
    db.create_schema(schema)
    for table in schema.tables:
        table_rows = rows.get(table.name, [])
        if table_rows:
            db.insert_rows(table.name, table.column_names(), table_rows)
    return db


def build_original_database(world: World) -> Database:
    """The full (uncurated) database for gold-query execution."""
    return _materialize(world.original_schema, world.original_rows)


def build_curated_database(world: World) -> Database:
    """The curated database hybrid pipelines query."""
    return _materialize(world.curated_schema, world.curated_rows)


def save_databases(world: World, directory: Union[str, Path]) -> tuple[Path, Path]:
    """Write both databases to ``<dir>/<name>_original.db`` / ``_curated.db``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    original_path = directory / f"{world.name}_original.db"
    curated_path = directory / f"{world.name}_curated.db"
    with build_original_database(world) as original:
        original_path.unlink(missing_ok=True)
        original.save_to(original_path)
    with build_curated_database(world) as curated:
        curated_path.unlink(missing_ok=True)
        curated.save_to(curated_path)
    return original_path, curated_path
