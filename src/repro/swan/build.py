"""Materialize SWAN worlds into SQLite databases.

Two databases exist per world:

- the **original** database (full schema) — gold queries run here;
- the **curated** database (after drops) — hybrid pipelines run here.

Both can be built in memory (the default for tests and benches) or saved
to files for inspection.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.errors import ReproError
from repro.sqlengine.database import Database
from repro.sqlengine.schema import DatabaseSchema
from repro.swan.base import World
from repro.swan.scale import scale_world


def _at_scale(world: World, scale: int) -> World:
    """``world`` synthesized at ``scale`` (relative to the base world).

    ``scale=1`` always builds the world as-is, and asking for the scale
    the world already has is a no-op; rescaling an already-scaled world
    is ambiguous and rejected.
    """
    if scale == 1 or world.scale == scale:
        return world
    if world.scale != 1:
        raise ReproError(
            f"world {world.name!r} is already scaled to {world.scale}x; "
            f"build from the base world to get {scale}x"
        )
    return scale_world(world, scale)


def _materialize(
    schema: DatabaseSchema, rows: dict[str, list[tuple]]
) -> Database:
    db = Database.in_memory()
    db.create_schema(schema)
    for table in schema.tables:
        table_rows = rows.get(table.name, [])
        if table_rows:
            db.insert_rows(table.name, table.column_names(), table_rows)
    _index_foreign_keys(db, schema)
    return db


def _index_foreign_keys(db: Database, schema: DatabaseSchema) -> None:
    """Index every FK's referencing columns (SQLite only auto-indexes PKs)."""
    for table in schema.tables:
        for fk in table.foreign_keys:
            db.create_index(table.name, fk.columns)


def _index_expansion_keys(db: Database, world: World) -> None:
    """Index the join-key columns hybrid rewrites probe on source tables.

    Every LLMMap/LLMJoin over a source table fetches DISTINCT key
    tuples and the rewritten query re-joins on them; without an index
    both are full scans per question.
    """
    for expansion in world.expansions:
        if not db.has_table(expansion.source_table):
            continue
        present = set(db.table_columns(expansion.source_table))
        if all(column in present for column in expansion.key_columns):
            db.create_index(expansion.source_table, expansion.key_columns)


def build_original_database(world: World, scale: int = 1) -> Database:
    """The full (uncurated) database for gold-query execution.

    ``scale`` > 1 synthesizes the FK-consistent larger population first
    (a no-op when ``world`` was already built at that scale).
    """
    world = _at_scale(world, scale)
    return _materialize(world.original_schema, world.original_rows)


def build_curated_database(world: World, scale: int = 1) -> Database:
    """The curated database hybrid pipelines query."""
    world = _at_scale(world, scale)
    db = _materialize(world.curated_schema, world.curated_rows)
    _index_expansion_keys(db, world)
    return db


def save_databases(
    world: World, directory: Union[str, Path], scale: int = 1
) -> tuple[Path, Path]:
    """Write both databases to ``<dir>/<name>_original.db`` / ``_curated.db``."""
    world = _at_scale(world, scale)
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    original_path = directory / f"{world.name}_original.db"
    curated_path = directory / f"{world.name}_curated.db"
    with build_original_database(world) as original:
        original_path.unlink(missing_ok=True)
        original.save_to(original_path)
    with build_curated_database(world) as curated:
        curated_path.unlink(missing_ok=True)
        curated.save_to(curated_path)
    return original_path, curated_path
