"""Benchmark self-check: the perfect-model consistency property as an API.

For each question, the three hand-written queries must agree exactly when
the LLM never errs: gold SQL on the original database, HQDL's hybrid SQL
on the expanded database, and the BlendSQL-dialect query through the UDF
executor.  The integration test suite asserts this; :func:`validate_swan`
exposes the same check to users extending the benchmark with their own
questions or worlds (``python -m repro.harness validate``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.hqdl import HQDL
from repro.errors import ReproError
from repro.llm.chat import MockChatModel
from repro.llm.oracle import KnowledgeOracle
from repro.llm.profiles import get_profile
from repro.sqlengine.results import results_match
from repro.swan.benchmark import Swan
from repro.swan.build import build_curated_database, build_original_database
from repro.udf.executor import HybridQueryExecutor


@dataclass(frozen=True)
class ValidationIssue:
    """One consistency violation."""

    qid: str
    pipeline: str  # 'hqdl' | 'udf' | 'gold'
    detail: str


@dataclass
class ValidationReport:
    """Outcome of a full benchmark self-check."""

    questions: int = 0
    issues: list[ValidationIssue] = field(default_factory=list)
    empty_gold: list[str] = field(default_factory=list)

    @property
    def consistent(self) -> bool:
        return not self.issues

    def summary(self) -> str:
        """A one-screen human-readable verdict."""
        if self.consistent and not self.empty_gold:
            return (
                f"OK: all {self.questions} questions consistent under a "
                "perfect model; no empty gold answers"
            )
        lines = [f"{len(self.issues)} issue(s) over {self.questions} questions:"]
        lines.extend(
            f"  [{issue.pipeline}] {issue.qid}: {issue.detail}"
            for issue in self.issues[:20]
        )
        if self.empty_gold:
            lines.append(f"  empty gold answers: {', '.join(self.empty_gold[:10])}")
        return "\n".join(lines)


def validate_swan(swan: Swan) -> ValidationReport:
    """Check the gold/HQDL/UDF agreement for every question."""
    report = ValidationReport()
    profile = get_profile("perfect")
    for name in swan.database_names():
        world = swan.world(name)
        hqdl_model = MockChatModel(KnowledgeOracle(world), profile)
        udf_model = MockChatModel(KnowledgeOracle(world), profile)
        pipeline = HQDL(world, hqdl_model, shots=0)
        with build_original_database(world) as orig, \
                pipeline.build_expanded_database() as expanded, \
                build_curated_database(world) as curated:
            executor = HybridQueryExecutor(curated, udf_model, world)
            for question in swan.questions_for(name):
                report.questions += 1
                try:
                    expected = orig.query(question.gold_sql)
                except ReproError as exc:
                    report.issues.append(
                        ValidationIssue(question.qid, "gold", str(exc))
                    )
                    continue
                if expected.is_empty():
                    report.empty_gold.append(question.qid)
                _check(
                    report, question, "hqdl", expected,
                    lambda: pipeline.answer(expanded, question),
                )
                _check(
                    report, question, "udf", expected,
                    lambda: executor.execute(question.blend_sql),
                )
    return report


def _check(report, question, pipeline_name, expected, run) -> None:
    try:
        actual = run()
    except ReproError as exc:
        report.issues.append(ValidationIssue(question.qid, pipeline_name, str(exc)))
        return
    if not results_match(expected, actual, ordered=question.ordered):
        report.issues.append(
            ValidationIssue(
                question.qid,
                pipeline_name,
                f"result mismatch ({len(expected)} gold rows, "
                f"{len(actual)} hybrid rows)",
            )
        )
