"""The SWAN benchmark entry point.

:func:`load_benchmark` assembles the four worlds and their questions into
a :class:`Swan` object — the unit every pipeline and experiment consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.errors import ReproError
from repro.swan.base import Question, World

#: Canonical database order, as in the paper's tables.
DATABASE_ORDER = (
    "california_schools",
    "superhero",
    "formula_1",
    "european_football",
)

#: Human-readable titles, matching the paper's column headers.
DATABASE_TITLES = {
    "california_schools": "California Schools",
    "superhero": "Super Hero",
    "formula_1": "Formula One",
    "european_football": "European Football",
}


@dataclass
class Swan:
    """The full benchmark: four worlds and 120 questions."""

    worlds: dict[str, World]
    questions: list[Question] = field(default_factory=list)

    def world(self, name: str) -> World:
        try:
            return self.worlds[name]
        except KeyError as exc:
            raise ReproError(
                f"unknown SWAN database {name!r}; have {sorted(self.worlds)}"
            ) from exc

    def questions_for(self, database: str) -> list[Question]:
        return [q for q in self.questions if q.database == database]

    def question(self, qid: str) -> Question:
        for question in self.questions:
            if question.qid == qid:
                return question
        raise ReproError(f"unknown question id {qid!r}")

    def database_names(self) -> list[str]:
        return [name for name in DATABASE_ORDER if name in self.worlds]

    def stats_table(self) -> list[dict[str, object]]:
        """Rows of the paper's Table 1 for the loaded worlds."""
        return [self.worlds[name].stats() for name in self.database_names()]


@lru_cache(maxsize=4)
def _cached_benchmark(scale: int = 1) -> Swan:
    # imported lazily so world construction stays importable on its own
    from repro.swan.questions import all_questions
    from repro.swan.scale import scale_world
    from repro.swan.worlds import WORLD_BUILDERS

    worlds = {
        name: scale_world(builder(), scale)
        for name, builder in WORLD_BUILDERS.items()
    }
    questions = all_questions()
    by_db: dict[str, int] = {}
    for question in questions:
        if question.database not in worlds:
            raise ReproError(
                f"question {question.qid} references unknown database "
                f"{question.database!r}"
            )
        by_db[question.database] = by_db.get(question.database, 0) + 1
    return Swan(worlds=worlds, questions=questions)


def load_benchmark(scale: int = 1) -> Swan:
    """Load (and cache) the full SWAN benchmark at a row-multiplication
    ``scale`` (see :mod:`repro.swan.scale`; 1 is the hand-built base).

    Worlds are deterministic, so the cached instance is safe to share;
    callers that mutate databases must build their own
    :class:`~repro.sqlengine.database.Database` copies via
    :mod:`repro.swan.build`.
    """
    return _cached_benchmark(scale)


def load_benchmark_subset(scale: int, databases: list[str]) -> Swan:
    """An uncached Swan holding only ``databases``, scaled to ``scale``.

    Scaling a 100x world is expensive; benches that only exercise one
    database use this to avoid synthesizing (and caching) the other
    three at that scale.
    """
    from repro.swan.questions import all_questions
    from repro.swan.scale import scale_world
    from repro.swan.worlds import WORLD_BUILDERS

    unknown = [name for name in databases if name not in WORLD_BUILDERS]
    if unknown:
        raise ReproError(
            f"unknown SWAN databases {unknown}; have {sorted(WORLD_BUILDERS)}"
        )
    worlds = {
        name: scale_world(WORLD_BUILDERS[name](), scale) for name in databases
    }
    questions = [q for q in all_questions() if q.database in worlds]
    return Swan(worlds=worlds, questions=questions)
