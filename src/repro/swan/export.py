"""Export the SWAN benchmark to on-disk artifacts.

The original SWAN release ships as a directory of SQLite databases plus
question files.  :func:`export_benchmark` writes the same layout from
the synthetic benchmark, so downstream tools that consume file-based
benchmarks (text-to-SQL harnesses, BlendSQL itself) can run against it:

    <dir>/
      questions.json                 all 120 questions, all three queries
      value_lists.json               the retained distinct-value lists
      <database>_original.db         gold-query database
      <database>_curated.db          hybrid-query database
      <database>_expansions.json     expansion specs (keys, columns, kinds)
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Union

from repro.swan.base import World
from repro.swan.benchmark import Swan
from repro.swan.build import save_databases


def _expansion_payload(world: World) -> list[dict]:
    payload = []
    for expansion in world.expansions:
        payload.append(
            {
                "name": expansion.name,
                "source_table": expansion.source_table,
                "key_columns": list(expansion.key_columns),
                "columns": [
                    {
                        "name": column.name,
                        "kind": column.kind,
                        "value_list": column.value_list,
                        "description": column.description,
                    }
                    for column in expansion.columns
                ],
            }
        )
    return payload


def export_benchmark(swan: Swan, directory: Union[str, Path]) -> Path:
    """Write the full benchmark to ``directory``; returns the path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    questions_payload = [asdict(question) for question in swan.questions]
    (directory / "questions.json").write_text(
        json.dumps(questions_payload, indent=2, ensure_ascii=False)
    )

    value_lists = {
        name: world.value_lists for name, world in sorted(swan.worlds.items())
    }
    (directory / "value_lists.json").write_text(
        json.dumps(value_lists, indent=2, ensure_ascii=False)
    )

    for name in swan.database_names():
        world = swan.world(name)
        save_databases(world, directory)
        (directory / f"{name}_expansions.json").write_text(
            json.dumps(_expansion_payload(world), indent=2, ensure_ascii=False)
        )
    return directory


def load_questions(directory: Union[str, Path]) -> list[dict]:
    """Read back an exported questions.json (round-trip helper)."""
    path = Path(directory) / "questions.json"
    return json.loads(path.read_text())
