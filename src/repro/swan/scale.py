"""FK-consistent world scaling (SynSQL-style row multiplication).

:func:`scale_world` synthesizes a ``scale``-times larger copy of a
:class:`~repro.swan.base.World` while preserving every invariant the
pipelines rely on:

- **replica 0 is byte-identical** to the base world, so every base
  entity (and therefore every question) resolves exactly as before;
- **foreign keys stay consistent**: integer keys are offset by a
  per-table stride, text keys get a ``~r`` suffix, and every referencing
  column — declared FK or recognized by the shared-key-name convention —
  inherits the transform of the table it points at;
- **expansion keys stay human-readable**: replica ``r`` of an entity is
  named ``"<base> (<roman r+1>)"`` ("Spider-Man (II)"), which keeps key
  tuples unique, deterministic, and parseable by the prompt protocol;
- **truth, popularity, and curated rows are re-derived**, not mutated:
  the truth map is replicated under the suffixed keys and curated rows
  are re-projected from the scaled original rows (curation is a pure
  column projection).

Everything is a pure function of ``(world, scale)`` — no randomness —
so the same seed and scale always produce byte-identical databases.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import ReproError
from repro.sqlengine.schema import TableSchema
from repro.swan.base import World

__all__ = ["scale_world", "scaled_table_names", "replica_suffix"]

#: Roman-numeral digits, largest first, for replica naming.
_ROMAN = (
    (1000, "M"), (900, "CM"), (500, "D"), (400, "CD"),
    (100, "C"), (90, "XC"), (50, "L"), (40, "XL"),
    (10, "X"), (9, "IX"), (5, "V"), (4, "IV"), (1, "I"),
)


def _roman(number: int) -> str:
    parts = []
    for value, digits in _ROMAN:
        while number >= value:
            parts.append(digits)
            number -= value
    return "".join(parts)


def replica_suffix(replica: int) -> str:
    """The key suffix of replica ``replica`` (>= 1): ``" (II)"``, ..."""
    return f" ({_roman(replica + 1)})"


def _distinctive_pk_names(schema) -> dict[str, str]:
    """Single-column PK names that identify exactly one table.

    Fact tables without declared FKs (``pit_stops``-style) reference
    their dimensions by reusing the dimension's PK column name; a name
    is only *distinctive* when one table owns it and it is not a
    generic ``id``, so ``race_id`` maps to ``races`` but ``id`` maps to
    nothing.
    """
    owners: dict[str, list[str]] = {}
    for table in schema.tables:
        if len(table.primary_key) == 1:
            owners.setdefault(table.primary_key[0], []).append(table.name)
    return {
        name: tables[0]
        for name, tables in owners.items()
        if len(tables) == 1 and name.lower() != "id"
    }


def scaled_table_names(world: World) -> set[str]:
    """Tables whose rows multiply: expansion sources plus every table
    reaching them through declared FKs or shared distinctive key names."""
    schema = world.original_schema
    distinctive = _distinctive_pk_names(schema)
    scaled = {expansion.source_table for expansion in world.expansions}
    changed = True
    while changed:
        changed = False
        for table in schema.tables:
            if table.name in scaled:
                continue
            references = any(
                fk.ref_table in scaled for fk in table.foreign_keys
            ) or any(
                column in distinctive
                and distinctive[column] in scaled
                and distinctive[column] != table.name
                for column in table.column_names()
            )
            if references:
                scaled.add(table.name)
                changed = True
    return scaled


def _pk_transforms(
    world: World, scaled: set[str]
) -> dict[str, Callable[[object, int], object]]:
    """Per scaled table, the value transform of its single-column PK."""
    transforms: dict[str, Callable[[object, int], object]] = {}
    for table in world.original_schema.tables:
        if table.name not in scaled or len(table.primary_key) != 1:
            continue
        index = table.column_names().index(table.primary_key[0])
        values = [row[index] for row in world.original_rows.get(table.name, [])]
        if values and all(isinstance(v, int) for v in values):
            stride = max(values)
            transforms[table.name] = (
                lambda value, replica, _s=stride: value + replica * _s
            )
        else:
            transforms[table.name] = (
                lambda value, replica: f"{value}~{replica}"
            )
    return transforms


def _key_suffix_transform(value: object, replica: int) -> object:
    return f"{value}{replica_suffix(replica)}"


def _column_transforms(
    table: TableSchema,
    world: World,
    scaled: set[str],
    distinctive: dict[str, str],
    pk_transforms: dict[str, Callable[[object, int], object]],
) -> list[Optional[Callable[[object, int], object]]]:
    """One transform (or None = copy) per column of ``table``.

    Precedence per column: declared FK into a scaled table, then the
    shared-distinctive-name convention, then the table's own single PK,
    then expansion key suffixing; everything else copies verbatim.
    """
    fk_targets: dict[str, str] = {}
    for fk in table.foreign_keys:
        if fk.ref_table in scaled:
            for column in fk.columns:
                fk_targets[column] = fk.ref_table
    single_pk = table.primary_key[0] if len(table.primary_key) == 1 else None
    source_keys: set[str] = set()
    for expansion in world.expansions:
        if expansion.source_table == table.name:
            source_keys.update(expansion.key_columns)
    transforms: list[Optional[Callable[[object, int], object]]] = []
    for column in table.column_names():
        if column in fk_targets:
            transforms.append(pk_transforms[fk_targets[column]])
        elif (
            column in distinctive
            and distinctive[column] in scaled
            and (distinctive[column] != table.name or column == single_pk)
        ):
            transforms.append(pk_transforms[distinctive[column]])
        elif column == single_pk:
            transforms.append(pk_transforms[table.name])
        elif column in source_keys:
            transforms.append(_key_suffix_transform)
        else:
            transforms.append(None)
    return transforms


def _scale_rows(world: World, scale: int, scaled: set[str]) -> dict[str, list[tuple]]:
    distinctive = _distinctive_pk_names(world.original_schema)
    pk_transforms = _pk_transforms(world, scaled)
    rows: dict[str, list[tuple]] = {}
    for table in world.original_schema.tables:
        base = world.original_rows.get(table.name, [])
        if table.name not in scaled:
            rows[table.name] = list(base)
            continue
        transforms = _column_transforms(
            table, world, scaled, distinctive, pk_transforms
        )
        active = [
            (index, transform)
            for index, transform in enumerate(transforms)
            if transform is not None
        ]
        scaled_rows = list(base)
        for replica in range(1, scale):
            for row in base:
                mutated = list(row)
                for index, transform in active:
                    value = mutated[index]
                    if value is not None:
                        mutated[index] = transform(value, replica)
                scaled_rows.append(tuple(mutated))
        rows[table.name] = scaled_rows
    return rows


def _project_curated(world: World, original_rows: dict[str, list[tuple]]):
    """Re-derive curated rows from scaled originals (pure projection)."""
    curated: dict[str, list[tuple]] = {}
    for table in world.curated_schema.tables:
        source = world.original_schema.table(table.name)
        source_names = source.column_names()
        keep = [source_names.index(name) for name in table.column_names()]
        scaled_rows = original_rows[table.name]
        if keep == list(range(len(source_names))):
            curated[table.name] = list(scaled_rows)
        else:
            curated[table.name] = [
                tuple(row[index] for index in keep) for row in scaled_rows
            ]
    return curated


def _replicate_keyed(mapping: dict[tuple, object], scale: int, what: str):
    """Replicate a key-tuple-indexed mapping under suffixed keys.

    Replica 0 keeps the base keys (and base iteration order — the first
    ``len(mapping)`` keys of the result are exactly the base keys), so
    key order, demonstrations, and prompt bytes at the base entities are
    untouched.
    """
    replicated: dict[tuple, object] = {}
    for replica in range(scale):
        if replica == 0:
            replicated.update(mapping)
            continue
        suffix = replica_suffix(replica)
        for key, value in mapping.items():
            replicated[tuple(f"{part}{suffix}" for part in key)] = value
    if len(replicated) != len(mapping) * scale:
        raise ReproError(
            f"replica key collision while scaling {what}; "
            "base keys may not contain replica suffixes"
        )
    return replicated


def scale_world(world: World, scale: int) -> World:
    """A ``scale``-times larger copy of ``world`` (``scale=1`` is a no-op).

    Only the row population changes — schemas, expansions, value lists,
    and question semantics are untouched.  The scaled world is a new
    object; the input world is never mutated.
    """
    if scale < 1:
        raise ReproError(f"scale must be >= 1, got {scale}")
    if scale == 1:
        return world
    scaled = scaled_table_names(world)
    original_rows = _scale_rows(world, scale, scaled)
    curated_rows = _project_curated(world, original_rows)
    truth = {
        name: _replicate_keyed(mapping, scale, f"truth[{name}]")
        for name, mapping in world.truth.items()
    }
    popularity = {
        name: _replicate_keyed(mapping, scale, f"popularity[{name}]")
        for name, mapping in world.popularity.items()
    }
    return World(
        name=world.name,
        title=world.title,
        original_schema=world.original_schema,
        curated_schema=world.curated_schema,
        original_rows=original_rows,
        curated_rows=curated_rows,
        expansions=world.expansions,
        truth=truth,
        value_lists=world.value_lists,
        dropped_columns=world.dropped_columns,
        popularity=popularity,
        scale=scale,
    )
