"""Schema curation: turning an original database into a SWAN database.

Section 3.2 of the paper: columns and whole tables are removed so that a
class of questions becomes unanswerable from the database alone, while
distinct-value lists of removed categorical attributes are retained to
help LLMs format output.  :func:`apply_curation` performs the drops and
reports how many columns were removed (the paper's Table 1 statistic).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CurationError
from repro.sqlengine.schema import DatabaseSchema, TableSchema


@dataclass(frozen=True)
class CurationPlan:
    """What to remove from an original database.

    ``drop_columns`` maps table name → columns to drop; ``drop_tables``
    lists tables removed entirely.  A dropped table counts all its columns
    toward the dropped-column total, matching how Table 1 counts the
    Superhero ``publisher`` table.
    """

    drop_columns: dict[str, tuple[str, ...]] = field(default_factory=dict)
    drop_tables: tuple[str, ...] = ()


@dataclass
class CurationResult:
    """The curated schema and rows, plus audit numbers."""

    schema: DatabaseSchema
    rows: dict[str, list[tuple]]
    dropped_columns: int


def apply_curation(
    schema: DatabaseSchema,
    rows: dict[str, list[tuple]],
    plan: CurationPlan,
) -> CurationResult:
    """Apply a curation plan to an original database.

    Raises :class:`CurationError` when the plan names unknown tables or
    columns — curation plans are hand-written and must match the world.
    """
    for table_name in plan.drop_tables:
        if not schema.has_table(table_name):
            raise CurationError(f"plan drops unknown table {table_name!r}")
    for table_name, columns in plan.drop_columns.items():
        if not schema.has_table(table_name):
            raise CurationError(f"plan drops columns of unknown table {table_name!r}")
        if table_name in plan.drop_tables:
            raise CurationError(
                f"table {table_name!r} is dropped entirely; do not also drop columns"
            )
        table = schema.table(table_name)
        unknown = [c for c in columns if not table.has_column(c)]
        if unknown:
            raise CurationError(
                f"plan drops unknown columns {unknown} of table {table_name!r}"
            )

    dropped = 0
    curated_tables: list[TableSchema] = []
    curated_rows: dict[str, list[tuple]] = {}
    for table in schema.tables:
        if table.name in plan.drop_tables:
            dropped += len(table.columns)
            continue
        to_drop = plan.drop_columns.get(table.name, ())
        if to_drop:
            keep_indexes = [
                index
                for index, column in enumerate(table.columns)
                if column.name not in to_drop
            ]
            curated = table.without_columns(to_drop)
            dropped += len(to_drop)
            curated_tables.append(curated)
            curated_rows[table.name] = [
                tuple(row[i] for i in keep_indexes) for row in rows[table.name]
            ]
        else:
            curated_tables.append(table)
            curated_rows[table.name] = list(rows[table.name])
    curated_schema = DatabaseSchema(name=schema.name, tables=curated_tables)
    return CurationResult(curated_schema, curated_rows, dropped)


def distinct_values(rows: list[tuple], column_index: int) -> list[str]:
    """The sorted distinct values of one column — a retained value list."""
    seen = {str(row[column_index]) for row in rows if row[column_index] is not None}
    return sorted(seen)
