"""Per-question phrasing variants for the hybrid UDF queries.

Section 5.5 of the paper: BlendSQL caches completions by *prompt text*,
so two hybrid queries that ask for the same attribute with different
wording ("Is the superhero from the Marvel Universe?" versus "Does the
hero come from Marvel?") cannot reuse each other's generations.  To
reproduce that behaviour the 120 SWAN queries must not share one
canonical phrasing per attribute — each query gets its own wording,
rotated from a small pool of natural paraphrases.

Every paraphrase preserves the keyword cues the simulated model resolves
attributes by, which the benchmark's perfect-model consistency test
verifies end to end.
"""

from __future__ import annotations

import re

from repro.swan.base import Question


def attach_value_options(
    questions: list[Question],
    value_lists: dict[str, str],
) -> list[Question]:
    """Add ``options='<value list>'`` to LLMMap calls per attribute.

    SWAN retains the distinct values of dropped categorical columns
    (Section 3.3) and the hybrid UDF queries pass them to the LLM so it
    selects rather than free-forms.  ``value_lists`` maps the canonical
    map-question text to the name of the retained value list; run this
    *before* phrasing variation so the canonical text still matches.
    """
    rewritten: list[Question] = []
    for question in questions:
        blend = question.blend_sql
        for canonical, list_name in value_lists.items():
            pattern = re.compile(
                r"(\{\{LLMMap\('" + re.escape(canonical) + r"'[^}]*?)\)\}\}"
            )
            blend = pattern.sub(
                lambda m: f"{m.group(1)}, options='{list_name}')}}}}", blend
            )
        if blend != question.blend_sql:
            question = _with_blend(question, blend)
        rewritten.append(question)
    return rewritten


def _with_blend(question: Question, blend_sql: str) -> Question:
    return Question(
        qid=question.qid,
        database=question.database,
        text=question.text,
        gold_sql=question.gold_sql,
        hqdl_sql=question.hqdl_sql,
        blend_sql=blend_sql,
        expansion_columns=question.expansion_columns,
        ordered=question.ordered,
    )


def vary_blend_questions(
    questions: list[Question],
    variants: dict[str, list[str]],
) -> list[Question]:
    """Rewrite each question's blend SQL with a rotated paraphrase.

    ``variants`` maps a canonical map/QA question text to its paraphrase
    pool (the canonical text itself should be the first entry).  The
    paraphrase is chosen by the question's position, so each hybrid query
    gets a stable, distinct wording — and the UDF prompt cache only helps
    within one query, as in BlendSQL.
    """
    varied: list[Question] = []
    for index, question in enumerate(questions):
        blend = question.blend_sql
        for canonical, pool in variants.items():
            if canonical in blend and pool:
                replacement = pool[index % len(pool)]
                blend = blend.replace(canonical, replacement)
        if blend != question.blend_sql:
            question = _with_blend(question, blend)
        varied.append(question)
    return varied
