"""The 120 SWAN beyond-database questions (30 per database).

Each question carries three hand-written, fully executable queries
(Section 3.5 of the paper):

- ``gold_sql`` — the answer definition, runs on the *original* database;
- ``hqdl_sql`` — a regular SQL query over the curated schema *plus* the
  LLM-materialized expansion tables (HQDL's schema-expansion solution);
- ``blend_sql`` — the BlendSQL-dialect hybrid query with ``{{LLMMap}}`` /
  ``{{LLMQA}}`` ingredients, executed by :mod:`repro.udf`.

An integration test verifies, for every question, that the three agree
exactly when the LLM is perfect — i.e. the hybrid queries are *correct*
and any EX loss in the experiments comes from model errors alone.
"""

from repro.swan.base import Question
from repro.swan.questions.california_schools import QUESTIONS as CALIFORNIA_SCHOOLS
from repro.swan.questions.european_football import QUESTIONS as EUROPEAN_FOOTBALL
from repro.swan.questions.formula_one import QUESTIONS as FORMULA_ONE
from repro.swan.questions.superhero import QUESTIONS as SUPERHERO


def all_questions() -> list[Question]:
    """All 120 questions in canonical database order."""
    return [
        *CALIFORNIA_SCHOOLS,
        *SUPERHERO,
        *FORMULA_ONE,
        *EUROPEAN_FOOTBALL,
    ]


__all__ = [
    "all_questions",
    "CALIFORNIA_SCHOOLS",
    "SUPERHERO",
    "FORMULA_ONE",
    "EUROPEAN_FOOTBALL",
]
