"""The 30 European Football beyond-database questions.

Most expansion columns here are numeric (height, weight, birth year),
where exact-match evaluation is unforgiving — the paper's Table 2 shows
this database with the lowest execution accuracy.  The Section 5.5 cost
pair ("height of the tallest player" / "players taller than 180cm") are
questions 1 and 2.
"""

from __future__ import annotations

from repro.swan.base import Question

_DB = "european_football"

_JP = "JOIN player_info pi ON p.player_name = pi.player_name"
_JT = "JOIN team_info ti ON t.team_long_name = ti.team_long_name"

_KP = "'player::player_name'"
_KT = "'team::team_long_name'"

_H_Q = "What is the height in centimeters of this football player?"
_W_Q = "What is the weight in kilograms of this football player?"
_B_Q = "In which year was this football player born?"
_S_Q = "What is the short name of this football team?"

_H_MAP = f"CAST({{{{LLMMap('{_H_Q}', {_KP})}}}} AS INTEGER)"
_W_MAP = f"CAST({{{{LLMMap('{_W_Q}', {_KP})}}}} AS INTEGER)"
_B_MAP = f"CAST({{{{LLMMap('{_B_Q}', {_KP})}}}} AS INTEGER)"
_S_MAP = f"{{{{LLMMap('{_S_Q}', {_KT})}}}}"


def _q(number: int, text: str, gold: str, hqdl: str, blend: str,
       columns: tuple[str, ...], ordered: bool = False) -> Question:
    return Question(
        qid=f"european_football_q{number:02d}",
        database=_DB,
        text=text,
        gold_sql=gold,
        hqdl_sql=hqdl,
        blend_sql=blend,
        expansion_columns=columns,
        ordered=ordered,
    )


QUESTIONS: list[Question] = [
    _q(
        1,
        "What is the height of the tallest player?",
        "SELECT MAX(p.height_cm) FROM player p",
        f"SELECT MAX(pi.height_cm) FROM player p {_JP}",
        f"SELECT MAX({_H_MAP}) FROM player",
        ("height_cm",),
    ),
    _q(
        2,
        "List the names of players taller than 180 cm.",
        "SELECT p.player_name FROM player p WHERE p.height_cm > 180",
        f"SELECT p.player_name FROM player p {_JP} "
        "WHERE pi.height_cm > 180",
        f"SELECT player_name FROM player WHERE {_H_MAP} > 180",
        ("height_cm",),
    ),
    _q(
        3,
        "List the names and weights of the 5 heaviest players.",
        "SELECT p.player_name, p.weight_kg FROM player p "
        "ORDER BY p.weight_kg DESC, p.player_name LIMIT 5",
        f"SELECT p.player_name, pi.weight_kg FROM player p {_JP} "
        "ORDER BY pi.weight_kg DESC, p.player_name LIMIT 5",
        f"SELECT player_name, {_W_MAP} FROM player "
        f"ORDER BY {_W_MAP} DESC, player_name LIMIT 5",
        ("weight_kg",),
        ordered=True,
    ),
    _q(
        4,
        "What is the short name of the team FC Barcelona?",
        "SELECT t.team_short_name FROM team t "
        "WHERE t.team_long_name = 'FC Barcelona'",
        f"SELECT ti.team_short_name FROM team t {_JT} "
        "WHERE t.team_long_name = 'FC Barcelona'",
        f"SELECT {_S_MAP} FROM team "
        "WHERE team_long_name = 'FC Barcelona'",
        ("team_short_name",),
    ),
    _q(
        5,
        "List the names of players born before 1980.",
        "SELECT p.player_name FROM player p WHERE p.birth_year < 1980",
        f"SELECT p.player_name FROM player p {_JP} "
        "WHERE pi.birth_year < 1980",
        f"SELECT player_name FROM player WHERE {_B_MAP} < 1980",
        ("birth_year",),
    ),
    _q(
        6,
        "What is the average height of players with an overall rating above "
        "85 in the 2017-02-01 snapshot?",
        "SELECT AVG(p.height_cm) FROM player p "
        "JOIN player_attributes a ON p.id = a.player_id "
        "WHERE a.overall_rating > 85 AND a.snapshot_date = '2017-02-01'",
        f"SELECT AVG(pi.height_cm) FROM player p {_JP} "
        "JOIN player_attributes a ON p.id = a.player_id "
        "WHERE a.overall_rating > 85 AND a.snapshot_date = '2017-02-01'",
        f"SELECT AVG({_H_MAP}) FROM player "
        "JOIN player_attributes a ON player.id = a.player_id "
        "WHERE a.overall_rating > 85 AND a.snapshot_date = '2017-02-01'",
        ("height_cm",),
    ),
    _q(
        7,
        "How many players are taller than 190 cm?",
        "SELECT COUNT(*) FROM player p WHERE p.height_cm > 190",
        f"SELECT COUNT(*) FROM player p {_JP} WHERE pi.height_cm > 190",
        f"SELECT COUNT(*) FROM player WHERE {_H_MAP} > 190",
        ("height_cm",),
    ),
    _q(
        8,
        "Who is the youngest player (latest birth year)?",
        "SELECT p.player_name FROM player p "
        "ORDER BY p.birth_year DESC, p.player_name LIMIT 1",
        f"SELECT p.player_name FROM player p {_JP} "
        "ORDER BY pi.birth_year DESC, p.player_name LIMIT 1",
        f"SELECT player_name FROM player ORDER BY {_B_MAP} DESC, "
        "player_name LIMIT 1",
        ("birth_year",),
        ordered=True,
    ),
    _q(
        9,
        "List the short names of teams from Spain.",
        "SELECT t.team_short_name FROM team t "
        "JOIN country c ON t.country_id = c.id "
        "WHERE c.country_name = 'Spain'",
        f"SELECT ti.team_short_name FROM team t {_JT} "
        "JOIN country c ON t.country_id = c.id "
        "WHERE c.country_name = 'Spain'",
        f"SELECT {_S_MAP} FROM team t "
        "JOIN country c ON t.country_id = c.id "
        "WHERE c.country_name = 'Spain'",
        ("team_short_name",),
    ),
    _q(
        10,
        "What is the weight of Lionel Messi?",
        "SELECT p.weight_kg FROM player p "
        "WHERE p.player_name = 'Lionel Messi'",
        f"SELECT pi.weight_kg FROM player p {_JP} "
        "WHERE p.player_name = 'Lionel Messi'",
        f"SELECT {_W_MAP} FROM player "
        "WHERE player_name = 'Lionel Messi'",
        ("weight_kg",),
    ),
    _q(
        11,
        "List the names of players born in 1987.",
        "SELECT p.player_name FROM player p WHERE p.birth_year = 1987",
        f"SELECT p.player_name FROM player p {_JP} "
        "WHERE pi.birth_year = 1987",
        f"SELECT player_name FROM player WHERE {_B_MAP} = 1987",
        ("birth_year",),
    ),
    _q(
        12,
        "In which year was Cristiano Ronaldo born?",
        "SELECT p.birth_year FROM player p "
        "WHERE p.player_name = 'Cristiano Ronaldo'",
        f"SELECT pi.birth_year FROM player p {_JP} "
        "WHERE p.player_name = 'Cristiano Ronaldo'",
        f"SELECT {_B_MAP} FROM player "
        "WHERE player_name = 'Cristiano Ronaldo'",
        ("birth_year",),
    ),
    _q(
        13,
        "List the names and heights of players with sprint speed above 90 "
        "in the 2017-02-01 snapshot.",
        "SELECT p.player_name, p.height_cm FROM player p "
        "JOIN player_attributes a ON p.id = a.player_id "
        "WHERE a.sprint_speed > 90 AND a.snapshot_date = '2017-02-01'",
        f"SELECT p.player_name, pi.height_cm FROM player p {_JP} "
        "JOIN player_attributes a ON p.id = a.player_id "
        "WHERE a.sprint_speed > 90 AND a.snapshot_date = '2017-02-01'",
        f"SELECT player_name, {_H_MAP} FROM player "
        "JOIN player_attributes a ON player.id = a.player_id "
        "WHERE a.sprint_speed > 90 AND a.snapshot_date = '2017-02-01'",
        ("height_cm",),
    ),
    _q(
        14,
        "How many players were born in the 1990s (1990 through 1999)?",
        "SELECT COUNT(*) FROM player p "
        "WHERE p.birth_year BETWEEN 1990 AND 1999",
        f"SELECT COUNT(*) FROM player p {_JP} "
        "WHERE pi.birth_year BETWEEN 1990 AND 1999",
        f"SELECT COUNT(*) FROM player WHERE {_B_MAP} BETWEEN 1990 AND 1999",
        ("birth_year",),
    ),
    _q(
        15,
        "Which players are heavier than 90 kg and taller than 190 cm? "
        "List their names.",
        "SELECT p.player_name FROM player p "
        "WHERE p.weight_kg > 90 AND p.height_cm > 190",
        f"SELECT p.player_name FROM player p {_JP} "
        "WHERE pi.weight_kg > 90 AND pi.height_cm > 190",
        f"SELECT player_name FROM player WHERE {_W_MAP} > 90 "
        f"AND {_H_MAP} > 190",
        ("weight_kg", "height_cm"),
    ),
    _q(
        16,
        "What is the average weight of all players?",
        "SELECT AVG(p.weight_kg) FROM player p",
        f"SELECT AVG(pi.weight_kg) FROM player p {_JP}",
        f"SELECT AVG({_W_MAP}) FROM player",
        ("weight_kg",),
    ),
    _q(
        17,
        "List the long names and short names of teams from England.",
        "SELECT t.team_long_name, t.team_short_name FROM team t "
        "JOIN country c ON t.country_id = c.id "
        "WHERE c.country_name = 'England'",
        f"SELECT t.team_long_name, ti.team_short_name FROM team t {_JT} "
        "JOIN country c ON t.country_id = c.id "
        "WHERE c.country_name = 'England'",
        f"SELECT t.team_long_name, {_S_MAP} FROM team t "
        "JOIN country c ON t.country_id = c.id "
        "WHERE c.country_name = 'England'",
        ("team_short_name",),
    ),
    _q(
        18,
        "Who is the tallest player with an overall rating above 90 in the "
        "2017-02-01 snapshot?",
        "SELECT p.player_name FROM player p "
        "JOIN player_attributes a ON p.id = a.player_id "
        "WHERE a.overall_rating > 90 AND a.snapshot_date = '2017-02-01' "
        "ORDER BY p.height_cm DESC, p.player_name LIMIT 1",
        f"SELECT p.player_name FROM player p {_JP} "
        "JOIN player_attributes a ON p.id = a.player_id "
        "WHERE a.overall_rating > 90 AND a.snapshot_date = '2017-02-01' "
        "ORDER BY pi.height_cm DESC, p.player_name LIMIT 1",
        "SELECT player_name FROM player "
        "JOIN player_attributes a ON player.id = a.player_id "
        "WHERE a.overall_rating > 90 AND a.snapshot_date = '2017-02-01' "
        f"ORDER BY {_H_MAP} DESC, player_name LIMIT 1",
        ("height_cm",),
        ordered=True,
    ),
    _q(
        19,
        "How many players are shorter than 170 cm?",
        "SELECT COUNT(*) FROM player p WHERE p.height_cm < 170",
        f"SELECT COUNT(*) FROM player p {_JP} WHERE pi.height_cm < 170",
        f"SELECT COUNT(*) FROM player WHERE {_H_MAP} < 170",
        ("height_cm",),
    ),
    _q(
        20,
        "List the names of players whose height is between 175 and 180 cm "
        "inclusive.",
        "SELECT p.player_name FROM player p "
        "WHERE p.height_cm BETWEEN 175 AND 180",
        f"SELECT p.player_name FROM player p {_JP} "
        "WHERE pi.height_cm BETWEEN 175 AND 180",
        f"SELECT player_name FROM player WHERE {_H_MAP} "
        "BETWEEN 175 AND 180",
        ("height_cm",),
    ),
    _q(
        21,
        "What is the height of Zlatan Ibrahimovic?",
        "SELECT p.height_cm FROM player p "
        "WHERE p.player_name = 'Zlatan Ibrahimovic'",
        f"SELECT pi.height_cm FROM player p {_JP} "
        "WHERE p.player_name = 'Zlatan Ibrahimovic'",
        f"SELECT {_H_MAP} FROM player "
        "WHERE player_name = 'Zlatan Ibrahimovic'",
        ("height_cm",),
    ),
    _q(
        22,
        "List the names of the 3 oldest players (earliest birth year).",
        "SELECT p.player_name FROM player p "
        "ORDER BY p.birth_year ASC, p.player_name LIMIT 3",
        f"SELECT p.player_name FROM player p {_JP} "
        "ORDER BY pi.birth_year ASC, p.player_name LIMIT 3",
        f"SELECT player_name FROM player ORDER BY {_B_MAP} ASC, "
        "player_name LIMIT 3",
        ("birth_year",),
        ordered=True,
    ),
    _q(
        23,
        "What is the short name of the team that won the most home matches "
        "in season 2016/2017?",
        "SELECT t.team_short_name FROM team t "
        "JOIN match m ON t.id = m.home_team_id "
        "WHERE m.season = '2016/2017' AND m.home_team_goal > m.away_team_goal "
        "GROUP BY t.id ORDER BY COUNT(*) DESC, t.team_long_name LIMIT 1",
        f"SELECT ti.team_short_name FROM team t {_JT} "
        "JOIN match m ON t.id = m.home_team_id "
        "WHERE m.season = '2016/2017' AND m.home_team_goal > m.away_team_goal "
        "GROUP BY t.id ORDER BY COUNT(*) DESC, t.team_long_name LIMIT 1",
        f"SELECT {_S_MAP} FROM team t "
        "JOIN match m ON t.id = m.home_team_id "
        "WHERE m.season = '2016/2017' AND m.home_team_goal > m.away_team_goal "
        "GROUP BY t.id ORDER BY COUNT(*) DESC, t.team_long_name LIMIT 1",
        ("team_short_name",),
        ordered=True,
    ),
    _q(
        24,
        "List the names of players whose body mass index (weight in kg over "
        "squared height in meters) is above 25.",
        "SELECT p.player_name FROM player p "
        "WHERE p.weight_kg * 10000.0 / (p.height_cm * p.height_cm) > 25",
        f"SELECT p.player_name FROM player p {_JP} "
        "WHERE pi.weight_kg * 10000.0 / (pi.height_cm * pi.height_cm) > 25",
        f"SELECT player_name FROM player WHERE {_W_MAP} * 10000.0 / "
        f"({_H_MAP} * {_H_MAP}) > 25",
        ("weight_kg", "height_cm"),
    ),
    _q(
        25,
        "How many teams have a short name starting with 'A'?",
        "SELECT COUNT(*) FROM team t WHERE t.team_short_name LIKE 'A%'",
        f"SELECT COUNT(*) FROM team t {_JT} "
        "WHERE ti.team_short_name LIKE 'A%'",
        f"SELECT COUNT(*) FROM team WHERE {_S_MAP} LIKE 'A%'",
        ("team_short_name",),
    ),
    _q(
        26,
        "List the names of left-footed players taller than 185 cm in the "
        "2017-02-01 snapshot.",
        "SELECT p.player_name FROM player p "
        "JOIN player_attributes a ON p.id = a.player_id "
        "WHERE a.preferred_foot = 'left' AND a.snapshot_date = '2017-02-01' "
        "AND p.height_cm > 185",
        f"SELECT p.player_name FROM player p {_JP} "
        "JOIN player_attributes a ON p.id = a.player_id "
        "WHERE a.preferred_foot = 'left' AND a.snapshot_date = '2017-02-01' "
        "AND pi.height_cm > 185",
        "SELECT player_name FROM player "
        "JOIN player_attributes a ON player.id = a.player_id "
        "WHERE a.preferred_foot = 'left' AND a.snapshot_date = '2017-02-01' "
        f"AND {_H_MAP} > 185",
        ("height_cm",),
    ),
    _q(
        27,
        "What is the average birth year of players with potential above 90 "
        "in the 2015-02-01 snapshot?",
        "SELECT AVG(p.birth_year) FROM player p "
        "JOIN player_attributes a ON p.id = a.player_id "
        "WHERE a.potential > 90 AND a.snapshot_date = '2015-02-01'",
        f"SELECT AVG(pi.birth_year) FROM player p {_JP} "
        "JOIN player_attributes a ON p.id = a.player_id "
        "WHERE a.potential > 90 AND a.snapshot_date = '2015-02-01'",
        f"SELECT AVG({_B_MAP}) FROM player "
        "JOIN player_attributes a ON player.id = a.player_id "
        "WHERE a.potential > 90 AND a.snapshot_date = '2015-02-01'",
        ("birth_year",),
    ),
    _q(
        28,
        "List the names and birth years of players whose name starts "
        "with 'L'.",
        "SELECT p.player_name, p.birth_year FROM player p "
        "WHERE p.player_name LIKE 'L%'",
        f"SELECT p.player_name, pi.birth_year FROM player p {_JP} "
        "WHERE p.player_name LIKE 'L%'",
        f"SELECT player_name, {_B_MAP} FROM player "
        "WHERE player_name LIKE 'L%'",
        ("birth_year",),
    ),
    _q(
        29,
        "Which team from Italy has the short name 'JUV'?",
        "SELECT t.team_long_name FROM team t "
        "JOIN country c ON t.country_id = c.id "
        "WHERE c.country_name = 'Italy' AND t.team_short_name = 'JUV'",
        f"SELECT t.team_long_name FROM team t {_JT} "
        "JOIN country c ON t.country_id = c.id "
        "WHERE c.country_name = 'Italy' AND ti.team_short_name = 'JUV'",
        "SELECT t.team_long_name FROM team t "
        "JOIN country c ON t.country_id = c.id "
        f"WHERE c.country_name = 'Italy' AND {_S_MAP} = 'JUV'",
        ("team_short_name",),
    ),
    _q(
        30,
        "What is the combined height of the two tallest players?",
        "SELECT SUM(h) FROM (SELECT p.height_cm AS h FROM player p "
        "ORDER BY p.height_cm DESC, p.player_name LIMIT 2) sub",
        "SELECT SUM(h) FROM (SELECT pi.height_cm AS h FROM player p "
        f"{_JP} ORDER BY pi.height_cm DESC, p.player_name LIMIT 2) sub",
        f"SELECT SUM(h) FROM (SELECT {_H_MAP} AS h FROM player "
        f"ORDER BY {_H_MAP} DESC, player_name LIMIT 2) sub",
        ("height_cm",),
    ),
]


# -- phrasing variants (Section 5.5: per-query wording defeats the cache) ----

from repro.swan.questions.variants import vary_blend_questions  # noqa: E402

_QUESTION_VARIANTS = {
    _H_Q: [
        _H_Q,
        "How tall is this football player in centimeters?",
        "Give the height (cm) of this football player.",
    ],
    _W_Q: [
        _W_Q,
        "How heavy is this football player in kilograms?",
        "Give the weight (kg) of this football player.",
    ],
    _B_Q: [
        _B_Q,
        "What is the birth year of this football player?",
        "Which year was this football player born in?",
    ],
    _S_Q: [
        _S_Q,
        "What is the abbreviation (short name) of this football team?",
        "Give the short name of this football team.",
    ],
}

QUESTIONS = vary_blend_questions(QUESTIONS, _QUESTION_VARIANTS)
