"""The 30 Superhero beyond-database questions.

The curated database lost every lookup foreign key plus the publisher and
hero_power tables, so anything touching publishers, colours, race, gender,
alignment or powers is beyond-database.  Only about a tenth of these
questions carry a LIMIT clause — the paper links that to the low
execution accuracy on this database (errors cannot hide behind a top-k).
"""

from __future__ import annotations

from repro.swan.base import Question

_DB = "superhero"

#: Expansion join used by every HQDL query below.
_J = (
    "JOIN superhero_info i ON s.superhero_name = i.superhero_name "
    "AND s.full_name = i.full_name"
)

#: Ingredient key arguments shared by all LLMMap calls on this database.
_K = "'superhero::superhero_name', 'superhero::full_name'"


def _q(number: int, text: str, gold: str, hqdl: str, blend: str,
       columns: tuple[str, ...], ordered: bool = False) -> Question:
    return Question(
        qid=f"superhero_q{number:02d}",
        database=_DB,
        text=text,
        gold_sql=gold,
        hqdl_sql=hqdl,
        blend_sql=blend,
        expansion_columns=columns,
        ordered=ordered,
    )


QUESTIONS: list[Question] = [
    _q(
        1,
        "List the superhero names of all heroes published by Marvel Comics.",
        "SELECT s.superhero_name FROM superhero s "
        "JOIN publisher p ON s.publisher_id = p.id "
        "WHERE p.publisher_name = 'Marvel Comics'",
        f"SELECT s.superhero_name FROM superhero s {_J} "
        "WHERE i.publisher_name = 'Marvel Comics'",
        "SELECT superhero_name FROM superhero WHERE "
        "{{LLMMap('Which comic book publisher published this superhero?', "
        f"{_K})}}}} = 'Marvel Comics'",
        ("publisher_name",),
    ),
    _q(
        2,
        "List the superhero names and full names of heroes from DC Comics.",
        "SELECT s.superhero_name, s.full_name FROM superhero s "
        "JOIN publisher p ON s.publisher_id = p.id "
        "WHERE p.publisher_name = 'DC Comics'",
        f"SELECT s.superhero_name, s.full_name FROM superhero s {_J} "
        "WHERE i.publisher_name = 'DC Comics'",
        "SELECT superhero_name, full_name FROM superhero WHERE "
        "{{LLMMap('Which comic book publisher published this superhero?', "
        f"{_K})}}}} = 'DC Comics'",
        ("publisher_name",),
    ),
    _q(
        3,
        "How many heroes did each publisher publish? Order by the count "
        "descending, then by publisher name.",
        "SELECT p.publisher_name, COUNT(*) FROM superhero s "
        "JOIN publisher p ON s.publisher_id = p.id "
        "GROUP BY p.publisher_name ORDER BY COUNT(*) DESC, p.publisher_name",
        f"SELECT i.publisher_name, COUNT(*) FROM superhero s {_J} "
        "GROUP BY i.publisher_name ORDER BY COUNT(*) DESC, i.publisher_name",
        "SELECT pub, COUNT(*) FROM (SELECT "
        "{{LLMMap('Which comic book publisher published this superhero?', "
        f"{_K})}}}} AS pub FROM superhero) sub "
        "GROUP BY pub ORDER BY COUNT(*) DESC, pub",
        ("publisher_name",),
        ordered=True,
    ),
    _q(
        4,
        "How many superheroes have blue eyes?",
        "SELECT COUNT(*) FROM superhero s "
        "JOIN colour c ON s.eye_colour_id = c.id WHERE c.colour = 'Blue'",
        f"SELECT COUNT(*) FROM superhero s {_J} WHERE i.eye_color = 'Blue'",
        "SELECT COUNT(*) FROM superhero WHERE "
        "{{LLMMap('What is the eye color of this superhero?', "
        f"{_K})}}}} = 'Blue'",
        ("eye_color",),
    ),
    _q(
        5,
        "List the superhero names of heroes with green skin.",
        "SELECT s.superhero_name FROM superhero s "
        "JOIN colour c ON s.skin_colour_id = c.id WHERE c.colour = 'Green'",
        f"SELECT s.superhero_name FROM superhero s {_J} "
        "WHERE i.skin_color = 'Green'",
        "SELECT superhero_name FROM superhero WHERE "
        "{{LLMMap('What is the skin color of this superhero?', "
        f"{_K})}}}} = 'Green'",
        ("skin_color",),
    ),
    _q(
        6,
        "Which heroes have both blond hair and blue eyes? "
        "List their superhero names.",
        "SELECT s.superhero_name FROM superhero s "
        "JOIN colour ch ON s.hair_colour_id = ch.id "
        "JOIN colour ce ON s.eye_colour_id = ce.id "
        "WHERE ch.colour = 'Blond' AND ce.colour = 'Blue'",
        f"SELECT s.superhero_name FROM superhero s {_J} "
        "WHERE i.hair_color = 'Blond' AND i.eye_color = 'Blue'",
        "SELECT superhero_name FROM superhero WHERE "
        "{{LLMMap('What is the hair color of this superhero?', "
        f"{_K})}}}} = 'Blond' AND "
        "{{LLMMap('What is the eye color of this superhero?', "
        f"{_K})}}}} = 'Blue'",
        ("hair_color", "eye_color"),
    ),
    _q(
        7,
        "List the superhero names of villains (Bad alignment) published by "
        "DC Comics.",
        "SELECT s.superhero_name FROM superhero s "
        "JOIN publisher p ON s.publisher_id = p.id "
        "JOIN alignment a ON s.alignment_id = a.id "
        "WHERE p.publisher_name = 'DC Comics' AND a.alignment = 'Bad'",
        f"SELECT s.superhero_name FROM superhero s {_J} "
        "WHERE i.publisher_name = 'DC Comics' AND i.moral_alignment = 'Bad'",
        "SELECT superhero_name FROM superhero WHERE "
        "{{LLMMap('Which comic book publisher published this superhero?', "
        f"{_K})}}}} = 'DC Comics' AND "
        "{{LLMMap('What is the moral alignment of this superhero?', "
        f"{_K})}}}} = 'Bad'",
        ("publisher_name", "moral_alignment"),
    ),
    _q(
        8,
        "How many female heroes are published by Marvel Comics?",
        "SELECT COUNT(*) FROM superhero s "
        "JOIN publisher p ON s.publisher_id = p.id "
        "JOIN gender g ON s.gender_id = g.id "
        "WHERE p.publisher_name = 'Marvel Comics' AND g.gender = 'Female'",
        f"SELECT COUNT(*) FROM superhero s {_J} "
        "WHERE i.publisher_name = 'Marvel Comics' AND i.gender = 'Female'",
        "SELECT COUNT(*) FROM superhero WHERE "
        "{{LLMMap('Which comic book publisher published this superhero?', "
        f"{_K})}}}} = 'Marvel Comics' AND "
        "{{LLMMap('What is the gender of this superhero?', "
        f"{_K})}}}} = 'Female'",
        ("publisher_name", "gender"),
    ),
    _q(
        9,
        "List the superhero names of Human heroes taller than 185 cm.",
        "SELECT s.superhero_name FROM superhero s "
        "JOIN race r ON s.race_id = r.id "
        "WHERE r.race = 'Human' AND s.height_cm > 185",
        f"SELECT s.superhero_name FROM superhero s {_J} "
        "WHERE i.race = 'Human' AND s.height_cm > 185",
        "SELECT superhero_name FROM superhero WHERE "
        "{{LLMMap('What is the race of this superhero?', "
        f"{_K})}}}} = 'Human' AND height_cm > 185",
        ("race",),
    ),
    _q(
        10,
        "Which publisher published the superhero Batman?",
        "SELECT p.publisher_name FROM superhero s "
        "JOIN publisher p ON s.publisher_id = p.id "
        "WHERE s.superhero_name = 'Batman'",
        f"SELECT i.publisher_name FROM superhero s {_J} "
        "WHERE s.superhero_name = 'Batman'",
        "SELECT {{LLMMap('Which comic book publisher published this "
        f"superhero?', {_K})}}}} FROM superhero "
        "WHERE superhero_name = 'Batman'",
        ("publisher_name",),
    ),
    _q(
        11,
        "List the superhero names of heroes who have the power of Flight.",
        "SELECT s.superhero_name FROM superhero s "
        "JOIN hero_power hp ON s.id = hp.hero_id "
        "JOIN superpower sp ON hp.power_id = sp.id "
        "WHERE sp.power_name = 'Flight'",
        f"SELECT s.superhero_name FROM superhero s {_J} "
        "WHERE i.powers LIKE '%Flight%'",
        "SELECT superhero_name FROM superhero WHERE "
        "{{LLMMap('What are the superpowers of this superhero?', "
        f"{_K})}}}} LIKE '%Flight%'",
        ("powers",),
    ),
    _q(
        12,
        "How many heroes have the Super Strength power?",
        "SELECT COUNT(*) FROM superhero s "
        "JOIN hero_power hp ON s.id = hp.hero_id "
        "JOIN superpower sp ON hp.power_id = sp.id "
        "WHERE sp.power_name = 'Super Strength'",
        f"SELECT COUNT(*) FROM superhero s {_J} "
        "WHERE i.powers LIKE '%Super Strength%'",
        "SELECT COUNT(*) FROM superhero WHERE "
        "{{LLMMap('What are the superpowers of this superhero?', "
        f"{_K})}}}} LIKE '%Super Strength%'",
        ("powers",),
    ),
    _q(
        13,
        "What is the superhero name of the tallest hero published by "
        "Marvel Comics?",
        "SELECT s.superhero_name FROM superhero s "
        "JOIN publisher p ON s.publisher_id = p.id "
        "WHERE p.publisher_name = 'Marvel Comics' "
        "ORDER BY s.height_cm DESC, s.superhero_name LIMIT 1",
        f"SELECT s.superhero_name FROM superhero s {_J} "
        "WHERE i.publisher_name = 'Marvel Comics' "
        "ORDER BY s.height_cm DESC, s.superhero_name LIMIT 1",
        "SELECT superhero_name FROM superhero WHERE "
        "{{LLMMap('Which comic book publisher published this superhero?', "
        f"{_K})}}}} = 'Marvel Comics' "
        "ORDER BY height_cm DESC, superhero_name LIMIT 1",
        ("publisher_name",),
        ordered=True,
    ),
    _q(
        14,
        "List the superhero names and weights of the 5 heaviest heroes "
        "published by DC Comics.",
        "SELECT s.superhero_name, s.weight_kg FROM superhero s "
        "JOIN publisher p ON s.publisher_id = p.id "
        "WHERE p.publisher_name = 'DC Comics' "
        "ORDER BY s.weight_kg DESC, s.superhero_name LIMIT 5",
        f"SELECT s.superhero_name, s.weight_kg FROM superhero s {_J} "
        "WHERE i.publisher_name = 'DC Comics' "
        "ORDER BY s.weight_kg DESC, s.superhero_name LIMIT 5",
        "SELECT superhero_name, weight_kg FROM superhero WHERE "
        "{{LLMMap('Which comic book publisher published this superhero?', "
        f"{_K})}}}} = 'DC Comics' "
        "ORDER BY weight_kg DESC, superhero_name LIMIT 5",
        ("publisher_name",),
        ordered=True,
    ),
    _q(
        15,
        "Which publishers have more than 12 heroes in the database?",
        "SELECT p.publisher_name FROM superhero s "
        "JOIN publisher p ON s.publisher_id = p.id "
        "GROUP BY p.publisher_name HAVING COUNT(*) > 12",
        f"SELECT i.publisher_name FROM superhero s {_J} "
        "GROUP BY i.publisher_name HAVING COUNT(*) > 12",
        "SELECT pub FROM (SELECT "
        "{{LLMMap('Which comic book publisher published this superhero?', "
        f"{_K})}}}} AS pub FROM superhero) sub "
        "GROUP BY pub HAVING COUNT(*) > 12",
        ("publisher_name",),
    ),
    _q(
        16,
        "What is the eye color of Superman?",
        "SELECT c.colour FROM superhero s "
        "JOIN colour c ON s.eye_colour_id = c.id "
        "WHERE s.superhero_name = 'Superman'",
        f"SELECT i.eye_color FROM superhero s {_J} "
        "WHERE s.superhero_name = 'Superman'",
        "SELECT {{LLMMap('What is the eye color of this superhero?', "
        f"{_K})}}}} FROM superhero WHERE superhero_name = 'Superman'",
        ("eye_color",),
    ),
    _q(
        17,
        "List the superhero names of all Android heroes.",
        "SELECT s.superhero_name FROM superhero s "
        "JOIN race r ON s.race_id = r.id WHERE r.race = 'Android'",
        f"SELECT s.superhero_name FROM superhero s {_J} "
        "WHERE i.race = 'Android'",
        "SELECT superhero_name FROM superhero WHERE "
        "{{LLMMap('What is the race of this superhero?', "
        f"{_K})}}}} = 'Android'",
        ("race",),
    ),
    _q(
        18,
        "List the superhero names of good-aligned Mutant heroes.",
        "SELECT s.superhero_name FROM superhero s "
        "JOIN race r ON s.race_id = r.id "
        "JOIN alignment a ON s.alignment_id = a.id "
        "WHERE r.race = 'Mutant' AND a.alignment = 'Good'",
        f"SELECT s.superhero_name FROM superhero s {_J} "
        "WHERE i.race = 'Mutant' AND i.moral_alignment = 'Good'",
        "SELECT superhero_name FROM superhero WHERE "
        "{{LLMMap('What is the race of this superhero?', "
        f"{_K})}}}} = 'Mutant' AND "
        "{{LLMMap('What is the moral alignment of this superhero?', "
        f"{_K})}}}} = 'Good'",
        ("race", "moral_alignment"),
    ),
    _q(
        19,
        "How many distinct races are there among Marvel Comics heroes?",
        "SELECT COUNT(DISTINCT r.race) FROM superhero s "
        "JOIN race r ON s.race_id = r.id "
        "JOIN publisher p ON s.publisher_id = p.id "
        "WHERE p.publisher_name = 'Marvel Comics'",
        f"SELECT COUNT(DISTINCT i.race) FROM superhero s {_J} "
        "WHERE i.publisher_name = 'Marvel Comics'",
        "SELECT COUNT(DISTINCT race) FROM (SELECT "
        "{{LLMMap('What is the race of this superhero?', "
        f"{_K})}}}} AS race, "
        "{{LLMMap('Which comic book publisher published this superhero?', "
        f"{_K})}}}} AS pub FROM superhero) sub "
        "WHERE pub = 'Marvel Comics'",
        ("race", "publisher_name"),
    ),
    _q(
        20,
        "List red-haired heroes alphabetically by superhero name.",
        "SELECT s.superhero_name FROM superhero s "
        "JOIN colour c ON s.hair_colour_id = c.id "
        "WHERE c.colour = 'Red' ORDER BY s.superhero_name",
        f"SELECT s.superhero_name FROM superhero s {_J} "
        "WHERE i.hair_color = 'Red' ORDER BY s.superhero_name",
        "SELECT superhero_name FROM superhero WHERE "
        "{{LLMMap('What is the hair color of this superhero?', "
        f"{_K})}}}} = 'Red' ORDER BY superhero_name",
        ("hair_color",),
        ordered=True,
    ),
    _q(
        21,
        "Which heroes share the same publisher as Hellboy? "
        "List their superhero names, excluding Hellboy.",
        "SELECT s.superhero_name FROM superhero s "
        "JOIN publisher p ON s.publisher_id = p.id "
        "WHERE p.publisher_name = (SELECT p2.publisher_name FROM superhero s2 "
        "JOIN publisher p2 ON s2.publisher_id = p2.id "
        "WHERE s2.superhero_name = 'Hellboy') "
        "AND s.superhero_name != 'Hellboy'",
        f"SELECT s.superhero_name FROM superhero s {_J} "
        "WHERE i.publisher_name = (SELECT i2.publisher_name "
        "FROM superhero_info i2 WHERE i2.superhero_name = 'Hellboy') "
        "AND s.superhero_name != 'Hellboy'",
        "SELECT superhero_name FROM superhero WHERE "
        "{{LLMMap('Which comic book publisher published this superhero?', "
        f"{_K})}}}} = "
        "{{LLMQA('Which comic book publisher published the superhero "
        "''Hellboy''?')}} AND superhero_name != 'Hellboy'",
        ("publisher_name",),
    ),
    _q(
        22,
        "List the superhero names of male villains (Bad alignment) who "
        "weigh more than 100 kg.",
        "SELECT s.superhero_name FROM superhero s "
        "JOIN gender g ON s.gender_id = g.id "
        "JOIN alignment a ON s.alignment_id = a.id "
        "WHERE g.gender = 'Male' AND a.alignment = 'Bad' "
        "AND s.weight_kg > 100",
        f"SELECT s.superhero_name FROM superhero s {_J} "
        "WHERE i.gender = 'Male' AND i.moral_alignment = 'Bad' "
        "AND s.weight_kg > 100",
        "SELECT superhero_name FROM superhero WHERE "
        "{{LLMMap('What is the gender of this superhero?', "
        f"{_K})}}}} = 'Male' AND "
        "{{LLMMap('What is the moral alignment of this superhero?', "
        f"{_K})}}}} = 'Bad' AND weight_kg > 100",
        ("gender", "moral_alignment"),
    ),
    _q(
        23,
        "List the superhero names of good-aligned heroes with the power "
        "of Telepathy.",
        "SELECT s.superhero_name FROM superhero s "
        "JOIN hero_power hp ON s.id = hp.hero_id "
        "JOIN superpower sp ON hp.power_id = sp.id "
        "JOIN alignment a ON s.alignment_id = a.id "
        "WHERE sp.power_name = 'Telepathy' AND a.alignment = 'Good'",
        f"SELECT s.superhero_name FROM superhero s {_J} "
        "WHERE i.powers LIKE '%Telepathy%' AND i.moral_alignment = 'Good'",
        "SELECT superhero_name FROM superhero WHERE "
        "{{LLMMap('What are the superpowers of this superhero?', "
        f"{_K})}}}} LIKE '%Telepathy%' AND "
        "{{LLMMap('What is the moral alignment of this superhero?', "
        f"{_K})}}}} = 'Good'",
        ("powers", "moral_alignment"),
    ),
    _q(
        24,
        "How many heroes are there for each moral alignment? "
        "Order by alignment name.",
        "SELECT a.alignment, COUNT(*) FROM superhero s "
        "JOIN alignment a ON s.alignment_id = a.id "
        "GROUP BY a.alignment ORDER BY a.alignment",
        f"SELECT i.moral_alignment, COUNT(*) FROM superhero s {_J} "
        "GROUP BY i.moral_alignment ORDER BY i.moral_alignment",
        "SELECT alignment, COUNT(*) FROM (SELECT "
        "{{LLMMap('What is the moral alignment of this superhero?', "
        f"{_K})}}}} AS alignment FROM superhero) sub "
        "GROUP BY alignment ORDER BY alignment",
        ("moral_alignment",),
        ordered=True,
    ),
    _q(
        25,
        "List the full names of heroes published by Image Comics.",
        "SELECT s.full_name FROM superhero s "
        "JOIN publisher p ON s.publisher_id = p.id "
        "WHERE p.publisher_name = 'Image Comics'",
        f"SELECT s.full_name FROM superhero s {_J} "
        "WHERE i.publisher_name = 'Image Comics'",
        "SELECT full_name FROM superhero WHERE "
        "{{LLMMap('Which comic book publisher published this superhero?', "
        f"{_K})}}}} = 'Image Comics'",
        ("publisher_name",),
    ),
    _q(
        26,
        "How many heroes have green skin?",
        "SELECT COUNT(*) FROM superhero s "
        "JOIN colour c ON s.skin_colour_id = c.id WHERE c.colour = 'Green'",
        f"SELECT COUNT(*) FROM superhero s {_J} "
        "WHERE i.skin_color = 'Green'",
        "SELECT COUNT(*) FROM superhero WHERE "
        "{{LLMMap('What is the skin color of this superhero?', "
        f"{_K})}}}} = 'Green'",
        ("skin_color",),
    ),
    _q(
        27,
        "What is the average height of heroes for each publisher? "
        "Order by publisher name.",
        "SELECT p.publisher_name, AVG(s.height_cm) FROM superhero s "
        "JOIN publisher p ON s.publisher_id = p.id "
        "GROUP BY p.publisher_name ORDER BY p.publisher_name",
        f"SELECT i.publisher_name, AVG(s.height_cm) FROM superhero s {_J} "
        "GROUP BY i.publisher_name ORDER BY i.publisher_name",
        "SELECT pub, AVG(height_cm) FROM (SELECT height_cm, "
        "{{LLMMap('Which comic book publisher published this superhero?', "
        f"{_K})}}}} AS pub FROM superhero) sub "
        "GROUP BY pub ORDER BY pub",
        ("publisher_name",),
        ordered=True,
    ),
    _q(
        28,
        "List the superhero names of female heroes who have the power "
        "of Flight.",
        "SELECT s.superhero_name FROM superhero s "
        "JOIN gender g ON s.gender_id = g.id "
        "JOIN hero_power hp ON s.id = hp.hero_id "
        "JOIN superpower sp ON hp.power_id = sp.id "
        "WHERE g.gender = 'Female' AND sp.power_name = 'Flight'",
        f"SELECT s.superhero_name FROM superhero s {_J} "
        "WHERE i.gender = 'Female' AND i.powers LIKE '%Flight%'",
        "SELECT superhero_name FROM superhero WHERE "
        "{{LLMMap('What is the gender of this superhero?', "
        f"{_K})}}}} = 'Female' AND "
        "{{LLMMap('What are the superpowers of this superhero?', "
        f"{_K})}}}} LIKE '%Flight%'",
        ("gender", "powers"),
    ),
    _q(
        29,
        "What is the race of Thor?",
        "SELECT r.race FROM superhero s "
        "JOIN race r ON s.race_id = r.id WHERE s.superhero_name = 'Thor'",
        f"SELECT i.race FROM superhero s {_J} "
        "WHERE s.superhero_name = 'Thor'",
        "SELECT {{LLMMap('What is the race of this superhero?', "
        f"{_K})}}}} FROM superhero WHERE superhero_name = 'Thor'",
        ("race",),
    ),
    _q(
        30,
        "List the superhero names of the 3 tallest villains (Bad alignment).",
        "SELECT s.superhero_name FROM superhero s "
        "JOIN alignment a ON s.alignment_id = a.id "
        "WHERE a.alignment = 'Bad' "
        "ORDER BY s.height_cm DESC, s.superhero_name LIMIT 3",
        f"SELECT s.superhero_name FROM superhero s {_J} "
        "WHERE i.moral_alignment = 'Bad' "
        "ORDER BY s.height_cm DESC, s.superhero_name LIMIT 3",
        "SELECT superhero_name FROM superhero WHERE "
        "{{LLMMap('What is the moral alignment of this superhero?', "
        f"{_K})}}}} = 'Bad' "
        "ORDER BY height_cm DESC, superhero_name LIMIT 3",
        ("moral_alignment",),
        ordered=True,
    ),
]


# -- phrasing variants (Section 5.5: per-query wording defeats the cache) ----

from repro.swan.questions.variants import (  # noqa: E402
    attach_value_options,
    vary_blend_questions,
)

#: Retained value lists passed as LLMMap options (Section 3.3).
_VALUE_OPTIONS = {
    "Which comic book publisher published this superhero?": "publishers",
    "What is the eye color of this superhero?": "colours",
    "What is the hair color of this superhero?": "colours",
    "What is the skin color of this superhero?": "colours",
    "What is the race of this superhero?": "races",
    "What is the gender of this superhero?": "genders",
    "What is the moral alignment of this superhero?": "alignments",
    "What are the superpowers of this superhero?": "powers",
}

QUESTIONS = attach_value_options(QUESTIONS, _VALUE_OPTIONS)


_QUESTION_VARIANTS = {
    "Which comic book publisher published this superhero?": [
        "Which comic book publisher published this superhero?",
        "What is the publisher of this superhero?",
        "Name the comics publisher that published this superhero.",
        "Which publisher released comics featuring this superhero?",
    ],
    "What is the eye color of this superhero?": [
        "What is the eye color of this superhero?",
        "What color are the eyes of this superhero?",
        "State the eye colour of this hero.",
    ],
    "What is the hair color of this superhero?": [
        "What is the hair color of this superhero?",
        "What color is the hair of this superhero?",
        "State the hair colour of this hero.",
    ],
    "What is the skin color of this superhero?": [
        "What is the skin color of this superhero?",
        "What color is the skin of this superhero?",
        "State the skin colour of this hero.",
    ],
    "What is the race of this superhero?": [
        "What is the race of this superhero?",
        "To which race does this superhero belong?",
        "State the race of this hero.",
    ],
    "What is the gender of this superhero?": [
        "What is the gender of this superhero?",
        "State the gender of this hero.",
    ],
    "What is the moral alignment of this superhero?": [
        "What is the moral alignment of this superhero?",
        "Is the moral alignment of this hero Good, Bad, or Neutral?",
        "State the moral alignment of this superhero.",
    ],
    "What are the superpowers of this superhero?": [
        "What are the superpowers of this superhero?",
        "List the superpowers of this hero.",
        "Which superpowers does this hero possess?",
    ],
}

QUESTIONS = vary_blend_questions(QUESTIONS, _QUESTION_VARIANTS)
