"""The 30 California Schools beyond-database questions.

About a third of these carry a LIMIT clause (top-k school rankings), the
trait the paper uses to explain why this database shows the *highest*
execution accuracy: ranking columns (enrollment, SAT scores) survived
curation, so LLM errors on non-top entities are masked (Section 5.3).
"""

from __future__ import annotations

from repro.swan.base import Question

_DB = "california_schools"

#: Expansion join used by every HQDL query below.
_J = (
    "JOIN school_info i ON s.school_name = i.school_name "
    "AND s.street_address = i.street_address"
)

#: Ingredient key arguments for LLMMap calls on the schools table.
_K = "'schools::school_name', 'schools::street_address'"

_CITY_Q = "In which city is this school, given its street address?"
_COUNTY_Q = "In which California county is this school?"
_WEB_Q = "What is the website of this school?"
_TYPE_Q = "What type of school is this (Elementary, Middle, High, or K-12)?"
_FUND_Q = "What is the charter funding type of this school?"


def _q(number: int, text: str, gold: str, hqdl: str, blend: str,
       columns: tuple[str, ...], ordered: bool = False) -> Question:
    return Question(
        qid=f"california_schools_q{number:02d}",
        database=_DB,
        text=text,
        gold_sql=gold,
        hqdl_sql=hqdl,
        blend_sql=blend,
        expansion_columns=columns,
        ordered=ordered,
    )


QUESTIONS: list[Question] = [
    _q(
        1,
        "What are the names of the top 5 schools by average math SAT score "
        "in Alameda county?",
        "SELECT s.school_name FROM schools s "
        "JOIN satscores t ON s.cds_code = t.cds_code "
        "WHERE s.county = 'Alameda' "
        "ORDER BY t.avg_scr_math DESC, s.school_name LIMIT 5",
        f"SELECT s.school_name FROM schools s {_J} "
        "JOIN satscores t ON s.cds_code = t.cds_code "
        "WHERE i.county = 'Alameda' "
        "ORDER BY t.avg_scr_math DESC, s.school_name LIMIT 5",
        "SELECT s.school_name FROM schools s "
        "JOIN satscores t ON s.cds_code = t.cds_code WHERE "
        f"{{{{LLMMap('{_COUNTY_Q}', {_K})}}}} = 'Alameda' "
        "ORDER BY t.avg_scr_math DESC, s.school_name LIMIT 5",
        ("county",),
        ordered=True,
    ),
    _q(
        2,
        "Which school in the city of Oakland has the highest average "
        "reading SAT score?",
        "SELECT s.school_name FROM schools s "
        "JOIN satscores t ON s.cds_code = t.cds_code "
        "WHERE s.city = 'Oakland' "
        "ORDER BY t.avg_scr_read DESC, s.school_name LIMIT 1",
        f"SELECT s.school_name FROM schools s {_J} "
        "JOIN satscores t ON s.cds_code = t.cds_code "
        "WHERE i.city = 'Oakland' "
        "ORDER BY t.avg_scr_read DESC, s.school_name LIMIT 1",
        "SELECT s.school_name FROM schools s "
        "JOIN satscores t ON s.cds_code = t.cds_code WHERE "
        f"{{{{LLMMap('{_CITY_Q}', {_K})}}}} = 'Oakland' "
        "ORDER BY t.avg_scr_read DESC, s.school_name LIMIT 1",
        ("city",),
        ordered=True,
    ),
    _q(
        3,
        "How many schools are in each county? Show the top 5 counties by "
        "school count.",
        "SELECT s.county, COUNT(*) FROM schools s "
        "GROUP BY s.county ORDER BY COUNT(*) DESC, s.county LIMIT 5",
        f"SELECT i.county, COUNT(*) FROM schools s {_J} "
        "GROUP BY i.county ORDER BY COUNT(*) DESC, i.county LIMIT 5",
        "SELECT county, COUNT(*) FROM (SELECT "
        f"{{{{LLMMap('{_COUNTY_Q}', {_K})}}}} AS county FROM schools) sub "
        "GROUP BY county ORDER BY COUNT(*) DESC, county LIMIT 5",
        ("county",),
        ordered=True,
    ),
    _q(
        4,
        "What are the websites of the 3 schools with the highest enrollment?",
        "SELECT s.website FROM schools s "
        "JOIN frpm f ON s.cds_code = f.cds_code "
        "ORDER BY f.enrollment DESC, s.school_name LIMIT 3",
        f"SELECT i.website FROM schools s {_J} "
        "JOIN frpm f ON s.cds_code = f.cds_code "
        "ORDER BY f.enrollment DESC, s.school_name LIMIT 3",
        f"SELECT {{{{LLMMap('{_WEB_Q}', {_K})}}}} FROM schools s "
        "JOIN frpm f ON s.cds_code = f.cds_code "
        "ORDER BY f.enrollment DESC, s.school_name LIMIT 3",
        ("website",),
        ordered=True,
    ),
    _q(
        5,
        "List the names of schools in the city of Fresno.",
        "SELECT s.school_name FROM schools s WHERE s.city = 'Fresno'",
        f"SELECT s.school_name FROM schools s {_J} WHERE i.city = 'Fresno'",
        "SELECT school_name FROM schools WHERE "
        f"{{{{LLMMap('{_CITY_Q}', {_K})}}}} = 'Fresno'",
        ("city",),
    ),
    _q(
        6,
        "How many charter schools are in Los Angeles county?",
        "SELECT COUNT(*) FROM schools s "
        "WHERE s.county = 'Los Angeles' AND s.charter = 1",
        f"SELECT COUNT(*) FROM schools s {_J} "
        "WHERE i.county = 'Los Angeles' AND s.charter = 1",
        "SELECT COUNT(*) FROM schools WHERE "
        f"{{{{LLMMap('{_COUNTY_Q}', {_K})}}}} = 'Los Angeles' "
        "AND charter = 1",
        ("county",),
    ),
    _q(
        7,
        "Which school in the city of San Diego has the highest combined SAT "
        "score (reading plus math plus writing)?",
        "SELECT s.school_name FROM schools s "
        "JOIN satscores t ON s.cds_code = t.cds_code "
        "WHERE s.city = 'San Diego' "
        "ORDER BY t.avg_scr_read + t.avg_scr_math + t.avg_scr_write DESC, "
        "s.school_name LIMIT 1",
        f"SELECT s.school_name FROM schools s {_J} "
        "JOIN satscores t ON s.cds_code = t.cds_code "
        "WHERE i.city = 'San Diego' "
        "ORDER BY t.avg_scr_read + t.avg_scr_math + t.avg_scr_write DESC, "
        "s.school_name LIMIT 1",
        "SELECT s.school_name FROM schools s "
        "JOIN satscores t ON s.cds_code = t.cds_code WHERE "
        f"{{{{LLMMap('{_CITY_Q}', {_K})}}}} = 'San Diego' "
        "ORDER BY t.avg_scr_read + t.avg_scr_math + t.avg_scr_write DESC, "
        "s.school_name LIMIT 1",
        ("city",),
        ordered=True,
    ),
    _q(
        8,
        "List the names of High schools in the city of Long Beach.",
        "SELECT s.school_name FROM schools s "
        "WHERE s.school_type = 'High' AND s.city = 'Long Beach'",
        f"SELECT s.school_name FROM schools s {_J} "
        "WHERE i.school_type = 'High' AND i.city = 'Long Beach'",
        "SELECT school_name FROM schools WHERE "
        f"{{{{LLMMap('{_TYPE_Q}', {_K})}}}} = 'High' AND "
        f"{{{{LLMMap('{_CITY_Q}', {_K})}}}} = 'Long Beach'",
        ("school_type", "city"),
    ),
    _q(
        9,
        "What is the school type of the school with the largest enrollment?",
        "SELECT s.school_type FROM schools s "
        "JOIN frpm f ON s.cds_code = f.cds_code "
        "ORDER BY f.enrollment DESC, s.school_name LIMIT 1",
        f"SELECT i.school_type FROM schools s {_J} "
        "JOIN frpm f ON s.cds_code = f.cds_code "
        "ORDER BY f.enrollment DESC, s.school_name LIMIT 1",
        f"SELECT {{{{LLMMap('{_TYPE_Q}', {_K})}}}} FROM schools s "
        "JOIN frpm f ON s.cds_code = f.cds_code "
        "ORDER BY f.enrollment DESC, s.school_name LIMIT 1",
        ("school_type",),
        ordered=True,
    ),
    _q(
        10,
        "List the names of the top 5 schools by free meal count in "
        "Orange county.",
        "SELECT s.school_name FROM schools s "
        "JOIN frpm f ON s.cds_code = f.cds_code "
        "WHERE s.county = 'Orange' "
        "ORDER BY f.free_meal_count DESC, s.school_name LIMIT 5",
        f"SELECT s.school_name FROM schools s {_J} "
        "JOIN frpm f ON s.cds_code = f.cds_code "
        "WHERE i.county = 'Orange' "
        "ORDER BY f.free_meal_count DESC, s.school_name LIMIT 5",
        "SELECT s.school_name FROM schools s "
        "JOIN frpm f ON s.cds_code = f.cds_code WHERE "
        f"{{{{LLMMap('{_COUNTY_Q}', {_K})}}}} = 'Orange' "
        "ORDER BY f.free_meal_count DESC, s.school_name LIMIT 5",
        ("county",),
        ordered=True,
    ),
    _q(
        11,
        "What is the website of Lincoln High School?",
        "SELECT s.website FROM schools s "
        "WHERE s.school_name = 'Lincoln High School'",
        f"SELECT i.website FROM schools s {_J} "
        "WHERE s.school_name = 'Lincoln High School'",
        f"SELECT {{{{LLMMap('{_WEB_Q}', {_K})}}}} FROM schools "
        "WHERE school_name = 'Lincoln High School'",
        ("website",),
    ),
    _q(
        12,
        "How many schools are there in the city of San Jose?",
        "SELECT COUNT(*) FROM schools s WHERE s.city = 'San Jose'",
        f"SELECT COUNT(*) FROM schools s {_J} WHERE i.city = 'San Jose'",
        "SELECT COUNT(*) FROM schools WHERE "
        f"{{{{LLMMap('{_CITY_Q}', {_K})}}}} = 'San Jose'",
        ("city",),
    ),
    _q(
        13,
        "Which county has the most schools?",
        "SELECT s.county FROM schools s "
        "GROUP BY s.county ORDER BY COUNT(*) DESC, s.county LIMIT 1",
        f"SELECT i.county FROM schools s {_J} "
        "GROUP BY i.county ORDER BY COUNT(*) DESC, i.county LIMIT 1",
        "SELECT county FROM (SELECT "
        f"{{{{LLMMap('{_COUNTY_Q}', {_K})}}}} AS county FROM schools) sub "
        "GROUP BY county ORDER BY COUNT(*) DESC, county LIMIT 1",
        ("county",),
        ordered=True,
    ),
    _q(
        14,
        "List the names of directly funded charter schools in "
        "Los Angeles county.",
        "SELECT s.school_name FROM schools s "
        "WHERE s.funding_type = 'Directly funded' AND s.charter = 1 "
        "AND s.county = 'Los Angeles'",
        f"SELECT s.school_name FROM schools s {_J} "
        "WHERE i.funding_type = 'Directly funded' AND s.charter = 1 "
        "AND i.county = 'Los Angeles'",
        "SELECT school_name FROM schools WHERE "
        f"{{{{LLMMap('{_FUND_Q}', {_K})}}}} = 'Directly funded' "
        "AND charter = 1 AND "
        f"{{{{LLMMap('{_COUNTY_Q}', {_K})}}}} = 'Los Angeles'",
        ("funding_type", "county"),
    ),
    _q(
        15,
        "What is the average enrollment of schools in each county? "
        "Order by county name.",
        "SELECT s.county, AVG(f.enrollment) FROM schools s "
        "JOIN frpm f ON s.cds_code = f.cds_code "
        "GROUP BY s.county ORDER BY s.county",
        f"SELECT i.county, AVG(f.enrollment) FROM schools s {_J} "
        "JOIN frpm f ON s.cds_code = f.cds_code "
        "GROUP BY i.county ORDER BY i.county",
        "SELECT county, AVG(enrollment) FROM (SELECT f.enrollment, "
        f"{{{{LLMMap('{_COUNTY_Q}', {_K})}}}} AS county FROM schools s "
        "JOIN frpm f ON s.cds_code = f.cds_code) sub "
        "GROUP BY county ORDER BY county",
        ("county",),
        ordered=True,
    ),
    _q(
        16,
        "What are the names of the top 3 Elementary schools by average "
        "writing SAT score?",
        "SELECT s.school_name FROM schools s "
        "JOIN satscores t ON s.cds_code = t.cds_code "
        "WHERE s.school_type = 'Elementary' "
        "ORDER BY t.avg_scr_write DESC, s.school_name LIMIT 3",
        f"SELECT s.school_name FROM schools s {_J} "
        "JOIN satscores t ON s.cds_code = t.cds_code "
        "WHERE i.school_type = 'Elementary' "
        "ORDER BY t.avg_scr_write DESC, s.school_name LIMIT 3",
        "SELECT s.school_name FROM schools s "
        "JOIN satscores t ON s.cds_code = t.cds_code WHERE "
        f"{{{{LLMMap('{_TYPE_Q}', {_K})}}}} = 'Elementary' "
        "ORDER BY t.avg_scr_write DESC, s.school_name LIMIT 3",
        ("school_type",),
        ordered=True,
    ),
    _q(
        17,
        "How many schools have a website ending in .org?",
        "SELECT COUNT(*) FROM schools s WHERE s.website LIKE '%.org'",
        f"SELECT COUNT(*) FROM schools s {_J} "
        "WHERE i.website LIKE '%.org'",
        "SELECT COUNT(*) FROM schools WHERE "
        f"{{{{LLMMap('{_WEB_Q}', {_K})}}}} LIKE '%.org'",
        ("website",),
    ),
    _q(
        18,
        "List the school names and cities of schools with an FRPM rate "
        "above 0.6.",
        "SELECT s.school_name, s.city FROM schools s "
        "JOIN frpm f ON s.cds_code = f.cds_code WHERE f.frpm_rate > 0.6",
        f"SELECT s.school_name, i.city FROM schools s {_J} "
        "JOIN frpm f ON s.cds_code = f.cds_code WHERE f.frpm_rate > 0.6",
        "SELECT s.school_name, "
        f"{{{{LLMMap('{_CITY_Q}', {_K})}}}} FROM schools s "
        "JOIN frpm f ON s.cds_code = f.cds_code WHERE f.frpm_rate > 0.6",
        ("city",),
    ),
    _q(
        19,
        "Which schools in Santa Clara county opened before 1950? "
        "List their names.",
        "SELECT s.school_name FROM schools s "
        "WHERE s.county = 'Santa Clara' AND s.open_year < 1950",
        f"SELECT s.school_name FROM schools s {_J} "
        "WHERE i.county = 'Santa Clara' AND s.open_year < 1950",
        "SELECT school_name FROM schools WHERE "
        f"{{{{LLMMap('{_COUNTY_Q}', {_K})}}}} = 'Santa Clara' "
        "AND open_year < 1950",
        ("county",),
    ),
    _q(
        20,
        "In which city is the school with the highest number of SAT test "
        "takers?",
        "SELECT s.city FROM schools s "
        "JOIN satscores t ON s.cds_code = t.cds_code "
        "ORDER BY t.num_test_takers DESC, s.school_name LIMIT 1",
        f"SELECT i.city FROM schools s {_J} "
        "JOIN satscores t ON s.cds_code = t.cds_code "
        "ORDER BY t.num_test_takers DESC, s.school_name LIMIT 1",
        f"SELECT {{{{LLMMap('{_CITY_Q}', {_K})}}}} FROM schools s "
        "JOIN satscores t ON s.cds_code = t.cds_code "
        "ORDER BY t.num_test_takers DESC, s.school_name LIMIT 1",
        ("city",),
        ordered=True,
    ),
    _q(
        21,
        "How many schools are there of each school type? "
        "Order by type name.",
        "SELECT s.school_type, COUNT(*) FROM schools s "
        "GROUP BY s.school_type ORDER BY s.school_type",
        f"SELECT i.school_type, COUNT(*) FROM schools s {_J} "
        "GROUP BY i.school_type ORDER BY i.school_type",
        "SELECT school_type, COUNT(*) FROM (SELECT "
        f"{{{{LLMMap('{_TYPE_Q}', {_K})}}}} AS school_type "
        "FROM schools) sub GROUP BY school_type ORDER BY school_type",
        ("school_type",),
        ordered=True,
    ),
    _q(
        22,
        "List the names of K-12 schools in Kern county.",
        "SELECT s.school_name FROM schools s "
        "WHERE s.school_type = 'K-12' AND s.county = 'Kern'",
        f"SELECT s.school_name FROM schools s {_J} "
        "WHERE i.school_type = 'K-12' AND i.county = 'Kern'",
        "SELECT school_name FROM schools WHERE "
        f"{{{{LLMMap('{_TYPE_Q}', {_K})}}}} = 'K-12' AND "
        f"{{{{LLMMap('{_COUNTY_Q}', {_K})}}}} = 'Kern'",
        ("school_type", "county"),
    ),
    _q(
        23,
        "What are the websites of the top 5 schools by number of students "
        "scoring at least 1500 on the SAT?",
        "SELECT s.website FROM schools s "
        "JOIN satscores t ON s.cds_code = t.cds_code "
        "ORDER BY t.num_ge_1500 DESC, s.school_name LIMIT 5",
        f"SELECT i.website FROM schools s {_J} "
        "JOIN satscores t ON s.cds_code = t.cds_code "
        "ORDER BY t.num_ge_1500 DESC, s.school_name LIMIT 5",
        f"SELECT {{{{LLMMap('{_WEB_Q}', {_K})}}}} FROM schools s "
        "JOIN satscores t ON s.cds_code = t.cds_code "
        "ORDER BY t.num_ge_1500 DESC, s.school_name LIMIT 5",
        ("website",),
        ordered=True,
    ),
    _q(
        24,
        "Which city has the most schools?",
        "SELECT s.city FROM schools s "
        "GROUP BY s.city ORDER BY COUNT(*) DESC, s.city LIMIT 1",
        f"SELECT i.city FROM schools s {_J} "
        "GROUP BY i.city ORDER BY COUNT(*) DESC, i.city LIMIT 1",
        "SELECT city FROM (SELECT "
        f"{{{{LLMMap('{_CITY_Q}', {_K})}}}} AS city FROM schools) sub "
        "GROUP BY city ORDER BY COUNT(*) DESC, city LIMIT 1",
        ("city",),
        ordered=True,
    ),
    _q(
        25,
        "List the names of locally funded schools in the city of Anaheim.",
        "SELECT s.school_name FROM schools s "
        "WHERE s.funding_type = 'Locally funded' AND s.city = 'Anaheim'",
        f"SELECT s.school_name FROM schools s {_J} "
        "WHERE i.funding_type = 'Locally funded' AND i.city = 'Anaheim'",
        "SELECT school_name FROM schools WHERE "
        f"{{{{LLMMap('{_FUND_Q}', {_K})}}}} = 'Locally funded' AND "
        f"{{{{LLMMap('{_CITY_Q}', {_K})}}}} = 'Anaheim'",
        ("funding_type", "city"),
    ),
    _q(
        26,
        "In which county is Sequoia High School?",
        "SELECT s.county FROM schools s "
        "WHERE s.school_name = 'Sequoia High School'",
        f"SELECT i.county FROM schools s {_J} "
        "WHERE s.school_name = 'Sequoia High School'",
        f"SELECT {{{{LLMMap('{_COUNTY_Q}', {_K})}}}} FROM schools "
        "WHERE school_name = 'Sequoia High School'",
        ("county",),
    ),
    _q(
        27,
        "How many schools in the city of Los Angeles have an average math "
        "SAT score above 550?",
        "SELECT COUNT(*) FROM schools s "
        "JOIN satscores t ON s.cds_code = t.cds_code "
        "WHERE s.city = 'Los Angeles' AND t.avg_scr_math > 550",
        f"SELECT COUNT(*) FROM schools s {_J} "
        "JOIN satscores t ON s.cds_code = t.cds_code "
        "WHERE i.city = 'Los Angeles' AND t.avg_scr_math > 550",
        "SELECT COUNT(*) FROM schools s "
        "JOIN satscores t ON s.cds_code = t.cds_code WHERE "
        f"{{{{LLMMap('{_CITY_Q}', {_K})}}}} = 'Los Angeles' "
        "AND t.avg_scr_math > 550",
        ("city",),
    ),
    _q(
        28,
        "List the names of Middle schools in San Diego county, "
        "alphabetically.",
        "SELECT s.school_name FROM schools s "
        "WHERE s.school_type = 'Middle' AND s.county = 'San Diego' "
        "ORDER BY s.school_name",
        f"SELECT s.school_name FROM schools s {_J} "
        "WHERE i.school_type = 'Middle' AND i.county = 'San Diego' "
        "ORDER BY s.school_name",
        "SELECT school_name FROM schools WHERE "
        f"{{{{LLMMap('{_TYPE_Q}', {_K})}}}} = 'Middle' AND "
        f"{{{{LLMMap('{_COUNTY_Q}', {_K})}}}} = 'San Diego' "
        "ORDER BY school_name",
        ("school_type", "county"),
        ordered=True,
    ),
    _q(
        29,
        "What is the funding type of the school with the lowest FRPM rate?",
        "SELECT s.funding_type FROM schools s "
        "JOIN frpm f ON s.cds_code = f.cds_code "
        "ORDER BY f.frpm_rate ASC, s.school_name LIMIT 1",
        f"SELECT i.funding_type FROM schools s {_J} "
        "JOIN frpm f ON s.cds_code = f.cds_code "
        "ORDER BY f.frpm_rate ASC, s.school_name LIMIT 1",
        f"SELECT {{{{LLMMap('{_FUND_Q}', {_K})}}}} FROM schools s "
        "JOIN frpm f ON s.cds_code = f.cds_code "
        "ORDER BY f.frpm_rate ASC, s.school_name LIMIT 1",
        ("funding_type",),
        ordered=True,
    ),
    _q(
        30,
        "What are the top 3 counties by total enrollment?",
        "SELECT s.county FROM schools s "
        "JOIN frpm f ON s.cds_code = f.cds_code "
        "GROUP BY s.county ORDER BY SUM(f.enrollment) DESC, s.county LIMIT 3",
        f"SELECT i.county FROM schools s {_J} "
        "JOIN frpm f ON s.cds_code = f.cds_code "
        "GROUP BY i.county ORDER BY SUM(f.enrollment) DESC, i.county LIMIT 3",
        "SELECT county FROM (SELECT f.enrollment, "
        f"{{{{LLMMap('{_COUNTY_Q}', {_K})}}}} AS county FROM schools s "
        "JOIN frpm f ON s.cds_code = f.cds_code) sub "
        "GROUP BY county ORDER BY SUM(enrollment) DESC, county LIMIT 3",
        ("county",),
        ordered=True,
    ),
]


# -- phrasing variants (Section 5.5: per-query wording defeats the cache) ----

from repro.swan.questions.variants import (  # noqa: E402
    attach_value_options,
    vary_blend_questions,
)

#: Retained value lists passed as LLMMap options (Section 3.3).
_VALUE_OPTIONS = {
    _COUNTY_Q: "counties",
    _TYPE_Q: "school_types",
    _FUND_Q: "funding_types",
}

QUESTIONS = attach_value_options(QUESTIONS, _VALUE_OPTIONS)


_QUESTION_VARIANTS = {
    _CITY_Q: [
        _CITY_Q,
        "Which city is this school located in, based on its street address?",
        "Name the city of this school from its street address.",
        "What city does the street address of this school place it in?",
    ],
    _COUNTY_Q: [
        _COUNTY_Q,
        "Which California county does this school belong to?",
        "Name the California county of this school.",
        "What California county is this school in?",
    ],
    _WEB_Q: [
        _WEB_Q,
        "Provide the website of this school.",
        "What is the short website address of this school?",
    ],
    _TYPE_Q: [
        _TYPE_Q,
        "What is the school type (Elementary, Middle, High, or K-12)?",
        "Which school type describes this school: Elementary, Middle, High, or K-12?",
    ],
    _FUND_Q: [
        _FUND_Q,
        "Which charter funding category applies to this school?",
        "Is this school directly funded, locally funded, or state funded?",
    ],
}

QUESTIONS = vary_blend_questions(QUESTIONS, _QUESTION_VARIANTS)
