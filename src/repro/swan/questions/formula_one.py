"""The 30 Formula One beyond-database questions.

This world has three expansion tables (drivers, circuits, constructors),
so questions here exercise multi-table schema expansion and hybrid joins
across more than one LLM-generated table.  The paper's own few-shot
demonstration ("What is the driver code, key: Lewis Hamilton, answer:
HAM") is question 1.
"""

from __future__ import annotations

from repro.swan.base import Question

_DB = "formula_1"

_JD = "JOIN driver_info di ON d.forename = di.forename AND d.surname = di.surname"
_JC = "JOIN circuit_info ci ON c.circuit_name = ci.circuit_name"
_JK = "JOIN constructor_info ki ON k.constructor_name = ki.constructor_name"

_KD = "'drivers::forename', 'drivers::surname'"
_KC = "'circuits::circuit_name'"
_KK = "'constructors::constructor_name'"

_CODE_Q = "What is the three-letter driver code of this Formula 1 driver?"
_NAT_Q = "What is the nationality of this Formula 1 driver?"
_BORN_Q = "In which year was this Formula 1 driver born?"
_COUNTRY_Q = "In which country is this Formula 1 circuit?"
_CITY_Q = "In which city or town is this Formula 1 circuit?"
_CNAT_Q = "Which country is this Formula 1 constructor from?"


def _q(number: int, text: str, gold: str, hqdl: str, blend: str,
       columns: tuple[str, ...], ordered: bool = False) -> Question:
    return Question(
        qid=f"formula_1_q{number:02d}",
        database=_DB,
        text=text,
        gold_sql=gold,
        hqdl_sql=hqdl,
        blend_sql=blend,
        expansion_columns=columns,
        ordered=ordered,
    )


QUESTIONS: list[Question] = [
    _q(
        1,
        "What is the driver code of Lewis Hamilton?",
        "SELECT d.code FROM drivers d "
        "WHERE d.forename = 'Lewis' AND d.surname = 'Hamilton'",
        f"SELECT di.code FROM drivers d {_JD} "
        "WHERE d.forename = 'Lewis' AND d.surname = 'Hamilton'",
        f"SELECT {{{{LLMMap('{_CODE_Q}', {_KD})}}}} FROM drivers "
        "WHERE forename = 'Lewis' AND surname = 'Hamilton'",
        ("code",),
    ),
    _q(
        2,
        "In which country is the Silverstone Circuit?",
        "SELECT c.country FROM circuits c "
        "WHERE c.circuit_name = 'Silverstone Circuit'",
        f"SELECT ci.country FROM circuits c {_JC} "
        "WHERE c.circuit_name = 'Silverstone Circuit'",
        f"SELECT {{{{LLMMap('{_COUNTRY_Q}', {_KC})}}}} FROM circuits "
        "WHERE circuit_name = 'Silverstone Circuit'",
        ("country",),
    ),
    _q(
        3,
        "List the forenames and surnames of all British drivers.",
        "SELECT d.forename, d.surname FROM drivers d "
        "WHERE d.nationality = 'British'",
        f"SELECT d.forename, d.surname FROM drivers d {_JD} "
        "WHERE di.nationality = 'British'",
        "SELECT forename, surname FROM drivers WHERE "
        f"{{{{LLMMap('{_NAT_Q}', {_KD})}}}} = 'British'",
        ("nationality",),
    ),
    _q(
        4,
        "List the distinct driver codes of drivers who won a race in 2023.",
        "SELECT DISTINCT d.code FROM drivers d "
        "JOIN results r ON d.driver_id = r.driver_id "
        "JOIN races ra ON r.race_id = ra.race_id "
        "WHERE r.position = 1 AND ra.year = 2023",
        f"SELECT DISTINCT di.code FROM drivers d {_JD} "
        "JOIN results r ON d.driver_id = r.driver_id "
        "JOIN races ra ON r.race_id = ra.race_id "
        "WHERE r.position = 1 AND ra.year = 2023",
        f"SELECT DISTINCT {{{{LLMMap('{_CODE_Q}', {_KD})}}}} "
        "FROM drivers JOIN results r ON drivers.driver_id = r.driver_id "
        "JOIN races ra ON r.race_id = ra.race_id "
        "WHERE r.position = 1 AND ra.year = 2023",
        ("code",),
    ),
    _q(
        5,
        "How many races were held at circuits in Italy?",
        "SELECT COUNT(*) FROM races ra "
        "JOIN circuits c ON ra.circuit_id = c.circuit_id "
        "WHERE c.country = 'Italy'",
        f"SELECT COUNT(*) FROM races ra "
        f"JOIN circuits c ON ra.circuit_id = c.circuit_id {_JC} "
        "WHERE ci.country = 'Italy'",
        "SELECT COUNT(*) FROM races ra "
        "JOIN circuits c ON ra.circuit_id = c.circuit_id WHERE "
        f"{{{{LLMMap('{_COUNTRY_Q}', {_KC})}}}} = 'Italy'",
        ("country",),
    ),
    _q(
        6,
        "List the surnames of drivers born after 1995.",
        "SELECT d.surname FROM drivers d WHERE d.birth_year > 1995",
        f"SELECT d.surname FROM drivers d {_JD} WHERE di.birth_year > 1995",
        "SELECT surname FROM drivers WHERE "
        f"CAST({{{{LLMMap('{_BORN_Q}', {_KD})}}}} AS INTEGER) > 1995",
        ("birth_year",),
    ),
    _q(
        7,
        "Who is the oldest driver? Give the forename and surname.",
        "SELECT d.forename, d.surname FROM drivers d "
        "ORDER BY d.birth_year ASC, d.surname LIMIT 1",
        f"SELECT d.forename, d.surname FROM drivers d {_JD} "
        "ORDER BY di.birth_year ASC, d.surname LIMIT 1",
        "SELECT forename, surname FROM drivers ORDER BY "
        f"CAST({{{{LLMMap('{_BORN_Q}', {_KD})}}}} AS INTEGER) ASC, "
        "surname LIMIT 1",
        ("birth_year",),
        ordered=True,
    ),
    _q(
        8,
        "What is the average finishing position of German drivers in 2023?",
        "SELECT AVG(r.position) FROM results r "
        "JOIN drivers d ON r.driver_id = d.driver_id "
        "JOIN races ra ON r.race_id = ra.race_id "
        "WHERE d.nationality = 'German' AND ra.year = 2023",
        "SELECT AVG(r.position) FROM results r "
        f"JOIN drivers d ON r.driver_id = d.driver_id {_JD} "
        "JOIN races ra ON r.race_id = ra.race_id "
        "WHERE di.nationality = 'German' AND ra.year = 2023",
        "SELECT AVG(r.position) FROM results r "
        "JOIN drivers d ON r.driver_id = d.driver_id "
        "JOIN races ra ON r.race_id = ra.race_id WHERE "
        f"{{{{LLMMap('{_NAT_Q}', {_KD})}}}} = 'German' AND ra.year = 2023",
        ("nationality",),
    ),
    _q(
        9,
        "List the race names and dates of races held at circuits in "
        "the USA.",
        "SELECT ra.race_name, ra.race_date FROM races ra "
        "JOIN circuits c ON ra.circuit_id = c.circuit_id "
        "WHERE c.country = 'USA'",
        "SELECT ra.race_name, ra.race_date FROM races ra "
        f"JOIN circuits c ON ra.circuit_id = c.circuit_id {_JC} "
        "WHERE ci.country = 'USA'",
        "SELECT ra.race_name, ra.race_date FROM races ra "
        "JOIN circuits c ON ra.circuit_id = c.circuit_id WHERE "
        f"{{{{LLMMap('{_COUNTRY_Q}', {_KC})}}}} = 'USA'",
        ("country",),
    ),
    _q(
        10,
        "List the names of Italian constructors.",
        "SELECT k.constructor_name FROM constructors k "
        "WHERE k.nationality = 'Italian'",
        f"SELECT k.constructor_name FROM constructors k {_JK} "
        "WHERE ki.nationality = 'Italian'",
        "SELECT constructor_name FROM constructors WHERE "
        f"{{{{LLMMap('{_CNAT_Q}', {_KK})}}}} = 'Italian'",
        ("nationality",),
    ),
    _q(
        11,
        "In which city or town is the Hungaroring circuit?",
        "SELECT c.location FROM circuits c "
        "WHERE c.circuit_name = 'Hungaroring'",
        f"SELECT ci.location_city FROM circuits c {_JC} "
        "WHERE c.circuit_name = 'Hungaroring'",
        f"SELECT {{{{LLMMap('{_CITY_Q}', {_KC})}}}} FROM circuits "
        "WHERE circuit_name = 'Hungaroring'",
        ("location_city",),
    ),
    _q(
        12,
        "List the driver codes of the top 3 drivers in the final 2022 "
        "standings.",
        "SELECT d.code FROM driver_standings ds "
        "JOIN drivers d ON ds.driver_id = d.driver_id "
        "WHERE ds.race_id = (SELECT ra.race_id FROM races ra "
        "WHERE ra.year = 2022 ORDER BY ra.round DESC LIMIT 1) "
        "AND ds.position <= 3 ORDER BY ds.position",
        "SELECT di.code FROM driver_standings ds "
        f"JOIN drivers d ON ds.driver_id = d.driver_id {_JD} "
        "WHERE ds.race_id = (SELECT ra.race_id FROM races ra "
        "WHERE ra.year = 2022 ORDER BY ra.round DESC LIMIT 1) "
        "AND ds.position <= 3 ORDER BY ds.position",
        f"SELECT {{{{LLMMap('{_CODE_Q}', {_KD})}}}} "
        "FROM driver_standings ds "
        "JOIN drivers ON ds.driver_id = drivers.driver_id "
        "WHERE ds.race_id = (SELECT ra.race_id FROM races ra "
        "WHERE ra.year = 2022 ORDER BY ra.round DESC LIMIT 1) "
        "AND ds.position <= 3 ORDER BY ds.position",
        ("code",),
        ordered=True,
    ),
    _q(
        13,
        "How many drivers are French?",
        "SELECT COUNT(*) FROM drivers d WHERE d.nationality = 'French'",
        f"SELECT COUNT(*) FROM drivers d {_JD} "
        "WHERE di.nationality = 'French'",
        "SELECT COUNT(*) FROM drivers WHERE "
        f"{{{{LLMMap('{_NAT_Q}', {_KD})}}}} = 'French'",
        ("nationality",),
    ),
    _q(
        14,
        "List the surnames and driver codes of Finnish drivers.",
        "SELECT d.surname, d.code FROM drivers d "
        "WHERE d.nationality = 'Finnish'",
        f"SELECT d.surname, di.code FROM drivers d {_JD} "
        "WHERE di.nationality = 'Finnish'",
        f"SELECT surname, {{{{LLMMap('{_CODE_Q}', {_KD})}}}} "
        "FROM drivers WHERE "
        f"{{{{LLMMap('{_NAT_Q}', {_KD})}}}} = 'Finnish'",
        ("nationality", "code"),
    ),
    _q(
        15,
        "Which country hosted the most races?",
        "SELECT c.country FROM races ra "
        "JOIN circuits c ON ra.circuit_id = c.circuit_id "
        "GROUP BY c.country ORDER BY COUNT(*) DESC, c.country LIMIT 1",
        "SELECT ci.country FROM races ra "
        f"JOIN circuits c ON ra.circuit_id = c.circuit_id {_JC} "
        "GROUP BY ci.country ORDER BY COUNT(*) DESC, ci.country LIMIT 1",
        "SELECT country FROM (SELECT "
        f"{{{{LLMMap('{_COUNTRY_Q}', {_KC})}}}} AS country FROM races ra "
        "JOIN circuits c ON ra.circuit_id = c.circuit_id) sub "
        "GROUP BY country ORDER BY COUNT(*) DESC, country LIMIT 1",
        ("country",),
        ordered=True,
    ),
    _q(
        16,
        "List the circuit names and host cities of circuits in Italy.",
        "SELECT c.circuit_name, c.location FROM circuits c "
        "WHERE c.country = 'Italy'",
        f"SELECT c.circuit_name, ci.location_city FROM circuits c {_JC} "
        "WHERE ci.country = 'Italy'",
        f"SELECT circuit_name, {{{{LLMMap('{_CITY_Q}', {_KC})}}}} "
        "FROM circuits WHERE "
        f"{{{{LLMMap('{_COUNTRY_Q}', {_KC})}}}} = 'Italy'",
        ("country", "location_city"),
    ),
    _q(
        17,
        "In which year was Max Verstappen born?",
        "SELECT d.birth_year FROM drivers d "
        "WHERE d.forename = 'Max' AND d.surname = 'Verstappen'",
        f"SELECT di.birth_year FROM drivers d {_JD} "
        "WHERE d.forename = 'Max' AND d.surname = 'Verstappen'",
        f"SELECT CAST({{{{LLMMap('{_BORN_Q}', {_KD})}}}} AS INTEGER) "
        "FROM drivers WHERE forename = 'Max' AND surname = 'Verstappen'",
        ("birth_year",),
    ),
    _q(
        18,
        "List the surnames of drivers born after 1998.",
        "SELECT d.surname FROM drivers d WHERE d.birth_year > 1998",
        f"SELECT d.surname FROM drivers d {_JD} WHERE di.birth_year > 1998",
        "SELECT surname FROM drivers WHERE "
        f"CAST({{{{LLMMap('{_BORN_Q}', {_KD})}}}} AS INTEGER) > 1998",
        ("birth_year",),
    ),
    _q(
        19,
        "What is the average points per result of drivers born before 1985?",
        "SELECT AVG(r.points) FROM results r "
        "JOIN drivers d ON r.driver_id = d.driver_id "
        "WHERE d.birth_year < 1985",
        "SELECT AVG(r.points) FROM results r "
        f"JOIN drivers d ON r.driver_id = d.driver_id {_JD} "
        "WHERE di.birth_year < 1985",
        "SELECT AVG(r.points) FROM results r "
        "JOIN drivers d ON r.driver_id = d.driver_id WHERE "
        f"CAST({{{{LLMMap('{_BORN_Q}', {_KD})}}}} AS INTEGER) < 1985",
        ("birth_year",),
    ),
    _q(
        20,
        "List the distinct surnames of drivers who drove for a British "
        "constructor.",
        "SELECT DISTINCT d.surname FROM results r "
        "JOIN drivers d ON r.driver_id = d.driver_id "
        "JOIN constructors k ON r.constructor_id = k.constructor_id "
        "WHERE k.nationality = 'British'",
        "SELECT DISTINCT d.surname FROM results r "
        "JOIN drivers d ON r.driver_id = d.driver_id "
        f"JOIN constructors k ON r.constructor_id = k.constructor_id {_JK} "
        "WHERE ki.nationality = 'British'",
        "SELECT DISTINCT d.surname FROM results r "
        "JOIN drivers d ON r.driver_id = d.driver_id "
        "JOIN constructors k ON r.constructor_id = k.constructor_id WHERE "
        f"{{{{LLMMap('{_CNAT_Q}', {_KK})}}}} = 'British'",
        ("nationality",),
    ),
    _q(
        21,
        "List the race names of races held in Monaco.",
        "SELECT ra.race_name FROM races ra "
        "JOIN circuits c ON ra.circuit_id = c.circuit_id "
        "WHERE c.country = 'Monaco'",
        "SELECT ra.race_name FROM races ra "
        f"JOIN circuits c ON ra.circuit_id = c.circuit_id {_JC} "
        "WHERE ci.country = 'Monaco'",
        "SELECT ra.race_name FROM races ra "
        "JOIN circuits c ON ra.circuit_id = c.circuit_id WHERE "
        f"{{{{LLMMap('{_COUNTRY_Q}', {_KC})}}}} = 'Monaco'",
        ("country",),
    ),
    _q(
        22,
        "Which British constructor scored the most wins in 2023?",
        "SELECT k.constructor_name FROM results r "
        "JOIN constructors k ON r.constructor_id = k.constructor_id "
        "JOIN races ra ON r.race_id = ra.race_id "
        "WHERE r.position = 1 AND ra.year = 2023 "
        "AND k.nationality = 'British' "
        "GROUP BY k.constructor_name "
        "ORDER BY COUNT(*) DESC, k.constructor_name LIMIT 1",
        "SELECT k.constructor_name FROM results r "
        f"JOIN constructors k ON r.constructor_id = k.constructor_id {_JK} "
        "JOIN races ra ON r.race_id = ra.race_id "
        "WHERE r.position = 1 AND ra.year = 2023 "
        "AND ki.nationality = 'British' "
        "GROUP BY k.constructor_name "
        "ORDER BY COUNT(*) DESC, k.constructor_name LIMIT 1",
        "SELECT k.constructor_name FROM results r "
        "JOIN constructors k ON r.constructor_id = k.constructor_id "
        "JOIN races ra ON r.race_id = ra.race_id "
        "WHERE r.position = 1 AND ra.year = 2023 AND "
        f"{{{{LLMMap('{_CNAT_Q}', {_KK})}}}} = 'British' "
        "GROUP BY k.constructor_name "
        "ORDER BY COUNT(*) DESC, k.constructor_name LIMIT 1",
        ("nationality",),
        ordered=True,
    ),
    _q(
        23,
        "List the forenames and surnames of Spanish drivers ordered "
        "by surname.",
        "SELECT d.forename, d.surname FROM drivers d "
        "WHERE d.nationality = 'Spanish' ORDER BY d.surname",
        f"SELECT d.forename, d.surname FROM drivers d {_JD} "
        "WHERE di.nationality = 'Spanish' ORDER BY d.surname",
        "SELECT forename, surname FROM drivers WHERE "
        f"{{{{LLMMap('{_NAT_Q}', {_KD})}}}} = 'Spanish' ORDER BY surname",
        ("nationality",),
        ordered=True,
    ),
    _q(
        24,
        "How many distinct nationalities are there among the drivers?",
        "SELECT COUNT(DISTINCT d.nationality) FROM drivers d",
        f"SELECT COUNT(DISTINCT di.nationality) FROM drivers d {_JD}",
        "SELECT COUNT(DISTINCT nat) FROM (SELECT "
        f"{{{{LLMMap('{_NAT_Q}', {_KD})}}}} AS nat FROM drivers) sub",
        ("nationality",),
    ),
    _q(
        25,
        "List the distinct driver codes of drivers who had a pit stop "
        "longer than 33000 milliseconds in 2023.",
        "SELECT DISTINCT d.code FROM pit_stops ps "
        "JOIN drivers d ON ps.driver_id = d.driver_id "
        "JOIN races ra ON ps.race_id = ra.race_id "
        "WHERE ps.duration_ms > 33000 AND ra.year = 2023",
        "SELECT DISTINCT di.code FROM pit_stops ps "
        f"JOIN drivers d ON ps.driver_id = d.driver_id {_JD} "
        "JOIN races ra ON ps.race_id = ra.race_id "
        "WHERE ps.duration_ms > 33000 AND ra.year = 2023",
        f"SELECT DISTINCT {{{{LLMMap('{_CODE_Q}', {_KD})}}}} "
        "FROM pit_stops ps "
        "JOIN drivers ON ps.driver_id = drivers.driver_id "
        "JOIN races ra ON ps.race_id = ra.race_id "
        "WHERE ps.duration_ms > 33000 AND ra.year = 2023",
        ("code",),
    ),
    _q(
        26,
        "Which circuits are in the UK? List their circuit names.",
        "SELECT c.circuit_name FROM circuits c WHERE c.country = 'UK'",
        f"SELECT c.circuit_name FROM circuits c {_JC} "
        "WHERE ci.country = 'UK'",
        "SELECT circuit_name FROM circuits WHERE "
        f"{{{{LLMMap('{_COUNTRY_Q}', {_KC})}}}} = 'UK'",
        ("country",),
    ),
    _q(
        27,
        "Who won the most races in 2022? Give the driver code.",
        "SELECT d.code FROM results r "
        "JOIN drivers d ON r.driver_id = d.driver_id "
        "JOIN races ra ON r.race_id = ra.race_id "
        "WHERE r.position = 1 AND ra.year = 2022 "
        "GROUP BY d.code ORDER BY COUNT(*) DESC, d.code LIMIT 1",
        "SELECT di.code FROM results r "
        f"JOIN drivers d ON r.driver_id = d.driver_id {_JD} "
        "JOIN races ra ON r.race_id = ra.race_id "
        "WHERE r.position = 1 AND ra.year = 2022 "
        "GROUP BY di.code ORDER BY COUNT(*) DESC, di.code LIMIT 1",
        "SELECT code FROM (SELECT "
        f"{{{{LLMMap('{_CODE_Q}', {_KD})}}}} AS code FROM results r "
        "JOIN drivers ON r.driver_id = drivers.driver_id "
        "JOIN races ra ON r.race_id = ra.race_id "
        "WHERE r.position = 1 AND ra.year = 2022) sub "
        "GROUP BY code ORDER BY COUNT(*) DESC, code LIMIT 1",
        ("code",),
        ordered=True,
    ),
    _q(
        28,
        "List the surnames of drivers whose driver code starts with 'V'.",
        "SELECT d.surname FROM drivers d WHERE d.code LIKE 'V%'",
        f"SELECT d.surname FROM drivers d {_JD} WHERE di.code LIKE 'V%'",
        "SELECT surname FROM drivers WHERE "
        f"{{{{LLMMap('{_CODE_Q}', {_KD})}}}} LIKE 'V%'",
        ("code",),
    ),
    _q(
        29,
        "What is the nationality of the constructor Ferrari?",
        "SELECT k.nationality FROM constructors k "
        "WHERE k.constructor_name = 'Ferrari'",
        f"SELECT ki.nationality FROM constructors k {_JK} "
        "WHERE k.constructor_name = 'Ferrari'",
        f"SELECT {{{{LLMMap('{_CNAT_Q}', {_KK})}}}} FROM constructors "
        "WHERE constructor_name = 'Ferrari'",
        ("nationality",),
    ),
    _q(
        30,
        "How many circuits are there in each country? Order by country.",
        "SELECT c.country, COUNT(*) FROM circuits c "
        "GROUP BY c.country ORDER BY c.country",
        f"SELECT ci.country, COUNT(*) FROM circuits c {_JC} "
        "GROUP BY ci.country ORDER BY ci.country",
        "SELECT country, COUNT(*) FROM (SELECT "
        f"{{{{LLMMap('{_COUNTRY_Q}', {_KC})}}}} AS country "
        "FROM circuits) sub GROUP BY country ORDER BY country",
        ("country",),
        ordered=True,
    ),
]


# -- phrasing variants (Section 5.5: per-query wording defeats the cache) ----

from repro.swan.questions.variants import (  # noqa: E402
    attach_value_options,
    vary_blend_questions,
)

#: Retained value lists passed as LLMMap options (Section 3.3).
_VALUE_OPTIONS = {
    _NAT_Q: "nationalities",
    _COUNTRY_Q: "countries",
    _CNAT_Q: "constructor_nationalities",
}

QUESTIONS = attach_value_options(QUESTIONS, _VALUE_OPTIONS)


_QUESTION_VARIANTS = {
    _CODE_Q: [
        _CODE_Q,
        "Give the three-letter driver code for this Formula 1 driver.",
        "What driver code (three-letter) does this Formula 1 driver use?",
    ],
    _NAT_Q: [
        _NAT_Q,
        "State the nationality of this Formula 1 driver.",
        "Which nationality does this Formula 1 driver hold?",
    ],
    _BORN_Q: [
        _BORN_Q,
        "What is the birth year of this Formula 1 driver?",
        "Which year was this Formula 1 driver born in?",
    ],
    _COUNTRY_Q: [
        _COUNTRY_Q,
        "Which country hosts this Formula 1 circuit?",
        "Name the country of this Formula 1 circuit.",
    ],
    _CITY_Q: [
        _CITY_Q,
        "Which town or city hosts this Formula 1 circuit?",
        "Name the city or town of this Formula 1 circuit.",
    ],
    _CNAT_Q: [
        _CNAT_Q,
        "What country does this Formula 1 constructor come from?",
        "Name the home country of this Formula 1 constructor.",
    ],
}

QUESTIONS = vary_blend_questions(QUESTIONS, _QUESTION_VARIANTS)
