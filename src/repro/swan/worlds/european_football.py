"""The European Football world.

Mirrors the Bird european_football_2 database: countries, leagues, teams,
players, matches, and the player/team attribute tables.  The paper's
running cost example lives here ("What is the height of the tallest
player?" followed by "players taller than 180cm" — Section 5.5).

Curation drops the player's physique and birthday and the team's short
name.  The expansion columns are mostly *numeric free-form* values
(height, weight, birth year), which exact-match evaluation punishes hard;
this is why European Football shows the lowest execution accuracy in the
paper's Table 2.
"""

from __future__ import annotations

from repro.sqlengine.schema import (
    ColumnSchema,
    DatabaseSchema,
    ForeignKey,
    TableSchema,
)
from repro.swan.base import (
    KIND_FREEFORM,
    KIND_NUMERIC,
    ExpansionColumn,
    ExpansionTable,
    World,
)
from repro.swan.curation import CurationPlan, apply_curation
from repro.swan.worlds.util import det_int, det_uniform

#: (country, league)
LEAGUES = [
    ("England", "England Premier League"),
    ("Spain", "Spain LIGA BBVA"),
    ("Italy", "Italy Serie A"),
    ("Germany", "Germany 1. Bundesliga"),
    ("France", "France Ligue 1"),
    ("Netherlands", "Netherlands Eredivisie"),
    ("Portugal", "Portugal Liga ZON Sagres"),
    ("Scotland", "Scotland Premier League"),
]

#: (team_long_name, team_short_name, country) — four teams per league.
TEAMS = [
    ("Manchester United", "MUN", "England"),
    ("Liverpool", "LIV", "England"),
    ("Chelsea", "CHE", "England"),
    ("Arsenal", "ARS", "England"),
    ("FC Barcelona", "BAR", "Spain"),
    ("Real Madrid CF", "REA", "Spain"),
    ("Atletico Madrid", "AMA", "Spain"),
    ("Valencia CF", "VAL", "Spain"),
    ("Juventus", "JUV", "Italy"),
    ("AC Milan", "ACM", "Italy"),
    ("Inter Milan", "INT", "Italy"),
    ("AS Roma", "ROM", "Italy"),
    ("FC Bayern Munich", "BMU", "Germany"),
    ("Borussia Dortmund", "DOR", "Germany"),
    ("Bayer 04 Leverkusen", "LEV", "Germany"),
    ("FC Schalke 04", "S04", "Germany"),
    ("Paris Saint-Germain", "PSG", "France"),
    ("Olympique Lyonnais", "LYO", "France"),
    ("AS Monaco", "MON", "France"),
    ("Olympique de Marseille", "MAR", "France"),
    ("Ajax", "AJA", "Netherlands"),
    ("PSV", "PSV", "Netherlands"),
    ("Feyenoord", "FEY", "Netherlands"),
    ("AZ Alkmaar", "AZA", "Netherlands"),
    ("FC Porto", "POR", "Portugal"),
    ("SL Benfica", "BEN", "Portugal"),
    ("Sporting CP", "SCP", "Portugal"),
    ("SC Braga", "BRA", "Portugal"),
    ("Celtic", "CEL", "Scotland"),
    ("Rangers", "RAN", "Scotland"),
    ("Aberdeen", "ABE", "Scotland"),
    ("Heart of Midlothian", "HEA", "Scotland"),
]

#: (player_name, height_cm, weight_kg, birth_year) — well-known seed players.
SEED_PLAYERS = [
    ("Lionel Messi", 170, 72, 1987),
    ("Cristiano Ronaldo", 187, 84, 1985),
    ("Neymar", 175, 68, 1992),
    ("Kylian Mbappe", 178, 73, 1998),
    ("Erling Haaland", 195, 88, 2000),
    ("Kevin De Bruyne", 181, 70, 1991),
    ("Luka Modric", 172, 66, 1985),
    ("Toni Kroos", 183, 76, 1990),
    ("Sergio Ramos", 184, 82, 1986),
    ("Gerard Pique", 194, 85, 1987),
    ("Andres Iniesta", 171, 68, 1984),
    ("Xavi Hernandez", 170, 68, 1980),
    ("Zlatan Ibrahimovic", 195, 95, 1981),
    ("Robert Lewandowski", 185, 81, 1988),
    ("Manuel Neuer", 193, 93, 1986),
    ("Thomas Muller", 185, 75, 1989),
    ("Mohamed Salah", 175, 71, 1992),
    ("Sadio Mane", 174, 69, 1992),
    ("Virgil van Dijk", 193, 92, 1991),
    ("Harry Kane", 188, 86, 1993),
    ("Wayne Rooney", 176, 83, 1985),
    ("Steven Gerrard", 183, 83, 1980),
    ("Frank Lampard", 184, 88, 1978),
    ("Didier Drogba", 188, 91, 1978),
    ("Eden Hazard", 175, 74, 1991),
    ("Antoine Griezmann", 176, 73, 1991),
    ("Paul Pogba", 191, 84, 1993),
    ("N'Golo Kante", 168, 70, 1991),
    ("Gianluigi Buffon", 192, 92, 1978),
    ("Giorgio Chiellini", 187, 85, 1984),
    ("Paulo Dybala", 177, 75, 1993),
    ("Karim Benzema", 185, 81, 1987),
    ("Gareth Bale", 185, 82, 1989),
    ("Petr Cech", 196, 90, 1982),
    ("Arjen Robben", 180, 80, 1984),
    ("Franck Ribery", 170, 72, 1983),
    ("Angel Di Maria", 180, 75, 1988),
    ("Edinson Cavani", 184, 77, 1987),
    ("Ruud van Nistelrooy", 188, 80, 1976),
    ("Wesley Sneijder", 170, 67, 1984),
]

_GIVEN = [
    "Aleks", "Bruno", "Carlos", "Dario", "Emil", "Felipe", "Goran", "Hugo",
    "Ivan", "Jonas", "Kacper", "Luca", "Marco", "Nikola", "Oscar", "Pavel",
    "Rafael", "Sergei", "Tomas", "Viktor",
]
_FAMILY = [
    "Almeida", "Bianchi", "Costa", "Dubois", "Eriksen", "Fernandez",
    "Gruber", "Horvat", "Ivanov", "Jansen", "Kovacs", "Lombardi", "Moreau",
    "Novak", "Oliveira", "Petrov", "Rossi", "Silva", "Torres", "Vogel",
    "Weber", "Zielinski", "Andersen", "Bakker", "Castro", "Dimitrov",
]

SYNTHETIC_PLAYER_COUNT = 220

SEASONS = ("2014/2015", "2015/2016", "2016/2017")

#: Snapshot dates for the attribute tables, one per season.
ATTRIBUTE_DATES = ("2015-02-01", "2016-02-01", "2017-02-01")


def _synthetic_players() -> list[tuple]:
    players = []
    seen = {name for name, _, _, _ in SEED_PLAYERS}
    index = 0
    while len(players) < SYNTHETIC_PLAYER_COUNT:
        given = _GIVEN[index % len(_GIVEN)]
        family = _FAMILY[(index * 3 + index // len(_GIVEN)) % len(_FAMILY)]
        name = f"{given} {family}"
        index += 1
        if name in seen:
            continue
        seen.add(name)
        height = det_int(165, 200, "ef-height", name)
        weight = det_int(60, 95, "ef-weight", name)
        birth_year = det_int(1975, 2000, "ef-birth", name)
        players.append((name, height, weight, birth_year))
    return players


def _original_schema() -> DatabaseSchema:
    return DatabaseSchema(
        name="european_football",
        tables=[
            TableSchema(
                "country",
                [ColumnSchema("id", "INTEGER", nullable=False),
                 ColumnSchema("country_name", "TEXT", nullable=False)],
                primary_key=("id",),
            ),
            TableSchema(
                "league",
                [ColumnSchema("id", "INTEGER", nullable=False),
                 ColumnSchema("country_id", "INTEGER", nullable=False),
                 ColumnSchema("league_name", "TEXT", nullable=False)],
                primary_key=("id",),
                foreign_keys=[ForeignKey(("country_id",), "country", ("id",))],
            ),
            TableSchema(
                "team",
                [ColumnSchema("id", "INTEGER", nullable=False),
                 ColumnSchema("team_long_name", "TEXT", nullable=False),
                 ColumnSchema("team_short_name", "TEXT"),
                 ColumnSchema("country_id", "INTEGER", nullable=False)],
                primary_key=("id",),
                foreign_keys=[ForeignKey(("country_id",), "country", ("id",))],
            ),
            TableSchema(
                "player",
                [ColumnSchema("id", "INTEGER", nullable=False),
                 ColumnSchema("player_name", "TEXT", nullable=False),
                 ColumnSchema("height_cm", "INTEGER"),
                 ColumnSchema("weight_kg", "INTEGER"),
                 ColumnSchema("birth_year", "INTEGER")],
                primary_key=("id",),
            ),
            TableSchema(
                "match",
                [
                    ColumnSchema("id", "INTEGER", nullable=False),
                    ColumnSchema("league_id", "INTEGER", nullable=False),
                    ColumnSchema("season", "TEXT", nullable=False),
                    ColumnSchema("stage", "INTEGER", nullable=False),
                    ColumnSchema("match_date", "TEXT", nullable=False),
                    ColumnSchema("home_team_id", "INTEGER", nullable=False),
                    ColumnSchema("away_team_id", "INTEGER", nullable=False),
                    ColumnSchema("home_team_goal", "INTEGER", nullable=False),
                    ColumnSchema("away_team_goal", "INTEGER", nullable=False),
                ],
                primary_key=("id",),
                foreign_keys=[
                    ForeignKey(("league_id",), "league", ("id",)),
                    ForeignKey(("home_team_id",), "team", ("id",)),
                    ForeignKey(("away_team_id",), "team", ("id",)),
                ],
            ),
            TableSchema(
                "player_attributes",
                [
                    ColumnSchema("id", "INTEGER", nullable=False),
                    ColumnSchema("player_id", "INTEGER", nullable=False),
                    ColumnSchema("snapshot_date", "TEXT", nullable=False),
                    ColumnSchema("overall_rating", "INTEGER"),
                    ColumnSchema("potential", "INTEGER"),
                    ColumnSchema("preferred_foot", "TEXT"),
                    ColumnSchema("stamina", "INTEGER"),
                    ColumnSchema("sprint_speed", "INTEGER"),
                ],
                primary_key=("id",),
                foreign_keys=[ForeignKey(("player_id",), "player", ("id",))],
            ),
            TableSchema(
                "team_attributes",
                [
                    ColumnSchema("id", "INTEGER", nullable=False),
                    ColumnSchema("team_id", "INTEGER", nullable=False),
                    ColumnSchema("buildup_play_speed", "INTEGER"),
                    ColumnSchema("defence_pressure", "INTEGER"),
                    ColumnSchema("chance_creation_passing", "INTEGER"),
                ],
                primary_key=("id",),
                foreign_keys=[ForeignKey(("team_id",), "team", ("id",))],
            ),
        ],
    )


CURATION_PLAN = CurationPlan(
    drop_columns={
        "player": ("height_cm", "weight_kg", "birth_year"),
        "team": ("team_short_name",),
    },
)

PLAYER_EXPANSION = ExpansionTable(
    name="player_info",
    source_table="player",
    key_columns=("player_name",),
    columns=(
        ExpansionColumn("height_cm", KIND_NUMERIC,
                        ("height", "tall"), None,
                        "Height of the player in centimeters"),
        ExpansionColumn("weight_kg", KIND_NUMERIC,
                        ("weight", "heav"), None,
                        "Weight of the player in kilograms"),
        ExpansionColumn("birth_year", KIND_NUMERIC,
                        ("born", "birth", "young", "old"), None,
                        "Year the player was born"),
    ),
)

TEAM_EXPANSION = ExpansionTable(
    name="team_info",
    source_table="team",
    key_columns=("team_long_name",),
    columns=(
        ExpansionColumn("team_short_name", KIND_FREEFORM,
                        ("short name", "abbreviation"), None,
                        "Three-letter short name of the team"),
    ),
)


def build_world() -> World:
    """Construct the European Football world deterministically."""
    countries = [country for country, _ in LEAGUES]
    country_rows = [(i + 1, name) for i, name in enumerate(countries)]
    country_ids = {name: i for i, name in country_rows}
    league_rows = [
        (i + 1, country_ids[country], league)
        for i, (country, league) in enumerate(LEAGUES)
    ]
    league_of_country = {row[1]: row[0] for row in league_rows}

    team_rows = [
        (i + 1, long_name, short_name, country_ids[country])
        for i, (long_name, short_name, country) in enumerate(TEAMS)
    ]
    teams_by_country: dict[int, list[int]] = {}
    for team_id, _, _, country_id in team_rows:
        teams_by_country.setdefault(country_id, []).append(team_id)

    players = list(SEED_PLAYERS) + _synthetic_players()
    player_rows = [
        (i + 1, name, height, weight, birth_year)
        for i, (name, height, weight, birth_year) in enumerate(players)
    ]

    match_rows: list[tuple] = []
    match_id = 0
    for season_index, season in enumerate(SEASONS):
        year = 2014 + season_index
        for country_id, team_ids in sorted(teams_by_country.items()):
            league_id = league_of_country[country_id]
            stage = 0
            # double round robin among the four league teams
            for home in team_ids:
                for away in team_ids:
                    if home == away:
                        continue
                    stage += 1
                    match_id += 1
                    home_goal = det_int(0, 4, "ef-hg", season, home, away)
                    away_goal = det_int(0, 3, "ef-ag", season, home, away)
                    month = (stage - 1) % 9 + 8
                    match_year = year if month >= 8 else year + 1
                    match_rows.append(
                        (match_id, league_id, season, stage,
                         f"{match_year}-{month % 12 + 1:02d}-{(stage * 3) % 27 + 1:02d}",
                         home, away, home_goal, away_goal)
                    )

    player_attribute_rows: list[tuple] = []
    attr_id = 0
    for player_id, name, height, weight, birth_year in player_rows:
        base_rating = det_int(55, 94, "ef-rating", name)
        for snapshot_index, snapshot_date in enumerate(ATTRIBUTE_DATES):
            attr_id += 1
            drift = det_int(-3, 3, "ef-drift", name, snapshot_index)
            rating = max(40, min(99, base_rating + drift))
            player_attribute_rows.append(
                (
                    attr_id, player_id, snapshot_date, rating,
                    min(99, rating + det_int(0, 6, "ef-pot", name, snapshot_index)),
                    "left" if det_uniform("ef-foot", name) < 0.25 else "right",
                    det_int(40, 95, "ef-stam", name, snapshot_index),
                    det_int(40, 97, "ef-speed", name, snapshot_index),
                )
            )

    team_attribute_rows = [
        (
            i + 1, team_id,
            det_int(30, 80, "ef-build", team_id),
            det_int(30, 75, "ef-press", team_id),
            det_int(30, 80, "ef-pass", team_id),
        )
        for i, (team_id, _, _, _) in enumerate(team_rows)
    ]

    original_rows = {
        "country": country_rows,
        "league": league_rows,
        "team": team_rows,
        "player": player_rows,
        "match": match_rows,
        "player_attributes": player_attribute_rows,
        "team_attributes": team_attribute_rows,
    }

    schema = _original_schema()
    curated = apply_curation(schema, original_rows, CURATION_PLAN)

    player_truth = {
        (name,): {"height_cm": height, "weight_kg": weight, "birth_year": birth_year}
        for name, height, weight, birth_year in players
    }
    team_truth = {
        (long_name,): {"team_short_name": short_name}
        for long_name, short_name, _ in TEAMS
    }

    # Star players are far better known than journeymen; clubs are famous.
    seed_names = {name for name, _, _, _ in SEED_PLAYERS}
    popularity = {
        "player_info": {
            (name,): (1.9 if name in seed_names else 0.45)
            for name, _, _, _ in players
        },
        "team_info": {(long_name,): 1.5 for long_name, _, _ in TEAMS},
    }

    return World(
        name="european_football",
        title="European Football",
        original_schema=schema,
        curated_schema=curated.schema,
        original_rows=original_rows,
        curated_rows=curated.rows,
        expansions=[PLAYER_EXPANSION, TEAM_EXPANSION],
        truth={"player_info": player_truth, "team_info": team_truth},
        value_lists={"countries": list(countries)},
        dropped_columns=curated.dropped_columns,
        popularity=popularity,
    )
