"""The Superhero world.

Mirrors the Bird/SWAN superhero database: a central ``superhero`` table
with foreign keys into small lookup tables (publisher, colour, race,
gender, alignment), a many-to-many ``hero_power`` relation, and per-hero
attribute scores.

Curation (Section 3.2 of the paper): the seven lookup foreign keys are
dropped from ``superhero``, and the ``publisher`` and ``hero_power``
tables are removed entirely — 11 columns dropped, matching Table 1.  The
distinct publisher names and power names are retained as value lists.

The LLM expansion table is ``superhero_info`` keyed on the meaningful
(superhero_name, full_name) pair (Section 3.4), with the publisher, the
three colours, race, gender, moral alignment, and the condensed
one-to-many ``powers`` string (Section 4.1) to generate.
"""

from __future__ import annotations

from repro.sqlengine.schema import (
    ColumnSchema,
    DatabaseSchema,
    ForeignKey,
    TableSchema,
)
from repro.swan.base import (
    KIND_MULTI,
    KIND_SELECTION,
    ExpansionColumn,
    ExpansionTable,
    World,
)
from repro.swan.curation import CurationPlan, apply_curation
from repro.swan.worlds.util import det_choice, det_int, det_sample

PUBLISHERS = [
    "Dark Horse Comics",
    "DC Comics",
    "IDW Publishing",
    "Icon Comics",
    "Image Comics",
    "Marvel Comics",
    "Valiant Comics",
    "Wildstorm",
]

COLOURS = [
    "Amber",
    "Auburn",
    "Black",
    "Blond",
    "Blue",
    "Brown",
    "Fair",
    "Green",
    "Grey",
    "Hazel",
    "No Colour",
    "Purple",
    "Red",
    "Silver",
    "White",
]

RACES = [
    "Alien",
    "Amazon",
    "Android",
    "Asgardian",
    "Atlantean",
    "Cyborg",
    "Demon",
    "Eternal",
    "Human",
    "Kryptonian",
    "Mutant",
    "Symbiote",
]

GENDERS = ["Female", "Male", "Non-Binary"]

ALIGNMENTS = ["Bad", "Good", "Neutral"]

POWERS = [
    "Accelerated Healing",
    "Agility",
    "Cold Resistance",
    "Durability",
    "Elemental Control",
    "Energy Blasts",
    "Enhanced Senses",
    "Flight",
    "Force Fields",
    "Heat Vision",
    "Intelligence",
    "Invisibility",
    "Invulnerability",
    "Longevity",
    "Magic",
    "Marksmanship",
    "Mind Control",
    "Night Vision",
    "Power Suit",
    "Regeneration",
    "Shape Shifting",
    "Size Changing",
    "Stealth",
    "Super Speed",
    "Super Strength",
    "Telekinesis",
    "Telepathy",
    "Teleportation",
    "Underwater Breathing",
    "Wall Crawling",
    "Weapons Master",
    "Weather Control",
    "Web Creation",
    "X-Ray Vision",
]

ATTRIBUTES = ["Combat", "Durability", "Intelligence", "Power", "Speed", "Strength"]

# (hero_name, full_name, publisher, eye, hair, skin, race, gender,
#  alignment, height_cm, weight_kg, powers)
_HEROES: list[tuple] = [
    ("Spider-Man", "Peter Parker", "Marvel Comics", "Hazel", "Brown", "Fair", "Human", "Male", "Good", 178, 76, ("Agility", "Wall Crawling", "Web Creation", "Enhanced Senses")),
    ("Iron Man", "Tony Stark", "Marvel Comics", "Blue", "Black", "Fair", "Human", "Male", "Good", 185, 102, ("Power Suit", "Flight", "Intelligence", "Energy Blasts")),
    ("Captain America", "Steve Rogers", "Marvel Comics", "Blue", "Blond", "Fair", "Human", "Male", "Good", 188, 108, ("Super Strength", "Agility", "Durability")),
    ("Thor", "Thor Odinson", "Marvel Comics", "Blue", "Blond", "Fair", "Asgardian", "Male", "Good", 198, 290, ("Super Strength", "Flight", "Weather Control", "Longevity")),
    ("Hulk", "Bruce Banner", "Marvel Comics", "Green", "Green", "Green", "Human", "Male", "Good", 244, 630, ("Super Strength", "Durability", "Regeneration")),
    ("Black Widow", "Natasha Romanoff", "Marvel Comics", "Green", "Red", "Fair", "Human", "Female", "Good", 170, 59, ("Agility", "Stealth", "Marksmanship", "Weapons Master")),
    ("Hawkeye", "Clint Barton", "Marvel Comics", "Blue", "Blond", "Fair", "Human", "Male", "Good", 191, 104, ("Marksmanship", "Agility", "Weapons Master")),
    ("Doctor Strange", "Stephen Strange", "Marvel Comics", "Grey", "Black", "Fair", "Human", "Male", "Good", 188, 82, ("Magic", "Flight", "Teleportation", "Telepathy")),
    ("Black Panther", "T'Challa", "Marvel Comics", "Brown", "Black", "Brown", "Human", "Male", "Good", 183, 91, ("Agility", "Enhanced Senses", "Super Strength", "Stealth")),
    ("Scarlet Witch", "Wanda Maximoff", "Marvel Comics", "Green", "Auburn", "Fair", "Mutant", "Female", "Good", 170, 59, ("Magic", "Telekinesis", "Mind Control", "Energy Blasts")),
    ("Vision", "Victor Shade", "Marvel Comics", "Red", "No Colour", "Red", "Android", "Male", "Good", 191, 136, ("Flight", "Intelligence", "Durability", "Energy Blasts")),
    ("Wolverine", "James Howlett", "Marvel Comics", "Blue", "Black", "Fair", "Mutant", "Male", "Good", 160, 136, ("Accelerated Healing", "Regeneration", "Enhanced Senses", "Agility")),
    ("Storm", "Ororo Munroe", "Marvel Comics", "Blue", "White", "Brown", "Mutant", "Female", "Good", 180, 66, ("Weather Control", "Flight", "Elemental Control")),
    ("Cyclops", "Scott Summers", "Marvel Comics", "Brown", "Brown", "Fair", "Mutant", "Male", "Good", 191, 88, ("Energy Blasts", "Marksmanship")),
    ("Jean Grey", "Jean Grey", "Marvel Comics", "Green", "Red", "Fair", "Mutant", "Female", "Good", 168, 52, ("Telepathy", "Telekinesis", "Mind Control", "Flight")),
    ("Beast", "Henry McCoy", "Marvel Comics", "Blue", "Blue", "Blue", "Mutant", "Male", "Good", 180, 181, ("Agility", "Super Strength", "Intelligence", "Enhanced Senses")),
    ("Rogue", "Anna Marie", "Marvel Comics", "Green", "Auburn", "Fair", "Mutant", "Female", "Good", 173, 54, ("Flight", "Super Strength", "Invulnerability")),
    ("Gambit", "Remy LeBeau", "Marvel Comics", "Red", "Brown", "Fair", "Mutant", "Male", "Good", 185, 81, ("Energy Blasts", "Agility", "Stealth")),
    ("Deadpool", "Wade Wilson", "Marvel Comics", "Brown", "No Colour", "Fair", "Mutant", "Male", "Neutral", 188, 95, ("Accelerated Healing", "Regeneration", "Weapons Master", "Agility")),
    ("Daredevil", "Matt Murdock", "Marvel Comics", "Blue", "Red", "Fair", "Human", "Male", "Good", 183, 91, ("Enhanced Senses", "Agility", "Weapons Master")),
    ("Punisher", "Frank Castle", "Marvel Comics", "Blue", "Black", "Fair", "Human", "Male", "Neutral", 185, 91, ("Marksmanship", "Weapons Master", "Stealth")),
    ("Ant-Man", "Scott Lang", "Marvel Comics", "Blue", "Blond", "Fair", "Human", "Male", "Good", 180, 86, ("Size Changing", "Agility")),
    ("Wasp", "Janet van Dyne", "Marvel Comics", "Blue", "Auburn", "Fair", "Human", "Female", "Good", 163, 50, ("Size Changing", "Flight", "Energy Blasts")),
    ("Captain Marvel", "Carol Danvers", "Marvel Comics", "Blue", "Blond", "Fair", "Human", "Female", "Good", 180, 74, ("Flight", "Super Strength", "Energy Blasts", "Durability")),
    ("Star-Lord", "Peter Quill", "Marvel Comics", "Blue", "Brown", "Fair", "Human", "Male", "Good", 188, 79, ("Marksmanship", "Flight", "Intelligence")),
    ("Gamora", "Gamora Zen Whoberi", "Marvel Comics", "Green", "Black", "Green", "Alien", "Female", "Good", 183, 77, ("Agility", "Weapons Master", "Accelerated Healing")),
    ("Drax", "Arthur Douglas", "Marvel Comics", "Red", "No Colour", "Green", "Alien", "Male", "Good", 193, 306, ("Super Strength", "Durability", "Weapons Master")),
    ("Rocket Raccoon", "Rocket Raccoon", "Marvel Comics", "Brown", "Brown", "Brown", "Alien", "Male", "Good", 122, 25, ("Marksmanship", "Intelligence", "Stealth")),
    ("Groot", "Groot", "Marvel Comics", "Black", "No Colour", "Brown", "Alien", "Male", "Good", 701, 4, ("Regeneration", "Super Strength", "Size Changing")),
    ("Venom", "Eddie Brock", "Marvel Comics", "Blue", "Blond", "Black", "Symbiote", "Male", "Bad", 191, 118, ("Super Strength", "Shape Shifting", "Wall Crawling", "Web Creation")),
    ("Magneto", "Max Eisenhardt", "Marvel Comics", "Grey", "White", "Fair", "Mutant", "Male", "Bad", 188, 86, ("Elemental Control", "Flight", "Force Fields")),
    ("Loki", "Loki Laufeyson", "Marvel Comics", "Green", "Black", "Fair", "Asgardian", "Male", "Bad", 193, 236, ("Magic", "Shape Shifting", "Telepathy", "Longevity")),
    ("Thanos", "Thanos", "Marvel Comics", "Red", "No Colour", "Purple", "Eternal", "Male", "Bad", 201, 443, ("Super Strength", "Durability", "Energy Blasts", "Longevity")),
    ("Green Goblin", "Norman Osborn", "Marvel Comics", "Green", "Auburn", "Fair", "Human", "Male", "Bad", 180, 83, ("Super Strength", "Intelligence", "Flight")),
    ("Doctor Doom", "Victor Von Doom", "Marvel Comics", "Brown", "Brown", "Fair", "Human", "Male", "Bad", 201, 187, ("Magic", "Intelligence", "Power Suit", "Energy Blasts")),
    ("Silver Surfer", "Norrin Radd", "Marvel Comics", "Black", "No Colour", "Silver", "Alien", "Male", "Good", 193, 102, ("Flight", "Energy Blasts", "Invulnerability", "Longevity")),
    ("Human Torch", "Johnny Storm", "Marvel Comics", "Blue", "Blond", "Fair", "Human", "Male", "Good", 178, 77, ("Flight", "Energy Blasts", "Heat Vision")),
    ("Invisible Woman", "Susan Storm", "Marvel Comics", "Blue", "Blond", "Fair", "Human", "Female", "Good", 168, 54, ("Invisibility", "Force Fields")),
    ("Mister Fantastic", "Reed Richards", "Marvel Comics", "Brown", "Brown", "Fair", "Human", "Male", "Good", 185, 82, ("Shape Shifting", "Intelligence", "Size Changing")),
    ("The Thing", "Ben Grimm", "Marvel Comics", "Blue", "No Colour", "Brown", "Human", "Male", "Good", 183, 227, ("Super Strength", "Durability", "Invulnerability")),
    ("Nick Fury", "Nicholas Fury", "Marvel Comics", "Brown", "Grey", "Brown", "Human", "Male", "Good", 185, 102, ("Marksmanship", "Stealth", "Intelligence")),
    ("Falcon", "Sam Wilson", "Marvel Comics", "Brown", "Black", "Brown", "Human", "Male", "Good", 188, 109, ("Flight", "Marksmanship", "Enhanced Senses")),
    ("Winter Soldier", "Bucky Barnes", "Marvel Comics", "Blue", "Brown", "Fair", "Human", "Male", "Neutral", 175, 118, ("Super Strength", "Marksmanship", "Weapons Master")),
    ("Ghost Rider", "Johnny Blaze", "Marvel Comics", "Red", "No Colour", "Fair", "Demon", "Male", "Good", 188, 99, ("Magic", "Regeneration", "Invulnerability")),
    ("Superman", "Clark Kent", "DC Comics", "Blue", "Black", "Fair", "Kryptonian", "Male", "Good", 191, 107, ("Flight", "Super Strength", "Heat Vision", "X-Ray Vision", "Invulnerability")),
    ("Batman", "Bruce Wayne", "DC Comics", "Blue", "Black", "Fair", "Human", "Male", "Good", 188, 95, ("Intelligence", "Stealth", "Weapons Master", "Marksmanship")),
    ("Wonder Woman", "Diana Prince", "DC Comics", "Blue", "Black", "Fair", "Amazon", "Female", "Good", 183, 74, ("Super Strength", "Flight", "Longevity", "Weapons Master")),
    ("The Flash", "Barry Allen", "DC Comics", "Blue", "Blond", "Fair", "Human", "Male", "Good", 183, 88, ("Super Speed", "Accelerated Healing", "Agility")),
    ("Green Lantern", "Hal Jordan", "DC Comics", "Brown", "Brown", "Fair", "Human", "Male", "Good", 188, 90, ("Force Fields", "Flight", "Energy Blasts")),
    ("Aquaman", "Arthur Curry", "DC Comics", "Blue", "Blond", "Fair", "Atlantean", "Male", "Good", 185, 146, ("Underwater Breathing", "Super Strength", "Telepathy")),
    ("Cyborg", "Victor Stone", "DC Comics", "Brown", "Black", "Brown", "Cyborg", "Male", "Good", 198, 174, ("Power Suit", "Intelligence", "Energy Blasts", "Durability")),
    ("Green Arrow", "Oliver Queen", "DC Comics", "Green", "Blond", "Fair", "Human", "Male", "Good", 178, 88, ("Marksmanship", "Agility", "Stealth")),
    ("Batgirl", "Barbara Gordon", "DC Comics", "Green", "Red", "Fair", "Human", "Female", "Good", 170, 57, ("Intelligence", "Agility", "Stealth")),
    ("Nightwing", "Dick Grayson", "DC Comics", "Blue", "Black", "Fair", "Human", "Male", "Good", 178, 79, ("Agility", "Stealth", "Weapons Master")),
    ("Supergirl", "Kara Zor-El", "DC Comics", "Blue", "Blond", "Fair", "Kryptonian", "Female", "Good", 165, 54, ("Flight", "Super Strength", "Heat Vision", "Invulnerability")),
    ("Shazam", "Billy Batson", "DC Comics", "Brown", "Black", "Fair", "Human", "Male", "Good", 193, 101, ("Super Strength", "Flight", "Magic")),
    ("Martian Manhunter", "J'onn J'onzz", "DC Comics", "Red", "No Colour", "Green", "Alien", "Male", "Good", 201, 135, ("Telepathy", "Shape Shifting", "Flight", "Invisibility")),
    ("Joker", "Jack Napier", "DC Comics", "Green", "Green", "White", "Human", "Male", "Bad", 180, 73, ("Intelligence", "Stealth")),
    ("Lex Luthor", "Alexander Luthor", "DC Comics", "Green", "No Colour", "Fair", "Human", "Male", "Bad", 188, 95, ("Intelligence", "Power Suit")),
    ("Harley Quinn", "Harleen Quinzel", "DC Comics", "Blue", "Blond", "White", "Human", "Female", "Bad", 170, 63, ("Agility", "Weapons Master")),
    ("Catwoman", "Selina Kyle", "DC Comics", "Green", "Black", "Fair", "Human", "Female", "Neutral", 175, 61, ("Agility", "Stealth", "Night Vision")),
    ("Penguin", "Oswald Cobblepot", "DC Comics", "Blue", "Black", "Fair", "Human", "Male", "Bad", 157, 79, ("Intelligence",)),
    ("Riddler", "Edward Nygma", "DC Comics", "Green", "Brown", "Fair", "Human", "Male", "Bad", 183, 83, ("Intelligence",)),
    ("Bane", "Antonio Diego", "DC Comics", "Brown", "Black", "Fair", "Human", "Male", "Bad", 203, 181, ("Super Strength", "Durability", "Intelligence")),
    ("Deathstroke", "Slade Wilson", "DC Comics", "Blue", "White", "Fair", "Human", "Male", "Bad", 193, 102, ("Weapons Master", "Marksmanship", "Accelerated Healing", "Agility")),
    ("Zatanna", "Zatanna Zatara", "DC Comics", "Blue", "Black", "Fair", "Human", "Female", "Good", 170, 57, ("Magic", "Telekinesis", "Teleportation")),
    ("Hawkgirl", "Shiera Hall", "DC Comics", "Green", "Red", "Fair", "Human", "Female", "Good", 175, 61, ("Flight", "Weapons Master", "Regeneration")),
    ("Black Canary", "Dinah Lance", "DC Comics", "Blue", "Blond", "Fair", "Human", "Female", "Good", 165, 58, ("Energy Blasts", "Agility", "Weapons Master")),
    ("Darkseid", "Uxas", "DC Comics", "Red", "No Colour", "Grey", "Alien", "Male", "Bad", 267, 817, ("Super Strength", "Energy Blasts", "Invulnerability", "Longevity")),
    ("Brainiac", "Vril Dox", "DC Comics", "Green", "No Colour", "Green", "Android", "Male", "Bad", 198, 135, ("Intelligence", "Telepathy", "Force Fields")),
    ("Hellboy", "Anung Un Rama", "Dark Horse Comics", "Amber", "Black", "Red", "Demon", "Male", "Good", 259, 158, ("Super Strength", "Longevity", "Regeneration")),
    ("The Mask", "Stanley Ipkiss", "Dark Horse Comics", "Green", "Brown", "Green", "Human", "Male", "Neutral", 178, 81, ("Shape Shifting", "Invulnerability", "Magic")),
    ("Ghost", "Elisa Cameron", "Dark Horse Comics", "Blue", "White", "Fair", "Human", "Female", "Good", 168, 54, ("Invisibility", "Teleportation", "Marksmanship")),
    ("Spawn", "Al Simmons", "Image Comics", "Green", "Black", "Brown", "Demon", "Male", "Neutral", 180, 204, ("Magic", "Teleportation", "Regeneration", "Energy Blasts")),
    ("Invincible", "Mark Grayson", "Image Comics", "Brown", "Black", "Fair", "Human", "Male", "Good", 180, 88, ("Flight", "Super Strength", "Invulnerability")),
    ("Savage Dragon", "Dragon", "Image Comics", "Brown", "No Colour", "Green", "Alien", "Male", "Good", 193, 108, ("Super Strength", "Regeneration", "Durability")),
    ("Witchblade", "Sara Pezzini", "Image Comics", "Blue", "Brown", "Fair", "Human", "Female", "Good", 170, 59, ("Power Suit", "Magic", "Accelerated Healing")),
    ("Bloodshot", "Ray Garrison", "Valiant Comics", "Red", "Black", "White", "Cyborg", "Male", "Neutral", 185, 79, ("Regeneration", "Super Strength", "Marksmanship")),
    ("X-O Manowar", "Aric of Dacia", "Valiant Comics", "Brown", "Brown", "Fair", "Human", "Male", "Good", 188, 97, ("Power Suit", "Flight", "Super Strength")),
    ("Faith", "Faith Herbert", "Valiant Comics", "Blue", "Blond", "Fair", "Human", "Female", "Good", 168, 91, ("Flight", "Telekinesis")),
    ("Spartan", "Hadrian", "Wildstorm", "Blue", "Black", "Fair", "Android", "Male", "Good", 188, 102, ("Flight", "Energy Blasts", "Intelligence")),
    ("Zealot", "Zannah", "Wildstorm", "Blue", "White", "Fair", "Alien", "Female", "Good", 178, 70, ("Weapons Master", "Longevity", "Agility")),
    ("Midnighter", "Lucas Trent", "Wildstorm", "Blue", "Black", "Fair", "Human", "Male", "Good", 191, 97, ("Enhanced Senses", "Accelerated Healing", "Weapons Master")),
    ("Apollo", "Andrew Pulaski", "Wildstorm", "Blue", "Blond", "Fair", "Human", "Male", "Good", 183, 97, ("Flight", "Super Strength", "Heat Vision")),
    ("Snake Eyes", "Classified", "IDW Publishing", "Blue", "Black", "Fair", "Human", "Male", "Good", 188, 88, ("Weapons Master", "Stealth", "Agility")),
    ("Optimus Prime", "Orion Pax", "IDW Publishing", "Blue", "No Colour", "Silver", "Android", "Male", "Good", 670, 4000, ("Super Strength", "Intelligence", "Durability", "Marksmanship")),
    ("Kick-Ass", "Dave Lizewski", "Icon Comics", "Blue", "Blond", "Fair", "Human", "Male", "Good", 170, 66, ("Durability", "Weapons Master")),
    ("Hit-Girl", "Mindy McCready", "Icon Comics", "Blue", "Purple", "Fair", "Human", "Female", "Good", 142, 41, ("Weapons Master", "Agility", "Marksmanship")),
]

# Synthetic heroes extend the roster deterministically; their facts are as
# much ground truth as the seeded ones (the world defines reality here).
_SYNTH_FIRST = [
    "Crimson", "Shadow", "Iron", "Silver", "Golden", "Night", "Star", "Storm",
    "Frost", "Ember", "Cobalt", "Onyx", "Scarlet", "Azure", "Obsidian", "Solar",
]
_SYNTH_SECOND = [
    "Falcon", "Sentinel", "Specter", "Warden", "Nova", "Raven", "Paladin",
    "Phantom", "Tiger", "Griffin", "Seraph", "Viper",
]
_SYNTH_SURNAMES = [
    "Mercer", "Calloway", "Drake", "Ellison", "Foster", "Grant", "Hale",
    "Iverson", "Jennings", "Kessler", "Lowell", "Monroe", "Norwood", "Osei",
    "Prescott", "Quimby", "Ramsey", "Sterling", "Thatcher", "Underhill",
]
_SYNTH_GIVEN = [
    "Adrian", "Bianca", "Cole", "Dana", "Elias", "Fiona", "Gideon", "Helena",
    "Isaac", "Jade", "Kieran", "Luna", "Marcus", "Nina", "Owen", "Priya",
    "Quinn", "Rosa", "Silas", "Tessa",
]

SYNTHETIC_HERO_COUNT = 40


def _synthetic_heroes() -> list[tuple]:
    heroes = []
    seen_names: set[str] = set()
    for index in range(SYNTHETIC_HERO_COUNT):
        first = _SYNTH_FIRST[index % len(_SYNTH_FIRST)]
        second = _SYNTH_SECOND[(index * 7 + index // len(_SYNTH_FIRST)) % len(_SYNTH_SECOND)]
        hero_name = f"{first} {second}"
        if hero_name in seen_names:
            hero_name = f"{hero_name} II"
        seen_names.add(hero_name)
        given = _SYNTH_GIVEN[det_int(0, len(_SYNTH_GIVEN) - 1, "sh-given", index)]
        surname = _SYNTH_SURNAMES[det_int(0, len(_SYNTH_SURNAMES) - 1, "sh-sur", index)]
        full_name = f"{given} {surname}"
        publisher = det_choice(PUBLISHERS, "sh-pub", index)
        eye = det_choice(COLOURS, "sh-eye", index)
        hair = det_choice(COLOURS, "sh-hair", index)
        skin = det_choice(["Fair", "Brown", "Green", "Grey", "Blue", "White"], "sh-skin", index)
        race = det_choice(RACES, "sh-race", index)
        gender = det_choice(GENDERS, "sh-gender", index)
        alignment = det_choice(ALIGNMENTS, "sh-align", index)
        height = det_int(150, 210, "sh-height", index)
        weight = det_int(45, 180, "sh-weight", index)
        power_count = det_int(2, 4, "sh-pcount", index)
        powers = tuple(det_sample(POWERS, power_count, "sh-powers", index))
        heroes.append(
            (hero_name, full_name, publisher, eye, hair, skin, race, gender,
             alignment, height, weight, powers)
        )
    return heroes


def _original_schema() -> DatabaseSchema:
    return DatabaseSchema(
        name="superhero",
        tables=[
            TableSchema(
                "publisher",
                [ColumnSchema("id", "INTEGER", nullable=False),
                 ColumnSchema("publisher_name", "TEXT", nullable=False)],
                primary_key=("id",),
            ),
            TableSchema(
                "colour",
                [ColumnSchema("id", "INTEGER", nullable=False),
                 ColumnSchema("colour", "TEXT", nullable=False)],
                primary_key=("id",),
            ),
            TableSchema(
                "race",
                [ColumnSchema("id", "INTEGER", nullable=False),
                 ColumnSchema("race", "TEXT", nullable=False)],
                primary_key=("id",),
            ),
            TableSchema(
                "gender",
                [ColumnSchema("id", "INTEGER", nullable=False),
                 ColumnSchema("gender", "TEXT", nullable=False)],
                primary_key=("id",),
            ),
            TableSchema(
                "alignment",
                [ColumnSchema("id", "INTEGER", nullable=False),
                 ColumnSchema("alignment", "TEXT", nullable=False)],
                primary_key=("id",),
            ),
            TableSchema(
                "superpower",
                [ColumnSchema("id", "INTEGER", nullable=False),
                 ColumnSchema("power_name", "TEXT", nullable=False)],
                primary_key=("id",),
            ),
            TableSchema(
                "superhero",
                [
                    ColumnSchema("id", "INTEGER", nullable=False),
                    ColumnSchema("superhero_name", "TEXT", nullable=False),
                    ColumnSchema("full_name", "TEXT", nullable=False),
                    ColumnSchema("eye_colour_id", "INTEGER"),
                    ColumnSchema("hair_colour_id", "INTEGER"),
                    ColumnSchema("skin_colour_id", "INTEGER"),
                    ColumnSchema("race_id", "INTEGER"),
                    ColumnSchema("publisher_id", "INTEGER"),
                    ColumnSchema("gender_id", "INTEGER"),
                    ColumnSchema("alignment_id", "INTEGER"),
                    ColumnSchema("height_cm", "INTEGER"),
                    ColumnSchema("weight_kg", "INTEGER"),
                ],
                primary_key=("id",),
                foreign_keys=[
                    ForeignKey(("publisher_id",), "publisher", ("id",)),
                    ForeignKey(("eye_colour_id",), "colour", ("id",)),
                    ForeignKey(("hair_colour_id",), "colour", ("id",)),
                    ForeignKey(("skin_colour_id",), "colour", ("id",)),
                    ForeignKey(("race_id",), "race", ("id",)),
                    ForeignKey(("gender_id",), "gender", ("id",)),
                    ForeignKey(("alignment_id",), "alignment", ("id",)),
                ],
            ),
            TableSchema(
                "hero_power",
                [ColumnSchema("hero_id", "INTEGER", nullable=False),
                 ColumnSchema("power_id", "INTEGER", nullable=False)],
                foreign_keys=[
                    ForeignKey(("hero_id",), "superhero", ("id",)),
                    ForeignKey(("power_id",), "superpower", ("id",)),
                ],
            ),
            TableSchema(
                "attribute",
                [ColumnSchema("id", "INTEGER", nullable=False),
                 ColumnSchema("attribute_name", "TEXT", nullable=False)],
                primary_key=("id",),
            ),
            TableSchema(
                "hero_attribute",
                [ColumnSchema("hero_id", "INTEGER", nullable=False),
                 ColumnSchema("attribute_id", "INTEGER", nullable=False),
                 ColumnSchema("attribute_value", "INTEGER", nullable=False)],
                foreign_keys=[
                    ForeignKey(("hero_id",), "superhero", ("id",)),
                    ForeignKey(("attribute_id",), "attribute", ("id",)),
                ],
            ),
        ],
    )


CURATION_PLAN = CurationPlan(
    drop_columns={
        "superhero": (
            "eye_colour_id",
            "hair_colour_id",
            "skin_colour_id",
            "race_id",
            "publisher_id",
            "gender_id",
            "alignment_id",
        ),
    },
    drop_tables=("publisher", "hero_power"),
)

EXPANSION = ExpansionTable(
    name="superhero_info",
    source_table="superhero",
    key_columns=("superhero_name", "full_name"),
    columns=(
        ExpansionColumn("eye_color", KIND_SELECTION, ("eye",), "colours",
                        "Eye colour of the hero"),
        ExpansionColumn("hair_color", KIND_SELECTION, ("hair",), "colours",
                        "Hair colour of the hero"),
        ExpansionColumn("skin_color", KIND_SELECTION, ("skin",), "colours",
                        "Skin colour of the hero"),
        ExpansionColumn("publisher_name", KIND_SELECTION,
                        ("publisher", "published"), "publishers",
                        "Comic book publisher of the hero"),
        ExpansionColumn("race", KIND_SELECTION, ("race", "species"), "races",
                        "Race or species of the hero"),
        ExpansionColumn("gender", KIND_SELECTION, ("gender",), "genders",
                        "Gender of the hero"),
        ExpansionColumn("moral_alignment", KIND_SELECTION,
                        ("alignment", "villain", "evil"), "alignments",
                        "Moral alignment (Good / Bad / Neutral)"),
        ExpansionColumn("powers", KIND_MULTI, ("power", "superpower", "abilities"),
                        "powers", "Comma-separated superpowers"),
    ),
)


def build_world() -> World:
    """Construct the Superhero world deterministically."""
    heroes = list(_HEROES) + _synthetic_heroes()

    publisher_rows = [(i + 1, name) for i, name in enumerate(PUBLISHERS)]
    colour_rows = [(i + 1, name) for i, name in enumerate(COLOURS)]
    race_rows = [(i + 1, name) for i, name in enumerate(RACES)]
    gender_rows = [(i + 1, name) for i, name in enumerate(GENDERS)]
    alignment_rows = [(i + 1, name) for i, name in enumerate(ALIGNMENTS)]
    power_rows = [(i + 1, name) for i, name in enumerate(POWERS)]
    attribute_rows = [(i + 1, name) for i, name in enumerate(ATTRIBUTES)]

    publisher_ids = {name: i for i, name in publisher_rows}
    colour_ids = {name: i for i, name in colour_rows}
    race_ids = {name: i for i, name in race_rows}
    gender_ids = {name: i for i, name in gender_rows}
    alignment_ids = {name: i for i, name in alignment_rows}
    power_ids = {name: i for i, name in power_rows}

    superhero_rows: list[tuple] = []
    hero_power_rows: list[tuple] = []
    hero_attribute_rows: list[tuple] = []
    truth_map: dict[tuple, dict[str, object]] = {}
    for index, hero in enumerate(heroes):
        (hero_name, full_name, publisher, eye, hair, skin, race, gender,
         alignment, height, weight, powers) = hero
        hero_id = index + 1
        superhero_rows.append(
            (
                hero_id, hero_name, full_name,
                colour_ids[eye], colour_ids[hair], colour_ids[skin],
                race_ids[race], publisher_ids[publisher],
                gender_ids[gender], alignment_ids[alignment],
                height, weight,
            )
        )
        for power in powers:
            hero_power_rows.append((hero_id, power_ids[power]))
        for attr_id, attr_name in attribute_rows:
            hero_attribute_rows.append(
                (hero_id, attr_id,
                 det_int(5, 100, "sh-attr", hero_name, attr_name))
            )
        truth_map[(hero_name, full_name)] = {
            "eye_color": eye,
            "hair_color": hair,
            "skin_color": skin,
            "publisher_name": publisher,
            "race": race,
            "gender": gender,
            "moral_alignment": alignment,
            "powers": tuple(powers),
        }

    original_rows = {
        "publisher": publisher_rows,
        "colour": colour_rows,
        "race": race_rows,
        "gender": gender_rows,
        "alignment": alignment_rows,
        "superpower": power_rows,
        "superhero": superhero_rows,
        "hero_power": hero_power_rows,
        "attribute": attribute_rows,
        "hero_attribute": hero_attribute_rows,
    }

    schema = _original_schema()
    curated = apply_curation(schema, original_rows, CURATION_PLAN)

    # Seeded heroes are household names; synthetic ones are long-tail.
    popularity = {
        "superhero_info": {
            (hero[0], hero[1]): (1.6 if index < len(_HEROES) else 0.6)
            for index, hero in enumerate(heroes)
        }
    }

    return World(
        name="superhero",
        title="Superhero",
        original_schema=schema,
        curated_schema=curated.schema,
        original_rows=original_rows,
        curated_rows=curated.rows,
        expansions=[EXPANSION],
        truth={"superhero_info": truth_map},
        value_lists={
            "publishers": list(PUBLISHERS),
            "colours": list(COLOURS),
            "races": list(RACES),
            "genders": list(GENDERS),
            "alignments": list(ALIGNMENTS),
            "powers": list(POWERS),
        },
        dropped_columns=curated.dropped_columns,
        popularity=popularity,
    )
