"""The Formula One world.

Mirrors the Bird formula_1 database: circuits, races, drivers,
constructors, per-race results, qualifying, cumulative standings, and pit
stops.  It is the *largest* SWAN database (paper Table 1), dominated by
the per-race fact tables.

Curation drops the descriptive attributes the community knows by heart
but the database now lacks: the driver's three-letter code, nationality
and birth year; the circuit's country and host city; the constructor's
nationality.  Three expansion tables cover them — SWAN's only world with
more than one LLM table, which exercises HQDL's multi-table generation.
The paper's own few-shot example ("What is the driver code, key: Lewis
Hamilton, answer: HAM") lives here.
"""

from __future__ import annotations

from repro.sqlengine.schema import (
    ColumnSchema,
    DatabaseSchema,
    ForeignKey,
    TableSchema,
)
from repro.swan.base import (
    KIND_FREEFORM,
    KIND_NUMERIC,
    KIND_SELECTION,
    ExpansionColumn,
    ExpansionTable,
    World,
)
from repro.swan.curation import CurationPlan, apply_curation
from repro.swan.worlds.util import det_int, det_shuffle, det_uniform, slugify

#: (forename, surname, code, nationality, birth_year)
DRIVERS = [
    ("Lewis", "Hamilton", "HAM", "British", 1985),
    ("Max", "Verstappen", "VER", "Dutch", 1997),
    ("Charles", "Leclerc", "LEC", "Monegasque", 1997),
    ("Fernando", "Alonso", "ALO", "Spanish", 1981),
    ("Sebastian", "Vettel", "VET", "German", 1987),
    ("Kimi", "Raikkonen", "RAI", "Finnish", 1979),
    ("Valtteri", "Bottas", "BOT", "Finnish", 1989),
    ("Sergio", "Perez", "PER", "Mexican", 1990),
    ("Carlos", "Sainz", "SAI", "Spanish", 1994),
    ("Lando", "Norris", "NOR", "British", 1999),
    ("George", "Russell", "RUS", "British", 1998),
    ("Daniel", "Ricciardo", "RIC", "Australian", 1989),
    ("Esteban", "Ocon", "OCO", "French", 1996),
    ("Pierre", "Gasly", "GAS", "French", 1996),
    ("Lance", "Stroll", "STR", "Canadian", 1998),
    ("Oscar", "Piastri", "PIA", "Australian", 2001),
    ("Alexander", "Albon", "ALB", "Thai", 1996),
    ("Yuki", "Tsunoda", "TSU", "Japanese", 2000),
    ("Kevin", "Magnussen", "MAG", "Danish", 1992),
    ("Nico", "Hulkenberg", "HUL", "German", 1987),
    ("Guanyu", "Zhou", "ZHO", "Chinese", 1999),
    ("Logan", "Sargeant", "SAR", "American", 2000),
    ("Nyck", "de Vries", "DEV", "Dutch", 1995),
    ("Mick", "Schumacher", "MSC", "German", 1999),
    ("Nicholas", "Latifi", "LAT", "Canadian", 1995),
    ("Antonio", "Giovinazzi", "GIO", "Italian", 1993),
    ("Romain", "Grosjean", "GRO", "French", 1986),
    ("Daniil", "Kvyat", "KVY", "Russian", 1994),
    ("Felipe", "Massa", "MAS", "Brazilian", 1981),
    ("Jenson", "Button", "BUT", "British", 1980),
    ("Pastor", "Maldonado", "MAL", "Venezuelan", 1985),
    ("Marcus", "Ericsson", "ERI", "Swedish", 1990),
    ("Jolyon", "Palmer", "PAL", "British", 1991),
    ("Stoffel", "Vandoorne", "VAN", "Belgian", 1992),
    ("Brendon", "Hartley", "HAR", "New Zealander", 1989),
    ("Sergey", "Sirotkin", "SIR", "Russian", 1995),
    ("Robert", "Kubica", "KUB", "Polish", 1984),
    ("Pedro", "de la Rosa", "DLR", "Spanish", 1971),
    ("Kamui", "Kobayashi", "KOB", "Japanese", 1986),
    ("Paul", "di Resta", "DIR", "Scottish", 1986),
]

NATIONALITIES = sorted({d[3] for d in DRIVERS})

#: (constructor_name, nationality)
CONSTRUCTORS = [
    ("Ferrari", "Italian"),
    ("Mercedes", "German"),
    ("Red Bull Racing", "Austrian"),
    ("McLaren", "British"),
    ("Williams", "British"),
    ("Alpine", "French"),
    ("Aston Martin", "British"),
    ("Haas", "American"),
    ("AlphaTauri", "Italian"),
    ("Alfa Romeo", "Swiss"),
    ("Renault", "French"),
    ("Racing Point", "British"),
]

CONSTRUCTOR_NATIONALITIES = sorted({c[1] for c in CONSTRUCTORS})

#: (circuit_name, country, location_city)
CIRCUITS = [
    ("Silverstone Circuit", "UK", "Silverstone"),
    ("Autodromo Nazionale Monza", "Italy", "Monza"),
    ("Circuit de Spa-Francorchamps", "Belgium", "Spa"),
    ("Circuit de Monaco", "Monaco", "Monte Carlo"),
    ("Suzuka Circuit", "Japan", "Suzuka"),
    ("Autodromo Jose Carlos Pace", "Brazil", "Sao Paulo"),
    ("Circuit of the Americas", "USA", "Austin"),
    ("Bahrain International Circuit", "Bahrain", "Sakhir"),
    ("Jeddah Corniche Circuit", "Saudi Arabia", "Jeddah"),
    ("Albert Park Grand Prix Circuit", "Australia", "Melbourne"),
    ("Circuit de Barcelona-Catalunya", "Spain", "Montmelo"),
    ("Red Bull Ring", "Austria", "Spielberg"),
    ("Hungaroring", "Hungary", "Budapest"),
    ("Circuit Park Zandvoort", "Netherlands", "Zandvoort"),
    ("Baku City Circuit", "Azerbaijan", "Baku"),
    ("Marina Bay Street Circuit", "Singapore", "Marina Bay"),
    ("Autodromo Hermanos Rodriguez", "Mexico", "Mexico City"),
    ("Las Vegas Strip Circuit", "USA", "Las Vegas"),
    ("Yas Marina Circuit", "UAE", "Abu Dhabi"),
    ("Autodromo Enzo e Dino Ferrari", "Italy", "Imola"),
    ("Circuit Gilles Villeneuve", "Canada", "Montreal"),
    ("Circuit Paul Ricard", "France", "Le Castellet"),
]

COUNTRIES = sorted({c[1] for c in CIRCUITS})

SEASONS = (2022, 2023)
RACES_PER_SEASON = 20
DRIVERS_PER_RACE = 20

#: FIA points for finishing positions 1..10.
POINTS = (25, 18, 15, 12, 10, 8, 6, 4, 2, 1)

#: Result status values (Bird's status table, abridged).
STATUSES = (
    "Finished",
    "+1 Lap",
    "+2 Laps",
    "Collision",
    "Engine",
    "Gearbox",
    "Hydraulics",
    "Retired",
)

#: How many laps of each (race, driver) get a lap_times row; Bird stores
#: every lap, we sample a fixed number to keep the world tractable while
#: preserving the table's fact-table character.
SAMPLED_LAPS = 5


def _original_schema() -> DatabaseSchema:
    return DatabaseSchema(
        name="formula_1",
        tables=[
            TableSchema(
                "circuits",
                [
                    ColumnSchema("circuit_id", "INTEGER", nullable=False),
                    ColumnSchema("circuit_ref", "TEXT", nullable=False),
                    ColumnSchema("circuit_name", "TEXT", nullable=False),
                    ColumnSchema("location", "TEXT"),
                    ColumnSchema("country", "TEXT"),
                ],
                primary_key=("circuit_id",),
            ),
            TableSchema(
                "races",
                [
                    ColumnSchema("race_id", "INTEGER", nullable=False),
                    ColumnSchema("year", "INTEGER", nullable=False),
                    ColumnSchema("round", "INTEGER", nullable=False),
                    ColumnSchema("circuit_id", "INTEGER", nullable=False),
                    ColumnSchema("race_name", "TEXT", nullable=False),
                    ColumnSchema("race_date", "TEXT", nullable=False),
                ],
                primary_key=("race_id",),
                foreign_keys=[ForeignKey(("circuit_id",), "circuits", ("circuit_id",))],
            ),
            TableSchema(
                "drivers",
                [
                    ColumnSchema("driver_id", "INTEGER", nullable=False),
                    ColumnSchema("driver_ref", "TEXT", nullable=False),
                    ColumnSchema("code", "TEXT"),
                    ColumnSchema("forename", "TEXT", nullable=False),
                    ColumnSchema("surname", "TEXT", nullable=False),
                    ColumnSchema("birth_year", "INTEGER"),
                    ColumnSchema("nationality", "TEXT"),
                ],
                primary_key=("driver_id",),
            ),
            TableSchema(
                "constructors",
                [
                    ColumnSchema("constructor_id", "INTEGER", nullable=False),
                    ColumnSchema("constructor_ref", "TEXT", nullable=False),
                    ColumnSchema("constructor_name", "TEXT", nullable=False),
                    ColumnSchema("nationality", "TEXT"),
                ],
                primary_key=("constructor_id",),
            ),
            TableSchema(
                "results",
                [
                    ColumnSchema("result_id", "INTEGER", nullable=False),
                    ColumnSchema("race_id", "INTEGER", nullable=False),
                    ColumnSchema("driver_id", "INTEGER", nullable=False),
                    ColumnSchema("constructor_id", "INTEGER", nullable=False),
                    ColumnSchema("grid", "INTEGER"),
                    ColumnSchema("position", "INTEGER"),
                    ColumnSchema("points", "REAL"),
                    ColumnSchema("laps", "INTEGER"),
                    ColumnSchema("status_id", "INTEGER"),
                ],
                primary_key=("result_id",),
                foreign_keys=[
                    ForeignKey(("race_id",), "races", ("race_id",)),
                    ForeignKey(("driver_id",), "drivers", ("driver_id",)),
                    ForeignKey(("constructor_id",), "constructors", ("constructor_id",)),
                    ForeignKey(("status_id",), "status", ("status_id",)),
                ],
            ),
            TableSchema(
                "status",
                [ColumnSchema("status_id", "INTEGER", nullable=False),
                 ColumnSchema("status", "TEXT", nullable=False)],
                primary_key=("status_id",),
            ),
            TableSchema(
                "lap_times",
                [
                    ColumnSchema("race_id", "INTEGER", nullable=False),
                    ColumnSchema("driver_id", "INTEGER", nullable=False),
                    ColumnSchema("lap", "INTEGER", nullable=False),
                    ColumnSchema("position", "INTEGER"),
                    ColumnSchema("time_ms", "INTEGER"),
                ],
                primary_key=("race_id", "driver_id", "lap"),
                foreign_keys=[
                    ForeignKey(("race_id",), "races", ("race_id",)),
                    ForeignKey(("driver_id",), "drivers", ("driver_id",)),
                ],
            ),
            TableSchema(
                "qualifying",
                [
                    ColumnSchema("qualify_id", "INTEGER", nullable=False),
                    ColumnSchema("race_id", "INTEGER", nullable=False),
                    ColumnSchema("driver_id", "INTEGER", nullable=False),
                    ColumnSchema("position", "INTEGER"),
                ],
                primary_key=("qualify_id",),
                foreign_keys=[
                    ForeignKey(("race_id",), "races", ("race_id",)),
                    ForeignKey(("driver_id",), "drivers", ("driver_id",)),
                ],
            ),
            TableSchema(
                "driver_standings",
                [
                    ColumnSchema("race_id", "INTEGER", nullable=False),
                    ColumnSchema("driver_id", "INTEGER", nullable=False),
                    ColumnSchema("points", "REAL"),
                    ColumnSchema("position", "INTEGER"),
                    ColumnSchema("wins", "INTEGER"),
                ],
                primary_key=("race_id", "driver_id"),
            ),
            TableSchema(
                "constructor_standings",
                [
                    ColumnSchema("race_id", "INTEGER", nullable=False),
                    ColumnSchema("constructor_id", "INTEGER", nullable=False),
                    ColumnSchema("points", "REAL"),
                    ColumnSchema("position", "INTEGER"),
                    ColumnSchema("wins", "INTEGER"),
                ],
                primary_key=("race_id", "constructor_id"),
            ),
            TableSchema(
                "pit_stops",
                [
                    ColumnSchema("race_id", "INTEGER", nullable=False),
                    ColumnSchema("driver_id", "INTEGER", nullable=False),
                    ColumnSchema("stop", "INTEGER", nullable=False),
                    ColumnSchema("lap", "INTEGER"),
                    ColumnSchema("duration_ms", "INTEGER"),
                ],
                primary_key=("race_id", "driver_id", "stop"),
            ),
        ],
    )


CURATION_PLAN = CurationPlan(
    drop_columns={
        "drivers": ("code", "nationality", "birth_year"),
        "circuits": ("location", "country"),
        "constructors": ("nationality",),
    },
)

DRIVER_EXPANSION = ExpansionTable(
    name="driver_info",
    source_table="drivers",
    key_columns=("forename", "surname"),
    columns=(
        ExpansionColumn("code", KIND_FREEFORM,
                        ("driver code", "abbreviation", "three-letter"), None,
                        "FIA three-letter driver code"),
        ExpansionColumn("nationality", KIND_SELECTION,
                        ("driver", "nationality of"), "nationalities",
                        "Nationality of the driver"),
        ExpansionColumn("birth_year", KIND_NUMERIC,
                        ("born", "birth year", "which year", "age"), None,
                        "Birth year of the driver"),
    ),
)

CIRCUIT_EXPANSION = ExpansionTable(
    name="circuit_info",
    source_table="circuits",
    key_columns=("circuit_name",),
    columns=(
        ExpansionColumn("country", KIND_SELECTION,
                        ("country", "nation hosting"), "countries",
                        "Country the circuit is in"),
        ExpansionColumn("location_city", KIND_FREEFORM,
                        ("city", "located", "location"), None,
                        "Host city / town of the circuit"),
    ),
)

CONSTRUCTOR_EXPANSION = ExpansionTable(
    name="constructor_info",
    source_table="constructors",
    key_columns=("constructor_name",),
    columns=(
        ExpansionColumn("nationality", KIND_SELECTION,
                        ("constructor", "team"), "constructor_nationalities",
                        "Home country of this constructor team"),
    ),
)


def _assign_teams() -> dict[int, int]:
    """driver index -> constructor index, two drivers per constructor first."""
    assignment: dict[int, int] = {}
    for driver_index in range(len(DRIVERS)):
        assignment[driver_index] = (driver_index // 2) % len(CONSTRUCTORS)
    return assignment


def build_world() -> World:
    """Construct the Formula One world deterministically."""
    circuits_rows = [
        (i + 1, slugify(name, "_"), name, location, country)
        for i, (name, country, location) in enumerate(CIRCUITS)
    ]
    drivers_rows = [
        (i + 1, slugify(f"{forename} {surname}", "_"), code, forename, surname,
         birth_year, nationality)
        for i, (forename, surname, code, nationality, birth_year) in enumerate(DRIVERS)
    ]
    constructors_rows = [
        (i + 1, slugify(name, "_"), name, nationality)
        for i, (name, nationality) in enumerate(CONSTRUCTORS)
    ]

    team_of = _assign_teams()

    status_rows = [(i + 1, name) for i, name in enumerate(STATUSES)]

    races_rows: list[tuple] = []
    results_rows: list[tuple] = []
    qualifying_rows: list[tuple] = []
    driver_standing_rows: list[tuple] = []
    constructor_standing_rows: list[tuple] = []
    pit_stop_rows: list[tuple] = []
    lap_time_rows: list[tuple] = []

    race_id = 0
    result_id = 0
    qualify_id = 0
    for year in SEASONS:
        driver_points: dict[int, float] = {}
        driver_wins: dict[int, int] = {}
        constructor_points: dict[int, float] = {}
        constructor_wins: dict[int, int] = {}
        for round_number in range(1, RACES_PER_SEASON + 1):
            race_id += 1
            circuit_index = (round_number - 1 + (year % len(CIRCUITS))) % len(CIRCUITS)
            circuit_id = circuit_index + 1
            race_name = f"{CIRCUITS[circuit_index][1]} Grand Prix"
            month = (round_number - 1) % 10 + 3
            day = (round_number * 7) % 27 + 1
            races_rows.append(
                (race_id, year, round_number, circuit_id, race_name,
                 f"{year}-{month:02d}-{day:02d}")
            )
            # deterministic finishing order: stronger (lower index) drivers
            # finish better on average, with per-race shuffling
            entrants = list(range(DRIVERS_PER_RACE))
            order = sorted(
                entrants,
                key=lambda d: d * 0.6 + det_uniform("f1-order", year, round_number, d) * 12,
            )
            grid = det_shuffle(entrants, "f1-grid", year, round_number)
            grid_position = {driver: pos + 1 for pos, driver in enumerate(grid)}
            for finish_position, driver_index in enumerate(order, start=1):
                driver_id = driver_index + 1
                constructor_id = team_of[driver_index] + 1
                points = float(POINTS[finish_position - 1]) if finish_position <= 10 else 0.0
                result_id += 1
                race_laps = det_int(50, 78, "f1-laps", year, round_number)
                # podium finishers always classify; the back of the field
                # occasionally retires with a mechanical status
                if finish_position <= 14 or det_uniform(
                    "f1-status", year, round_number, driver_index
                ) < 0.6:
                    status_id = 1 if finish_position <= 12 else det_int(
                        2, 3, "f1-lapped", year, round_number, driver_index
                    )
                else:
                    status_id = det_int(
                        4, len(STATUSES), "f1-dnf", year, round_number, driver_index
                    )
                results_rows.append(
                    (result_id, race_id, driver_id, constructor_id,
                     grid_position[driver_index], finish_position, points,
                     race_laps, status_id)
                )
                for lap_sample in range(1, SAMPLED_LAPS + 1):
                    lap = lap_sample * race_laps // SAMPLED_LAPS
                    lap_time_rows.append(
                        (race_id, driver_id, lap,
                         finish_position,
                         det_int(68_000, 102_000, "f1-laptime", year,
                                 round_number, driver_index, lap_sample))
                    )
                qualify_id += 1
                qualifying_rows.append(
                    (qualify_id, race_id, driver_id, grid_position[driver_index])
                )
                driver_points[driver_id] = driver_points.get(driver_id, 0.0) + points
                constructor_points[constructor_id] = (
                    constructor_points.get(constructor_id, 0.0) + points
                )
                if finish_position == 1:
                    driver_wins[driver_id] = driver_wins.get(driver_id, 0) + 1
                    constructor_wins[constructor_id] = (
                        constructor_wins.get(constructor_id, 0) + 1
                    )
                stops = det_int(1, 3, "f1-stops", year, round_number, driver_index)
                for stop in range(1, stops + 1):
                    pit_stop_rows.append(
                        (race_id, driver_id, stop,
                         det_int(8, 60, "f1-lap", year, round_number, driver_index, stop),
                         det_int(19000, 34000, "f1-dur", year, round_number, driver_index, stop))
                    )
            # cumulative standings after this race
            for position, (driver_id, points) in enumerate(
                sorted(driver_points.items(), key=lambda kv: (-kv[1], kv[0])), start=1
            ):
                driver_standing_rows.append(
                    (race_id, driver_id, points, position,
                     driver_wins.get(driver_id, 0))
                )
            for position, (constructor_id, points) in enumerate(
                sorted(constructor_points.items(), key=lambda kv: (-kv[1], kv[0])),
                start=1,
            ):
                constructor_standing_rows.append(
                    (race_id, constructor_id, points, position,
                     constructor_wins.get(constructor_id, 0))
                )

    original_rows = {
        "circuits": circuits_rows,
        "races": races_rows,
        "drivers": drivers_rows,
        "constructors": constructors_rows,
        "results": results_rows,
        "qualifying": qualifying_rows,
        "driver_standings": driver_standing_rows,
        "constructor_standings": constructor_standing_rows,
        "pit_stops": pit_stop_rows,
        "status": status_rows,
        "lap_times": lap_time_rows,
    }

    schema = _original_schema()
    curated = apply_curation(schema, original_rows, CURATION_PLAN)

    driver_truth = {
        (forename, surname): {
            "code": code,
            "nationality": nationality,
            "birth_year": birth_year,
        }
        for forename, surname, code, nationality, birth_year in DRIVERS
    }
    circuit_truth = {
        (name,): {"country": country, "location_city": location}
        for name, country, location in CIRCUITS
    }
    constructor_truth = {
        (name,): {"nationality": nationality} for name, nationality in CONSTRUCTORS
    }

    # All Formula One entities are real and well covered in pre-training
    # data; recent-era drivers (the first half of the roster) more so.
    popularity = {
        "driver_info": {
            (forename, surname): (1.5 if index < 22 else 1.1)
            for index, (forename, surname, _, _, _) in enumerate(DRIVERS)
        },
        "circuit_info": {(name,): 1.4 for name, _, _ in CIRCUITS},
        "constructor_info": {(name,): 1.5 for name, _ in CONSTRUCTORS},
    }

    return World(
        name="formula_1",
        title="Formula One",
        original_schema=schema,
        curated_schema=curated.schema,
        original_rows=original_rows,
        curated_rows=curated.rows,
        expansions=[DRIVER_EXPANSION, CIRCUIT_EXPANSION, CONSTRUCTOR_EXPANSION],
        truth={
            "driver_info": driver_truth,
            "circuit_info": circuit_truth,
            "constructor_info": constructor_truth,
        },
        value_lists={
            "nationalities": list(NATIONALITIES),
            "countries": list(COUNTRIES),
            "constructor_nationalities": list(CONSTRUCTOR_NATIONALITIES),
        },
        dropped_columns=curated.dropped_columns,
        popularity=popularity,
    )
