"""The four SWAN world generators.

Each module exposes ``build_world() -> World`` producing the full ground
truth deterministically (same output every call): original schema and
rows, curated schema and rows, expansion specs, value lists, and the
per-cell truth map the oracle answers from.
"""

from repro.swan.worlds.california_schools import build_world as build_california_schools
from repro.swan.worlds.european_football import build_world as build_european_football
from repro.swan.worlds.formula_one import build_world as build_formula_one
from repro.swan.worlds.superhero import build_world as build_superhero

#: Registry used by the benchmark loader; keys are SWAN database names.
WORLD_BUILDERS = {
    "superhero": build_superhero,
    "formula_1": build_formula_one,
    "california_schools": build_california_schools,
    "european_football": build_european_football,
}

__all__ = [
    "WORLD_BUILDERS",
    "build_superhero",
    "build_formula_one",
    "build_california_schools",
    "build_european_football",
]
