"""The California Schools world.

Three tables, as in Bird: ``schools`` (directory information), ``frpm``
(free/reduced-price meal statistics) and ``satscores``.  Curation drops
the locational and descriptive attributes of ``schools`` — city, county,
website, school type and funding type — leaving the analytical columns
(enrollment, meal counts, SAT scores) intact.  That mix is why the paper
observes the *highest* execution accuracy here: many questions rank by a
retained score and only filter (or merely display) generated values, and
LIMIT clauses mask errors on non-top entities (Section 5.3).

Expansion: ``school_info`` keyed on the meaningful pair
(school_name, street_address); the street address is the context from
which a model can infer the city (the paper's own example), and the
school name drives the short-form ``.edu``-style website (Section 3.3's
free-form case).
"""

from __future__ import annotations

from repro.sqlengine.schema import (
    ColumnSchema,
    DatabaseSchema,
    ForeignKey,
    TableSchema,
)
from repro.swan.base import (
    KIND_FREEFORM,
    KIND_SELECTION,
    ExpansionColumn,
    ExpansionTable,
    World,
)
from repro.swan.curation import CurationPlan, apply_curation
from repro.swan.worlds.util import det_choice, det_int, det_uniform, slugify

#: (city, county) pairs — real California geography.
CITIES = [
    ("Los Angeles", "Los Angeles"),
    ("Long Beach", "Los Angeles"),
    ("Glendale", "Los Angeles"),
    ("Pomona", "Los Angeles"),
    ("Santa Clarita", "Los Angeles"),
    ("San Diego", "San Diego"),
    ("Chula Vista", "San Diego"),
    ("Oceanside", "San Diego"),
    ("San Jose", "Santa Clara"),
    ("Palo Alto", "Santa Clara"),
    ("San Francisco", "San Francisco"),
    ("Fresno", "Fresno"),
    ("Sacramento", "Sacramento"),
    ("Oakland", "Alameda"),
    ("Fremont", "Alameda"),
    ("Berkeley", "Alameda"),
    ("Bakersfield", "Kern"),
    ("Anaheim", "Orange"),
    ("Santa Ana", "Orange"),
    ("Irvine", "Orange"),
    ("Huntington Beach", "Orange"),
    ("Riverside", "Riverside"),
    ("Moreno Valley", "Riverside"),
    ("Stockton", "San Joaquin"),
    ("San Bernardino", "San Bernardino"),
    ("Fontana", "San Bernardino"),
    ("Modesto", "Stanislaus"),
    ("Oxnard", "Ventura"),
    ("Santa Rosa", "Sonoma"),
    ("Salinas", "Monterey"),
]

COUNTIES = sorted({county for _, county in CITIES})

SCHOOL_TYPES = ["Elementary", "Middle", "High", "K-12"]

FUNDING_TYPES = ["Directly funded", "Locally funded", "State funded"]

_NAME_STEMS = [
    "Lincoln", "Washington", "Jefferson", "Roosevelt", "Kennedy", "Monroe",
    "Madison", "Franklin", "Edison", "Whitman", "Chavez", "King", "Marshall",
    "Sierra", "Redwood", "Sequoia", "Pacific", "Bayside", "Hillcrest",
    "Lakeview", "Riverbend", "Sunset", "Del Mar", "Alta Vista", "El Camino",
    "Mission", "Valley Oak", "Canyon", "Harbor", "Meadowbrook",
]

_STREET_NAMES = [
    "Main Street", "Oak Avenue", "Maple Drive", "Cedar Lane", "Elm Street",
    "Pine Road", "Willow Way", "Birch Boulevard", "Sycamore Court",
    "Juniper Avenue", "Magnolia Street", "Palm Drive",
]

SCHOOL_COUNT = 200


def _school_records() -> list[dict]:
    """Deterministic directory of SCHOOL_COUNT unique schools."""
    records: list[dict] = []
    seen: set[tuple[str, str]] = set()
    index = 0
    while len(records) < SCHOOL_COUNT:
        stem = _NAME_STEMS[index % len(_NAME_STEMS)]
        school_type = SCHOOL_TYPES[(index // len(_NAME_STEMS)) % len(SCHOOL_TYPES)]
        city, county = CITIES[det_int(0, len(CITIES) - 1, "cs-city", index)]
        if school_type == "K-12":
            name = f"{stem} Community Day School"
        else:
            name = f"{stem} {school_type} School"
        # distinguish repeated names by city
        if any(r["school_name"] == name and r["city"] == city for r in records):
            index += 1
            continue
        number = det_int(100, 9900, "cs-number", index)
        street = _STREET_NAMES[det_int(0, len(_STREET_NAMES) - 1, "cs-street", index)]
        address = f"{number} {street}"
        key = (name, address)
        if key in seen:
            index += 1
            continue
        seen.add(key)
        # Most school URLs are predictable (slug + .edu); some are quirky,
        # mirroring the free-form difficulty the paper describes.
        quirky = det_uniform("cs-url", index) < 0.2
        if quirky:
            website = f"www.{slugify(city)}-{slugify(stem)}.org"
        else:
            website = f"www.{slugify(name)}.edu"
        records.append(
            {
                "cds_code": f"CA{index + 1:07d}",
                "school_name": name,
                "district": f"{city} Unified School District",
                "street_address": address,
                "city": city,
                "county": county,
                "website": website,
                "school_type": school_type,
                "funding_type": det_choice(FUNDING_TYPES, "cs-fund", index),
                "charter": 1 if det_uniform("cs-charter", index) < 0.25 else 0,
                "open_year": det_int(1905, 2015, "cs-open", index),
            }
        )
        index += 1
    return records


def _original_schema() -> DatabaseSchema:
    return DatabaseSchema(
        name="california_schools",
        tables=[
            TableSchema(
                "schools",
                [
                    ColumnSchema("cds_code", "TEXT", nullable=False),
                    ColumnSchema("school_name", "TEXT", nullable=False),
                    ColumnSchema("district", "TEXT", nullable=False),
                    ColumnSchema("street_address", "TEXT", nullable=False),
                    ColumnSchema("city", "TEXT"),
                    ColumnSchema("county", "TEXT"),
                    ColumnSchema("website", "TEXT"),
                    ColumnSchema("school_type", "TEXT"),
                    ColumnSchema("funding_type", "TEXT"),
                    ColumnSchema("charter", "INTEGER"),
                    ColumnSchema("open_year", "INTEGER"),
                ],
                primary_key=("cds_code",),
            ),
            TableSchema(
                "frpm",
                [
                    ColumnSchema("cds_code", "TEXT", nullable=False),
                    ColumnSchema("enrollment", "INTEGER"),
                    ColumnSchema("free_meal_count", "INTEGER"),
                    ColumnSchema("frpm_count", "INTEGER"),
                    ColumnSchema("frpm_rate", "REAL"),
                ],
                primary_key=("cds_code",),
                foreign_keys=[ForeignKey(("cds_code",), "schools", ("cds_code",))],
            ),
            TableSchema(
                "satscores",
                [
                    ColumnSchema("cds_code", "TEXT", nullable=False),
                    ColumnSchema("num_test_takers", "INTEGER"),
                    ColumnSchema("avg_scr_read", "INTEGER"),
                    ColumnSchema("avg_scr_math", "INTEGER"),
                    ColumnSchema("avg_scr_write", "INTEGER"),
                    ColumnSchema("num_ge_1500", "INTEGER"),
                ],
                primary_key=("cds_code",),
                foreign_keys=[ForeignKey(("cds_code",), "schools", ("cds_code",))],
            ),
        ],
    )


CURATION_PLAN = CurationPlan(
    drop_columns={
        "schools": ("city", "county", "website", "school_type", "funding_type"),
    },
)

EXPANSION = ExpansionTable(
    name="school_info",
    source_table="schools",
    key_columns=("school_name", "street_address"),
    columns=(
        ExpansionColumn("city", KIND_FREEFORM, ("city",), None,
                        "City inferred from the street address"),
        ExpansionColumn("county", KIND_SELECTION, ("county",), "counties",
                        "California county of the school"),
        ExpansionColumn("website", KIND_FREEFORM, ("website", "url"), None,
                        "Short-form school website"),
        ExpansionColumn("school_type", KIND_SELECTION,
                        ("type of school", "school type", "elementary", "middle",
                         "high school", "grade level"),
                        "school_types", "Type of school (grade level served)"),
        ExpansionColumn("funding_type", KIND_SELECTION,
                        ("funding", "funded"), "funding_types",
                        "Charter funding category"),
    ),
)


def build_world() -> World:
    """Construct the California Schools world deterministically."""
    records = _school_records()

    schools_rows: list[tuple] = []
    frpm_rows: list[tuple] = []
    sat_rows: list[tuple] = []
    truth_map: dict[tuple, dict[str, object]] = {}
    for record in records:
        schools_rows.append(
            (
                record["cds_code"], record["school_name"], record["district"],
                record["street_address"], record["city"], record["county"],
                record["website"], record["school_type"],
                record["funding_type"], record["charter"], record["open_year"],
            )
        )
        enrollment = det_int(120, 3200, "cs-enroll", record["cds_code"])
        free_meals = int(enrollment * det_uniform("cs-free", record["cds_code"]) * 0.8)
        frpm_count = min(
            enrollment,
            free_meals + det_int(0, enrollment // 5, "cs-frpm", record["cds_code"]),
        )
        frpm_rows.append(
            (
                record["cds_code"], enrollment, free_meals, frpm_count,
                round(frpm_count / enrollment, 4),
            )
        )
        takers = max(10, enrollment // 4)
        read = det_int(380, 640, "cs-read", record["cds_code"])
        math = det_int(380, 660, "cs-math", record["cds_code"])
        write = det_int(370, 630, "cs-write", record["cds_code"])
        ge_1500 = int(takers * max(0.0, (read + math + write - 1200) / 900))
        sat_rows.append(
            (record["cds_code"], takers, read, math, write, ge_1500)
        )
        truth_map[(record["school_name"], record["street_address"])] = {
            "city": record["city"],
            "county": record["county"],
            "website": record["website"],
            "school_type": record["school_type"],
            "funding_type": record["funding_type"],
        }

    original_rows = {
        "schools": schools_rows,
        "frpm": frpm_rows,
        "satscores": sat_rows,
    }
    schema = _original_schema()
    curated = apply_curation(schema, original_rows, CURATION_PLAN)

    return World(
        name="california_schools",
        title="California Schools",
        original_schema=schema,
        curated_schema=curated.schema,
        original_rows=original_rows,
        curated_rows=curated.rows,
        expansions=[EXPANSION],
        truth={"school_info": truth_map},
        value_lists={
            "counties": list(COUNTIES),
            "school_types": list(SCHOOL_TYPES),
            "funding_types": list(FUNDING_TYPES),
            "cities": sorted({city for city, _ in CITIES}),
        },
        dropped_columns=curated.dropped_columns,
    )
