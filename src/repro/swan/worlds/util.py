"""Deterministic helpers shared by the world generators.

Worlds must be bit-identical across runs and platforms, so all
"randomness" comes from :mod:`hashlib`-based draws, never from
:mod:`random`'s global state.
"""

from __future__ import annotations

import hashlib
import heapq
import re
from typing import Sequence, TypeVar

T = TypeVar("T")


def det_uniform(*parts: object) -> float:
    """Deterministic pseudo-uniform draw in [0, 1)."""
    payload = "\x1f".join(str(p) for p in parts).encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


def det_int(low: int, high: int, *parts: object) -> int:
    """Deterministic integer in [low, high] inclusive."""
    if high < low:
        raise ValueError(f"empty range [{low}, {high}]")
    span = high - low + 1
    return low + int(det_uniform("int", *parts) * span) % span


def det_choice(options: Sequence[T], *parts: object) -> T:
    """Deterministically pick one element."""
    if not options:
        raise ValueError("det_choice on an empty sequence")
    return options[det_int(0, len(options) - 1, "choice", *parts)]


def det_sample(options: Sequence[T], count: int, *parts: object) -> list[T]:
    """Deterministically pick ``count`` distinct elements, order-stable."""
    if count > len(options):
        raise ValueError(f"cannot sample {count} from {len(options)} options")
    scored = sorted(
        range(len(options)), key=lambda i: det_uniform("sample", i, *parts)
    )
    chosen = sorted(scored[:count])
    return [options[i] for i in chosen]


def det_sample_fast(options: Sequence[T], count: int, *parts: object) -> list[T]:
    """Byte-identical to :func:`det_sample`, built for large pools.

    Same draws, same winners: the hash payload for index ``i`` is the
    exact byte string :func:`det_uniform` would build ("sample", i,
    *parts joined by ``\\x1f``), only the constant suffix is encoded
    once instead of per index, and the full sort over all draws is
    replaced by a ``heapq.nsmallest`` top-``count`` selection (which the
    stdlib documents as equivalent to ``sorted(...)[:n]``, preserving
    the stable tie order).  Draws are compared as the same ``/ 2**64``
    floats ``det_uniform`` returns, so even precision-collapsed ties
    resolve identically.
    """
    if count > len(options):
        raise ValueError(f"cannot sample {count} from {len(options)} options")
    suffix = (
        ("\x1f" + "\x1f".join(str(p) for p in parts)).encode("utf-8")
        if parts
        else b""
    )
    sha256 = hashlib.sha256
    from_bytes = int.from_bytes
    draws = [
        from_bytes(sha256(b"sample\x1f%d%s" % (i, suffix)).digest()[:8], "big")
        / 2**64
        for i in range(len(options))
    ]
    chosen = sorted(
        heapq.nsmallest(count, range(len(options)), key=draws.__getitem__)
    )
    return [options[i] for i in chosen]


def det_shuffle(options: Sequence[T], *parts: object) -> list[T]:
    """A deterministic permutation of the sequence."""
    return sorted(options, key=lambda item: det_uniform("shuffle", item, *parts))


_SLUG_RE = re.compile(r"[^a-z0-9]+")


def slugify(text: str, separator: str = "") -> str:
    """Lower-case, strip non-alphanumerics — for generated URLs and refs."""
    lowered = text.lower()
    parts = [p for p in _SLUG_RE.split(lowered) if p]
    return separator.join(parts)
