"""The SWAN benchmark: Solving beyond-database queries With generative AI
aNd relational databases.

SWAN (Section 3 of the paper) consists of four curated databases and 120
beyond-database questions.  This package reconstructs it from synthetic
worlds:

- :mod:`repro.swan.worlds` — deterministic ground-truth data for the four
  domains (Superhero, Formula One, California Schools, European Football).
- :mod:`repro.swan.curation` — the column/table drops that make questions
  unanswerable from the database alone, plus the retained value lists and
  meaningful LLM keys.
- :mod:`repro.swan.questions` — the 120 questions, each with a gold SQL
  query (against the original database), an HQDL hybrid query (against the
  expanded schema) and a BlendSQL-dialect hybrid query.
- :mod:`repro.swan.build` — materializes the original and curated SQLite
  databases.
- :mod:`repro.swan.benchmark` — the :class:`Swan` entry point that ties it
  all together.
"""

from repro.swan.base import (
    ExpansionColumn,
    ExpansionTable,
    Question,
    World,
)
from repro.swan.benchmark import Swan, load_benchmark

__all__ = [
    "ExpansionColumn",
    "ExpansionTable",
    "Question",
    "World",
    "Swan",
    "load_benchmark",
]
