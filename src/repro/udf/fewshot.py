"""Similarity-based few-shot selection for hybrid query UDFs.

Section 5.4: "for HQ UDFs we curated a list of question-answer pairs for
each database, and then BlendSQL selects relevant examples based on
similarity metrics (e.g. cosine similarity using a sentence transformer)".

Offline we replace the sentence transformer with a deterministic hashed
bag-of-words embedding; cosine similarity over it still ranks
demonstrations about the *same attribute* first, which is all the
selection needs to achieve.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.llm.oracle import KnowledgeOracle
from repro.retrieval.embedding import cosine_similarity, embed
from repro.swan.base import World
from repro.swan.worlds.util import det_sample, det_sample_fast

__all__ = [
    "Demonstration",
    "DemonstrationPool",
    "FewShotSelector",
    "cosine_similarity",
    "embed",
]

#: How many demonstration keys each (expansion, column) contributes.
_KEYS_PER_COLUMN = 3


@dataclass(frozen=True)
class Demonstration:
    """One curated question/key/answer triple."""

    question: str
    key_display: str
    answer: str


class DemonstrationPool:
    """The per-database demonstration pool, derived from the world truth.

    For every generated column we phrase a canonical question from its
    description and sample a few keys; answers come from the original
    database (they are "static examples randomly selected from the
    original database", Section 5.2).
    """

    def __init__(self, world: World, *, optimize: bool = True) -> None:
        self.world = world
        oracle = KnowledgeOracle(world)
        self.demonstrations: list[Demonstration] = []
        # hashing every truth key per column dominates pool construction
        # at scale; det_sample_fast draws the identical sample in O(n)
        sampler = det_sample_fast if optimize else det_sample
        for expansion in world.expansions:
            keys = sorted(world.truth[expansion.name].keys())
            for column in expansion.columns:
                question = f"Provide the {column.description.lower()} for the given key."
                count = min(_KEYS_PER_COLUMN, len(keys))
                sample = sampler(
                    keys, count, "udf-demos", world.name, expansion.name, column.name
                )
                for key in sample:
                    truth = world.truth_value(expansion.name, key, column.name)
                    self.demonstrations.append(
                        Demonstration(
                            question=question,
                            key_display=" | ".join(str(part) for part in key),
                            answer=oracle.format_value(truth, column),
                        )
                    )

    def __len__(self) -> int:
        return len(self.demonstrations)


class FewShotSelector:
    """Selects the most similar demonstrations for a map/QA question.

    With ``memoize`` (the default) selections are cached per
    ``(question, count)`` — selection is deterministic, and a scaled run
    asks the same question for thousands of keys, so re-embedding and
    re-ranking the pool per key is pure overhead.
    """

    def __init__(self, pool: DemonstrationPool, *, memoize: bool = True) -> None:
        self.pool = pool
        self.memoize = memoize
        self._cache: dict[tuple[str, int], list[Demonstration]] = {}
        self._vectors = [
            embed(f"{demo.question} {demo.key_display}")
            for demo in pool.demonstrations
        ]

    def select(self, question: str, count: int) -> list[Demonstration]:
        """Top ``count`` demonstrations by cosine similarity to ``question``."""
        if count <= 0 or not self.pool.demonstrations:
            return []
        if self.memoize:
            cached = self._cache.get((question, count))
            if cached is not None:
                return list(cached)
        query = embed(question)
        scored = sorted(
            range(len(self._vectors)),
            key=lambda i: (-cosine_similarity(query, self._vectors[i]), i),
        )
        selected = [self.pool.demonstrations[i] for i in scored[:count]]
        if self.memoize:
            self._cache[(question, count)] = list(selected)
        return selected
