"""Semantic caching with query rewriting (Section 4.3 / 5.5 future work).

BlendSQL's prompt-keyed cache cannot reuse generations across
semantically-equal-but-differently-phrased questions ("Is the superhero
from the Marvel Universe?" vs "Does the hero come from Marvel?").  The
paper proposes "incorporating query rewriting within Hybrid Query UDFs
to fully leverage all cached LLM-generated data", citing LLM-based
equivalence checking.

:class:`SemanticCache` implements that design:

- generations are stored per *question*, as key → value mappings;
- a new question first tries an exact match, then shortlists previously
  seen questions by embedding cosine similarity, and confirms
  equivalence with one cheap LLM call (the mock model resolves both
  phrasings to an attribute and compares — its genuine "understanding");
- on a confirmed rewrite, cached values are reused per key and only the
  missing keys reach the model.

The equivalence calls cost tokens, so the net saving is an empirical
question — exactly what ``benchmarks/bench_future_semantic_cache.py``
measures.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional

from repro.llm.chat import EQUIVALENCE_MARKER
from repro.llm.client import ChatClient
from repro.udf.fewshot import cosine_similarity, embed

#: Candidate phrasings below this cosine similarity are not even worth an
#: equivalence check.
SHORTLIST_THRESHOLD = 0.3


def equivalence_prompt(first: str, second: str) -> str:
    """The equivalence-check prompt (one of the mock model's protocols)."""
    first_quoted = first.replace("'", "''")
    second_quoted = second.replace("'", "''")
    return "\n".join(
        [
            EQUIVALENCE_MARKER,
            f"Q1: '{first_quoted}'",
            f"Q2: '{second_quoted}'",
            "Answer yes or no.",
            "Answer:",
        ]
    )


@dataclass
class _Store:
    question: str
    vector: dict[str, float]
    mapping: dict[tuple, str] = field(default_factory=dict)


@dataclass
class SemanticCacheStats:
    """Hit/miss/rewrite counters for one semantic cache."""

    exact_hits: int = 0
    rewrites: int = 0
    rejected_rewrites: int = 0
    misses: int = 0
    keys_reused: int = 0


class SemanticCache:
    """Cross-phrasing reuse of per-key generations.

    Store mutations and statistics are lock-protected, so one cache can
    be shared by concurrently executing pipelines.  The equivalence LLM
    call happens *outside* the lock — a slow model must not serialize
    unrelated lookups.
    """

    def __init__(self, *, shortlist_threshold: float = SHORTLIST_THRESHOLD) -> None:
        self.shortlist_threshold = shortlist_threshold
        self._stores: list[_Store] = []
        self.stats = SemanticCacheStats()
        self._lock = threading.RLock()

    def lookup(
        self, question: str, client: ChatClient
    ) -> Optional[dict[tuple, str]]:
        """The cached mapping for ``question`` (under rewriting), if any.

        Returns the *live* store mapping so the caller can read reusable
        keys and write freshly generated ones back into it.
        """
        with self._lock:
            for store in self._stores:
                if store.question == question:
                    self.stats.exact_hits += 1
                    return store.mapping
            candidate = self._best_candidate(question)
            if candidate is None:
                self.stats.misses += 1
                return None
        response = client.complete(
            equivalence_prompt(question, candidate.question), label="udf:rewrite"
        )
        with self._lock:
            if response.text.strip().lower().startswith("yes"):
                self.stats.rewrites += 1
                return candidate.mapping
            self.stats.rejected_rewrites += 1
            self.stats.misses += 1
            return None

    def _best_candidate(self, question: str) -> Optional[_Store]:
        vector = embed(question)
        best: Optional[_Store] = None
        best_score = self.shortlist_threshold
        for store in self._stores:
            score = cosine_similarity(vector, store.vector)
            if score > best_score:
                best_score = score
                best = store
        return best

    def store(self, question: str, mapping: dict[tuple, str]) -> dict[tuple, str]:
        """Record (or extend) the store for ``question``; returns it."""
        with self._lock:
            for existing in self._stores:
                if existing.question == question:
                    existing.mapping.update(mapping)
                    return existing.mapping
            store = _Store(
                question=question, vector=embed(question), mapping=dict(mapping)
            )
            self._stores.append(store)
            return store.mapping

    def __len__(self) -> int:
        with self._lock:
            return len(self._stores)
