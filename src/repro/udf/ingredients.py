"""Ingredient semantics: interpreting ``{{LLMMap/LLMQA/LLMJoin}}`` calls.

An :class:`IngredientCall` is the validated, executor-facing view of an
AST :class:`~repro.sqlparser.ast.Ingredient`: the question, the source
table, and the key columns parsed out of ``table::column`` references.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.errors import IngredientError
from repro.sqlparser import ast

KNOWN_INGREDIENTS = ("LLMMap", "LLMQA", "LLMJoin")


@dataclass(frozen=True)
class IngredientCall:
    """A validated ingredient invocation."""

    kind: str  # 'LLMMap' | 'LLMQA' | 'LLMJoin'
    question: str
    source_table: str = ""
    key_columns: tuple[str, ...] = ()
    options: tuple[tuple[str, object], ...] = ()

    def signature(self) -> tuple:
        """Identity for caching/temp-table sharing within one query."""
        return (self.kind, self.question, self.source_table, self.key_columns)


def _split_column_ref(ref: str) -> tuple[str, str]:
    """Parse a ``table::column`` key reference."""
    if "::" not in ref:
        raise IngredientError(
            f"key reference must look like 'table::column', got {ref!r}"
        )
    table, _, column = ref.partition("::")
    table = table.strip()
    column = column.strip()
    if not table or not column:
        raise IngredientError(f"malformed key reference {ref!r}")
    return table, column


def _parse(name: str, args: tuple, options: tuple) -> IngredientCall:
    if name not in KNOWN_INGREDIENTS:
        raise IngredientError(
            f"unknown ingredient {name!r}; expected one of "
            f"{', '.join(KNOWN_INGREDIENTS)}"
        )
    if not args:
        raise IngredientError(f"{name} requires a question argument")
    question = str(args[0])
    if name == "LLMQA":
        if len(args) > 1:
            raise IngredientError("LLMQA takes only the question argument")
        return IngredientCall(kind="LLMQA", question=question, options=options)
    if len(args) < 2:
        raise IngredientError(
            f"{name} requires at least one 'table::column' key reference"
        )
    table = ""
    key_columns: list[str] = []
    for ref in args[1:]:
        ref_table, column = _split_column_ref(str(ref))
        if table and ref_table != table:
            raise IngredientError(
                f"{name} key references mix tables "
                f"{table!r} and {ref_table!r}"
            )
        table = ref_table
        key_columns.append(column)
    return IngredientCall(
        kind=name,
        question=question,
        source_table=table,
        key_columns=tuple(key_columns),
        options=options,
    )


#: IngredientCall is frozen (immutable), so memoizing parses by value is
#: safe; AST nodes themselves are mutable and must not be the cache key.
_parse_cached = lru_cache(maxsize=512)(_parse)


def parse_ingredient_call(node: ast.Ingredient) -> IngredientCall:
    """Validate an AST ingredient into an :class:`IngredientCall`.

    Parses are memoized by value: a scaled run re-parses the same
    handful of ingredient shapes thousands of times, and the validation
    (string splitting per key reference) is pure.
    """
    name = node.name
    args = tuple(node.args)
    options = tuple(sorted(node.options.items()))
    try:
        return _parse_cached(name, args, options)
    except TypeError:
        return _parse(name, args, options)
