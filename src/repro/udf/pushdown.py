"""Predicate pushdown analysis for the hybrid executor.

BlendSQL "optimizes queries by pushing down predicates to avoid
generating unnecessary data entries" (Section 4.3): before asking the
LLM for per-row values, database-only predicates restrict the key set.

:func:`pushable_conjuncts` decides which top-level AND-conjuncts of the
owning SELECT's WHERE clause can be evaluated by the database alone
against the ingredient's source table:

- the conjunct contains no ingredient (it is "pure");
- it contains no subquery (kept conservative: correlated subqueries could
  reference other tables);
- every column it references belongs to the source table — either
  qualified with the table's alias, or unqualified when the source table
  is the only table in scope.
"""

from __future__ import annotations

from typing import Optional

from repro.sqlparser import ast
from repro.sqlparser.rewrite import (
    column_refs,
    source_names,
    split_conjuncts,
    walk,
)


def _has_subquery(expr: ast.Expr) -> bool:
    return any(
        isinstance(node, (ast.ScalarSubquery, ast.InSubquery, ast.Exists, ast.Select))
        for node in walk(expr)
    )


def _has_ingredient(expr: ast.Expr) -> bool:
    return any(isinstance(node, ast.Ingredient) for node in walk(expr))


def conjunct_is_pushable(
    conjunct: ast.Expr,
    alias: str,
    source_columns: set[str],
    *,
    single_source: bool,
) -> bool:
    """Whether one WHERE conjunct can prefilter the ingredient's keys."""
    if _has_ingredient(conjunct) or _has_subquery(conjunct):
        return False
    refs = column_refs(conjunct)
    if not refs:
        return False  # constant predicates do not narrow keys; skip them
    for ref in refs:
        if ref.table is not None:
            if ref.table != alias:
                return False
        else:
            if not single_source or ref.column not in source_columns:
                return False
    return True


def pushable_conjuncts(
    select: ast.Select,
    alias: str,
    source_columns: set[str],
) -> list[ast.Expr]:
    """The WHERE conjuncts of ``select`` that restrict the source table."""
    sources = source_names(select.from_)
    single_source = len(sources) == 1
    return [
        conjunct
        for conjunct in split_conjuncts(select.where)
        if conjunct_is_pushable(
            conjunct, alias, source_columns, single_source=single_source
        )
    ]


def resolve_alias(
    select: Optional[ast.Select], table_name: str
) -> Optional[str]:
    """The alias under which ``table_name`` is visible in a SELECT's FROM."""
    if select is None:
        return None
    for alias, source in source_names(select.from_).items():
        if isinstance(source, ast.TableName) and source.name == table_name:
            return alias
    return None
