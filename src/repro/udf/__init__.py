"""Hybrid Query UDFs — a BlendSQL-equivalent engine (paper Section 4.2).

Executes SQL with embedded LLM ingredients directly against the curated
SQLite database:

- ``{{LLMMap('question', 'table::col', ...)}}`` — a per-row mapping from
  the table's key columns to a generated value;
- ``{{LLMQA('question about an ''entity''')}}`` — a scalar answer;
- ``{{LLMJoin('question', 'table::col', ...)}}`` — a generated table
  usable in FROM.

Operational semantics follow the paper's description of BlendSQL:
predicate **pushdown** (only generate values for rows that survive
database-only predicates), **batching** (default 5 keys per call),
a **prompt→completion cache**, and similarity-selected few-shot
question/answer demonstrations.
"""

from repro.udf.executor import HybridQueryExecutor
from repro.udf.fewshot import DemonstrationPool, FewShotSelector, cosine_similarity, embed
from repro.udf.ingredients import IngredientCall, parse_ingredient_call
from repro.udf.semantic_cache import SemanticCache
from repro.udf.views import MaterializedViewStore

__all__ = [
    "HybridQueryExecutor",
    "DemonstrationPool",
    "FewShotSelector",
    "cosine_similarity",
    "embed",
    "IngredientCall",
    "parse_ingredient_call",
    "SemanticCache",
    "MaterializedViewStore",
]
