"""The hybrid query executor (BlendSQL-equivalent).

Execution plan for one hybrid query:

1. Parse the dialect SQL; collect every ``{{...}}`` ingredient.
2. For each **LLMMap**: find its owning SELECT scope, apply predicate
   pushdown to fetch only the key tuples that database-only predicates
   allow, batch the keys (default 5 per call, Section 5.4), prompt the
   model, and materialize the answers into a TEMP table.
3. For each **LLMQA**: one scalar call; the answer becomes a literal.
4. For each **LLMJoin**: like LLMMap, but materialized as a FROM source.
5. Rewrite the AST — map ingredients become correlated scalar subqueries
   against their TEMP tables — render plain SQLite SQL, execute.

All LLM traffic goes through a prompt-keyed cache
(:class:`~repro.llm.cache.CachingClient`), reproducing BlendSQL's reuse
semantics: identical prompts are free, semantically-equal-but-textually-
different prompts are not (Section 5.5).

With ``workers > 1`` the batches of each LLMMap/LLMJoin are dispatched
concurrently over a worker pool (:mod:`repro.llm.parallel`) — the
parallelized LLM calls the paper lists as future work.  Results are
deterministic: the cache's single-flight guarantee plus ordered dispatch
make ``workers=8`` byte-identical to ``workers=1``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator, Optional

from repro.errors import IngredientError, ReproError
from repro.llm.batching import (
    DEFAULT_BATCH_SIZE,
    LatencyModel,
    batched,
    parallel_makespan,
    sequential_makespan,
)
from repro.llm.cache import CachingClient, PromptCache
from repro.llm.chat import (
    ANSWER_MARKER,
    MAP_EXAMPLE_MARKER,
    MAP_KEYS_MARKER,
    QUESTION_MARKER,
    quote_field,
)
from repro.llm.client import ChatClient
from repro.llm.declarative import PromptSpec
from repro.llm.parallel import ParallelDispatcher
from repro.llm.resilience import ResilienceReport
from repro.obs import NULL_PROVENANCE, NULL_TELEMETRY, Telemetry
from repro.obs.provenance import TIER_MAPPING_STORE, TIER_SEMANTIC, call_id_for
from repro.obs.trace import NULL_SPAN
from repro.sqlparser import ast, parse, render
from repro.sqlparser.render import quote_identifier
from repro.sqlparser.rewrite import replace_ingredients, walk
from repro.sqlengine.database import Database
from repro.sqlengine.results import ResultSet
from repro.swan.base import World
from repro.udf.fewshot import DemonstrationPool, FewShotSelector
from repro.udf.ingredients import IngredientCall, parse_ingredient_call
from repro.udf.pushdown import pushable_conjuncts, resolve_alias
from repro.udf.semantic_cache import SemanticCache
from repro.udf.views import MaterializedViewStore

if TYPE_CHECKING:  # no runtime import: repro.plan imports from this module
    from repro.plan.store import MappingStore

_ANSWER_LINE_RE = re.compile(r"^\s*(\d+)\s*[.):]\s*(.*?)\s*$")

#: demonstration pools per (world name, scale) — rebuilt only when the
#: cached entry belongs to a *different* world object of the same name
#: (hand-built test worlds must never reuse a benchmark world's pool)
_DEMO_POOLS: dict[tuple[str, int], tuple[World, DemonstrationPool]] = {}


def _demo_pool(world: World) -> DemonstrationPool:
    """The optimized pool for a world, cached across executor instances.

    Pool construction hashes every truth key once per column; at scale
    100 that is ~10^5 draws a fresh executor would redo per run even
    though the pool is a pure function of the world.  Identity (not
    equality) guards the cache, so any new world object — however named
    — gets its own freshly derived pool.
    """
    cached = _DEMO_POOLS.get((world.name, world.scale))
    if cached is not None and cached[0] is world:
        return cached[1]
    pool = DemonstrationPool(world, optimize=True)
    _DEMO_POOLS[(world.name, world.scale)] = (world, pool)
    return pool


@dataclass
class ExecutionReport:
    """Diagnostics for one hybrid query execution."""

    llm_calls: int = 0
    keys_generated: int = 0
    keys_after_pushdown: dict[str, int] = field(default_factory=dict)
    rewritten_sql: str = ""
    #: (input_tokens, output_tokens) of each paid (non-cached) LLM call,
    #: the input to the latency/parallelism model in repro.llm.batching.
    call_sizes: list[tuple[int, int]] = field(default_factory=list)
    #: batches whose LLM call ultimately failed (after any retry layer
    #: gave up) and were degraded to NULL answers, and the keys they held.
    degraded_batches: int = 0
    degraded_keys: int = 0

    def estimated_latency(
        self, workers: int = 1, model: Optional[LatencyModel] = None
    ) -> float:
        """Estimated wall-clock seconds for this query's LLM traffic.

        ``workers=1`` is sequential BlendSQL behaviour; higher values
        model the parallel execution that
        :class:`~repro.llm.parallel.ParallelDispatcher` performs for
        real when the executor gets a ``workers`` knob > 1.
        """
        if workers <= 1:
            return sequential_makespan(self.call_sizes, model)
        return parallel_makespan(self.call_sizes, workers, model)


class HybridQueryExecutor:
    """Executes hybrid (BlendSQL-dialect) queries over one curated database."""

    def __init__(
        self,
        db: Database,
        client: ChatClient,
        world: World,
        *,
        batch_size: int = DEFAULT_BATCH_SIZE,
        pushdown: bool = True,
        shots: int = 0,
        cache: Optional[PromptCache] = None,
        selector: Optional[FewShotSelector] = None,
        semantic_cache: Optional[SemanticCache] = None,
        views: Optional[MaterializedViewStore] = None,
        workers: int = 1,
        resilience: Optional[ResilienceReport] = None,
        telemetry: Optional[Telemetry] = None,
        batch_policy: Optional[object] = None,
        mapping_store: Optional["MappingStore"] = None,
        provenance=None,
        optimize: bool = True,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.db = db
        self.world = world
        self.batch_size = batch_size
        self.pushdown = pushdown
        self.shots = shots
        self.workers = workers
        #: toggles the byte-identical hot-path rewrites (bulk key fetch,
        #: cached prompt prefixes, streamed temp-table rows); ``False``
        #: keeps the original per-key code and exists as the bench-scale
        #: 'pre-optimization' reference.
        self.optimize = optimize
        self._map_prefix_cache: dict[IngredientCall, str] = {}
        self._tel = telemetry if telemetry is not None else NULL_TELEMETRY
        self._prov = provenance if provenance is not None else NULL_PROVENANCE
        self.dispatcher = ParallelDispatcher(
            workers, telemetry=self._tel, provenance=self._prov
        )
        self.cache = cache if cache is not None else PromptCache()
        self.client = CachingClient(
            client, self.cache, telemetry=self._tel, provenance=self._prov
        )
        self._m_degraded_batches = self._tel.metrics.counter(
            "pipeline.degraded_batches"
        )
        self._m_degraded_keys = self._tel.metrics.counter("pipeline.degraded_keys")
        if selector is None and shots > 0:
            pool = (
                _demo_pool(world)
                if optimize
                else DemonstrationPool(world, optimize=False)
            )
            selector = FewShotSelector(pool, memoize=optimize)
        self.selector = selector
        self.semantic_cache = semantic_cache
        self.views = views
        self.resilience = resilience
        #: any object with ``batch_size(call) -> int`` (repro.plan.policy);
        #: None keeps the fixed ``batch_size`` — BlendSQL's behaviour.
        self.batch_policy = batch_policy
        #: filled by a pairs-mode CallPlanner; fully-covered ingredients
        #: are answered from it with zero LLM calls.
        self.mapping_store = mapping_store
        #: when True, freshly generated mappings are published back into
        #: ``mapping_store`` so later requests (the serving layer's
        #: cross-tenant reuse) can be answered from it.  Off by default:
        #: store-served values skip batching, so answers may drift within
        #: model noise relative to a cold run.
        self.publish_mappings = False
        #: optional request-level :class:`~repro.llm.resilience.Deadline`
        #: (set per request by the serving layer): once expired, mapping
        #: batches are skipped with typed degradable outcomes (NULL
        #: cells) and QA answers degrade to NULL — the query still
        #: completes, it never hangs past its budget.
        self.deadline = None
        self._temp_counter = 0

    # -- public API --------------------------------------------------------------

    def execute(self, hybrid_sql: str) -> ResultSet:
        """Execute a hybrid query and return its result set."""
        result, _ = self.execute_with_report(hybrid_sql)
        return result

    def execute_with_report(self, hybrid_sql: str) -> tuple[ResultSet, ExecutionReport]:
        """Execute and also return pushdown/call diagnostics."""
        tel = self._tel
        if not tel.enabled:
            return self._execute_with_report(hybrid_sql)
        with tel.tracer.span("udf:query") as span:
            result, report = self._execute_with_report(hybrid_sql)
            span.set("llm_calls", report.llm_calls)
            span.set("keys_generated", report.keys_generated)
            return result, report

    def _execute_with_report(
        self, hybrid_sql: str
    ) -> tuple[ResultSet, ExecutionReport]:
        tel = self._tel
        report = ExecutionReport()
        with (tel.tracer.span("sql:parse") if tel.enabled else NULL_SPAN):
            statement = parse(hybrid_sql)
        replacements = self._plan_ingredients(statement, report)
        with (tel.tracer.span("sql:rewrite") if tel.enabled else NULL_SPAN):
            if replacements:
                statement = replace_ingredients(
                    statement, lambda node: replacements[id(node)]
                )
            final_sql = render(statement)
        report.rewritten_sql = final_sql
        with (tel.tracer.span("sql:execute") if tel.enabled else NULL_SPAN):
            result = self.db.query(final_sql)
        return result, report

    # -- planning ----------------------------------------------------------------

    def _plan_ingredients(
        self, statement: ast.Select, report: ExecutionReport
    ) -> dict[int, ast.Node]:
        """Materialize every ingredient; map node id → replacement node."""
        replacements: dict[int, ast.Node] = {}
        shared: dict[tuple, ast.Node] = {}
        for node, owner, source_alias, as_source in _ingredient_occurrences(statement):
            call = parse_ingredient_call(node)
            signature = (call.signature(), id(owner), as_source)
            if signature in shared:
                replacements[id(node)] = shared[signature]
                continue
            if as_source and call.kind != "LLMJoin":
                raise IngredientError(
                    f"{call.kind} cannot be used as a FROM source"
                )
            tel = self._tel
            with (
                tel.tracer.span(
                    "udf:ingredient", kind=call.kind, question=call.question
                )
                if tel.enabled
                else NULL_SPAN
            ):
                if call.kind == "LLMQA":
                    replacement: ast.Node = self._run_qa(call)
                elif call.kind == "LLMMap":
                    replacement = self._run_map(call, owner, report)
                else:  # LLMJoin
                    if not as_source:
                        raise IngredientError(
                            "LLMJoin is only valid as a FROM source"
                        )
                    replacement = self._run_join(call, source_alias, report)
            shared[signature] = replacement
            replacements[id(node)] = replacement
        return replacements

    def _batch_size_for(self, call: IngredientCall) -> int:
        """The batch size for one ingredient: policy when set, else fixed."""
        if self.batch_policy is None:
            return self.batch_size
        return self.batch_policy.batch_size(call)

    # -- call planning (dry run) --------------------------------------------------
    #
    # Both methods replay the ingredient walk of ``_plan_ingredients``
    # without issuing any LLM call, for the run-level CallPlanner
    # (repro.plan).  They assume the executor-level caches that consult
    # the model themselves (semantic cache) are not attached — the
    # harness runners never attach them — and mirror everything else:
    # scope resolution, signature sharing, pushdown, batching, and the
    # stop-at-first-error prefix semantics of real execution.

    def plan_calls(self, hybrid_sql: str) -> list[tuple[str, str]]:
        """The exact (prompt, label) sequence executing this query would issue.

        A query that would fail mid-plan (bad ingredient placement, SQL
        errors in key fetching) contributes the prefix of prompts issued
        before the failure — the same calls real execution pays for
        before raising.
        """
        prompts: list[tuple[str, str]] = []
        report = ExecutionReport()
        try:
            statement = parse(hybrid_sql)
        except ReproError:
            return prompts
        shared: set[tuple] = set()
        try:
            for occurrence in _ingredient_occurrences(statement):
                node, owner, source_alias, as_source = occurrence
                call = parse_ingredient_call(node)
                signature = (call.signature(), id(owner), as_source)
                if signature in shared:
                    continue
                shared.add(signature)
                if as_source and call.kind != "LLMJoin":
                    return prompts
                if call.kind == "LLMQA":
                    prompts.append((self._qa_prompt(call.question), "udf:qa"))
                    continue
                if call.kind == "LLMJoin" and not as_source:
                    return prompts
                if (
                    call.kind == "LLMMap"
                    and self.views is not None
                    and self.views.table_for(call.signature()) is not None
                ):
                    continue
                keys = self._plan_keys(call, owner, report)
                for batch in batched(keys, self._batch_size_for(call)):
                    prompts.append((self._map_prompt(call, batch), "udf:map"))
        except ReproError:
            pass
        return prompts

    def plan_key_requests(
        self, hybrid_sql: str
    ) -> tuple[list[tuple[IngredientCall, list[tuple]]], list[str]]:
        """The (attribute, key) demand of this query, before batching.

        Returns ``(map_requests, qa_prompts)`` where each map request is
        an LLMMap/LLMJoin call paired with the key tuples it needs —
        the unit a pairs-mode planner unions across questions.
        """
        map_requests: list[tuple[IngredientCall, list[tuple]]] = []
        qa_prompts: list[str] = []
        report = ExecutionReport()
        try:
            statement = parse(hybrid_sql)
        except ReproError:
            return map_requests, qa_prompts
        shared: set[tuple] = set()
        try:
            for occurrence in _ingredient_occurrences(statement):
                node, owner, source_alias, as_source = occurrence
                call = parse_ingredient_call(node)
                signature = (call.signature(), id(owner), as_source)
                if signature in shared:
                    continue
                shared.add(signature)
                if as_source and call.kind != "LLMJoin":
                    return map_requests, qa_prompts
                if call.kind == "LLMQA":
                    qa_prompts.append(self._qa_prompt(call.question))
                    continue
                if call.kind == "LLMJoin" and not as_source:
                    return map_requests, qa_prompts
                keys = self._plan_keys(call, owner, report)
                map_requests.append((call, keys))
        except ReproError:
            pass
        return map_requests, qa_prompts

    def _plan_keys(
        self,
        call: IngredientCall,
        owner: Optional[ast.Select],
        report: ExecutionReport,
    ) -> list[tuple]:
        """Key fetching exactly as execution performs it, per ingredient kind."""
        if call.kind == "LLMJoin":
            return self._fetch_keys(call, None, call.source_table, report)
        alias = resolve_alias(owner, call.source_table) or call.source_table
        return self._fetch_keys(call, owner, alias, report)

    # -- LLMQA -------------------------------------------------------------------

    def _run_qa(self, call: IngredientCall) -> ast.Expr:
        tel = self._tel
        if self.deadline is not None and self.deadline.expired:
            # same degradation contract as a skipped mapping batch: the
            # scalar becomes NULL instead of blocking past the budget
            if self.resilience is not None:
                self.resilience.record_degraded(1)
            return ast.Literal.null()
        prompt = self._qa_prompt(call.question)
        if self._prov.enabled:
            # QA bypasses the dispatcher, so the executor records the call
            self._prov.record_call(prompt, label="udf:qa")
        with (
            tel.tracer.span("llm:call", label="udf:qa")
            if tel.enabled
            else NULL_SPAN
        ) as span:
            response = self.client.complete(prompt, label="udf:qa")
            if self._prov.enabled:
                self._prov.record_outcome(prompt, usage=response.usage)
            if tel.enabled:
                usage = response.usage
                span.set("cached", usage.calls == 0)
                span.set("input_tokens", usage.input_tokens)
                span.set("output_tokens", usage.output_tokens)
                metrics = tel.metrics
                metrics.counter("llm.tokens.input", stage="udf:qa").inc(
                    usage.input_tokens
                )
                metrics.counter("llm.tokens.output", stage="udf:qa").inc(
                    usage.output_tokens
                )
                metrics.counter("llm.calls", stage="udf:qa").inc(usage.calls)
        answer = response.text.strip().splitlines()
        value = answer[-1].strip() if answer else ""
        return ast.Literal.string(value)

    def _qa_prompt(self, question: str) -> str:
        spec = PromptSpec()
        spec.add_task(
            "Answer the question with a single short value and no explanation."
        )
        spec.add_schema(f"Database: {self.world.name}")
        for line in self._demo_lines(question):
            spec.add_demonstration(line)
        spec.add_target(f"{QUESTION_MARKER} {question}")
        spec.add_cue(ANSWER_MARKER)
        return spec.render()

    # -- LLMMap ------------------------------------------------------------------

    def _run_map(
        self,
        call: IngredientCall,
        owner: Optional[ast.Select],
        report: ExecutionReport,
    ) -> ast.Expr:
        alias = resolve_alias(owner, call.source_table) or call.source_table
        view_table = (
            self.views.table_for(call.signature()) if self.views is not None else None
        )
        tel = self._tel
        if view_table is not None:
            temp_name = view_table  # read the materialized view, no LLM calls
        else:
            with (
                tel.tracer.span("udf:fetch_keys", pushdown=self.pushdown)
                if tel.enabled
                else NULL_SPAN
            ) as span:
                keys = self._fetch_keys(call, owner, alias, report)
                span.set("keys", len(keys))
            mapping = self._generate_mapping(call, keys, report)
            with (
                tel.tracer.span("udf:materialize") if tel.enabled else NULL_SPAN
            ):
                temp_name = self._materialize_mapping(call, mapping)
                self._maybe_materialize_view(call, mapping)
        # (SELECT v FROM temp WHERE k0 = alias.col0 AND k1 = alias.col1)
        where: Optional[ast.Expr] = None
        for index, column in enumerate(call.key_columns):
            comparison = ast.BinaryOp(
                "=",
                ast.ColumnRef(f"k{index}"),
                ast.ColumnRef(column, alias),
            )
            where = comparison if where is None else ast.BinaryOp("AND", where, comparison)
        subquery = ast.Select(
            items=[ast.SelectItem(ast.ColumnRef("v"))],
            from_=ast.TableName(temp_name),
            where=where,
        )
        return ast.ScalarSubquery(subquery)

    def _fetch_keys(
        self,
        call: IngredientCall,
        owner: Optional[ast.Select],
        alias: str,
        report: ExecutionReport,
    ) -> list[tuple]:
        """Distinct key tuples, after predicate pushdown when enabled."""
        columns = ", ".join(
            f"{quote_identifier(alias)}.{quote_identifier(c)}"
            for c in call.key_columns
        )
        from_clause = quote_identifier(call.source_table)
        if alias != call.source_table:
            from_clause += f" AS {quote_identifier(alias)}"
        # NOT INDEXED pins the scan order: key order (and therefore batch
        # packing and prompt text) must not depend on which indexes the
        # database happens to carry — reuse hinges on byte-equal prompts.
        sql = f"SELECT DISTINCT {columns} FROM {from_clause} NOT INDEXED"
        if self.pushdown and owner is not None:
            source_columns = set(self.db.table_columns(call.source_table))
            conjuncts = pushable_conjuncts(owner, alias, source_columns)
            if conjuncts:
                rendered = " AND ".join(f"({_render_expr(c)})" for c in conjuncts)
                sql += f" WHERE {rendered}"
        if self.optimize:
            # bulk fetch (no ResultSet bookkeeping) + single-pass coercion;
            # str() over the same values in the same order, so the key
            # tuples are byte-identical to the per-row path below
            keys = [tuple(map(str, row)) for row in self.db.query_rows(sql)]
        else:
            rows = self.db.query(sql).rows
            keys = [tuple(str(v) for v in row) for row in rows]
        report.keys_after_pushdown[call.question] = len(keys)
        return keys

    def _generate_mapping(
        self,
        call: IngredientCall,
        keys: list[tuple],
        report: ExecutionReport,
    ) -> dict[tuple, Optional[str]]:
        """Batched LLM calls answering the question for every key.

        With a :class:`~repro.udf.semantic_cache.SemanticCache` attached,
        previously generated values for semantically equivalent questions
        are reused per key (query rewriting, Section 4.3) and only the
        missing keys reach the model.

        All batches of one ingredient go through the dispatcher at once,
        so with ``workers > 1`` they run concurrently (Section 4.3 / 6
        future work).  Outcomes come back in batch order and a failed
        batch degrades to ``None`` answers — the same tolerance already
        applied to format drift — instead of aborting its siblings.
        """
        prov = self._prov
        cell_table = call.signature()
        cell_column = "value" if call.kind == "LLMJoin" else "v"
        mapping: dict[tuple, Optional[str]] = {}
        if self.mapping_store is not None:
            served = self.mapping_store.lookup(call.signature(), keys)
            if served is not None:
                if prov.enabled:
                    producers = self.mapping_store.call_ids(call.signature())
                for key in keys:
                    mapping[key] = served[key]
                    if served[key] is not None:
                        report.keys_generated += 1
                    if prov.enabled:
                        prov.record_cell(
                            cell_table,
                            key,
                            cell_column,
                            producers.get(key, ""),
                            null=served[key] is None,
                            tier=TIER_MAPPING_STORE,
                        )
                return mapping
        reusable: dict[tuple, str] = {}
        if self.semantic_cache is not None:
            cached = self.semantic_cache.lookup(call.question, self.client)
            if cached:
                reusable = cached
        to_generate: list[tuple] = []
        for key in keys:
            if key in reusable:
                mapping[key] = reusable[key]
                self.semantic_cache.stats.keys_reused += 1
                if prov.enabled:
                    # served by query rewriting: the producing prompt
                    # belonged to the *equivalent* question, unknown here
                    prov.record_cell(
                        cell_table, key, cell_column, "", tier=TIER_SEMANTIC
                    )
            else:
                to_generate.append(key)
        batches = batched(to_generate, self._batch_size_for(call))
        prompts = [self._map_prompt(call, batch) for batch in batches]
        outcomes = self.dispatcher.dispatch(
            self.client, prompts, labels="udf:map", deadline=self.deadline
        )
        for batch, prompt, outcome in zip(batches, prompts, outcomes):
            degraded = outcome.error is not None
            if degraded:
                answers: list[Optional[str]] = [None] * len(batch)
                report.degraded_batches += 1
                report.degraded_keys += len(batch)
                self._m_degraded_batches.inc()
                self._m_degraded_keys.inc(len(batch))
                if self.resilience is not None:
                    self.resilience.record_degraded(len(batch))
            else:
                response = outcome.response
                if response.usage.calls:
                    report.llm_calls += 1
                    report.call_sizes.append(
                        (response.usage.input_tokens, response.usage.output_tokens)
                    )
                answers = _parse_map_answers(response.text, len(batch))
            cid = call_id_for(prompt) if prov.enabled else ""
            for key, answer in zip(batch, answers):
                mapping[key] = answer
                if answer is not None:
                    report.keys_generated += 1
                if prov.enabled:
                    prov.record_cell(
                        cell_table,
                        key,
                        cell_column,
                        cid,
                        null=answer is None,
                        degraded=degraded,
                    )
        if self.semantic_cache is not None:
            self.semantic_cache.store(
                call.question,
                {key: value for key, value in mapping.items() if value is not None},
            )
        if self.publish_mappings and self.mapping_store is not None:
            # only real answers are worth sharing: degraded NULLs would
            # pin other requests' keys to NULL past the fault that caused
            # them
            self.mapping_store.put(
                call.signature(),
                {k: v for k, v in mapping.items() if v is not None},
            )
        return mapping

    _MAP_RULE = (
        "Return one line per key in the format `index. answer`, "
        "with no explanation."
    )

    def _map_prompt(self, call: IngredientCall, batch: list[tuple]) -> str:
        question = call.question
        if self.optimize:
            # PromptSpec joins sections (and lines within sections) with
            # single newlines, so the rendered prompt equals the flat
            # newline join of all lines.  Everything above the target is
            # the same for every batch of one ingredient; cache it per
            # (frozen, hashable) IngredientCall and splice the key lines
            # in — byte-identical to the spec path below.
            prefix = self._map_prefix_cache.get(call)
            if prefix is None:
                prefix = "\n".join(
                    [
                        "Answer the question for each given key from the "
                        f"`{self.world.name}` database.",
                        *self._options_lines(call),
                        *self._demo_lines(question),
                        f"{QUESTION_MARKER} {question}",
                        MAP_KEYS_MARKER,
                    ]
                )
                self._map_prefix_cache[call] = prefix
            lines = [prefix]
            for index, key in enumerate(batch, start=1):
                rendered = "|".join(quote_field(str(part)) for part in key)
                lines.append(f"{index}. {rendered}")
            lines.append(self._MAP_RULE)
            lines.append(ANSWER_MARKER)
            return "\n".join(lines)
        spec = PromptSpec()
        spec.add_task(
            "Answer the question for each given key from the "
            f"`{self.world.name}` database."
        )
        for line in self._options_lines(call):
            spec.add_values(line)
        for line in self._demo_lines(question):
            spec.add_demonstration(line)
        key_lines = [MAP_KEYS_MARKER]
        for index, key in enumerate(batch, start=1):
            rendered = "|".join(quote_field(str(part)) for part in key)
            key_lines.append(f"{index}. {rendered}")
        spec.add_target(f"{QUESTION_MARKER} {question}", *key_lines)
        spec.add_rule(self._MAP_RULE)
        spec.add_cue(ANSWER_MARKER)
        return spec.render()

    def _options_lines(self, call: IngredientCall) -> list[str]:
        """The retained value list, when the query passes options=...

        SWAN keeps the distinct values of dropped categorical columns so
        the model selects rather than free-forms (Section 3.3); BlendSQL
        surfaces them through the LLMMap ``options`` argument.
        """
        options = dict(call.options).get("options")
        if options is None:
            return []
        if isinstance(options, str):
            values = self.world.value_lists.get(options, [options])
        elif isinstance(options, list):
            values = [str(v) for v in options]
        else:
            return []
        shown = values[:40]
        rendered = ", ".join(f"'{v}'" for v in shown)
        ellipsis = ", ..." if len(values) > len(shown) else ""
        return [f"The possible answers are [{rendered}{ellipsis}]."]

    def _demo_lines(self, question: str) -> list[str]:
        if self.selector is None or self.shots == 0:
            return []
        demos = self.selector.select(question, self.shots)
        return [
            f"{MAP_EXAMPLE_MARKER} key: {quote_field(demo.key_display)} "
            f"-> answer: {quote_field(demo.answer)}"
            for demo in demos
        ]

    def _materialize_mapping(
        self, call: IngredientCall, mapping: dict[tuple, Optional[str]]
    ) -> str:
        temp_name = f"__llm_ing_{self._temp_counter}"
        self._temp_counter += 1
        columns = [f"k{i}" for i in range(len(call.key_columns))] + ["v"]
        # a generator keeps at most one insert chunk of rows in memory;
        # create_temp_table streams it in fixed-size chunks either way
        rows: Iterable[tuple] = (
            key + (value,) for key, value in mapping.items() if value is not None
        )
        if not self.optimize:
            rows = list(rows)
        self.db.create_temp_table(temp_name, columns, rows)
        # the rewrite probes this table once per outer row via a
        # correlated scalar subquery — index the key columns so each
        # probe is a lookup, not a scan
        self.db.create_index(temp_name, columns[:-1])
        return temp_name

    def _maybe_materialize_view(
        self, call: IngredientCall, mapping: dict[tuple, Optional[str]]
    ) -> None:
        """Persist a *complete* generation as a materialized view.

        Only complete mappings (covering every distinct key of the source
        table) are safe to reuse by later queries with different — or no
        — pushdown predicates; partial generations stay query-local.
        """
        if self.views is None:
            return
        columns = ", ".join(quote_identifier(c) for c in call.key_columns)
        total_keys = self.db.query_scalar(
            f"SELECT COUNT(*) FROM (SELECT DISTINCT {columns} "
            f"FROM {quote_identifier(call.source_table)})"
        )
        if len(mapping) != total_keys:
            return
        view_columns = [f"k{i}" for i in range(len(call.key_columns))] + ["v"]
        rows = [
            tuple(key) + (value,)
            for key, value in mapping.items()
            if value is not None
        ]
        self.views.materialize(self.db, call.signature(), view_columns, rows)

    # -- LLMJoin -----------------------------------------------------------------

    def _run_join(
        self,
        call: IngredientCall,
        alias: Optional[str],
        report: ExecutionReport,
    ) -> ast.TableSource:
        """Materialize a generated table usable in FROM.

        Columns: the key columns under their original names plus ``value``.
        """
        keys = self._fetch_keys(call, None, call.source_table, report)
        mapping = self._generate_mapping(call, keys, report)
        temp_name = f"__llm_ing_{self._temp_counter}"
        self._temp_counter += 1
        columns = list(call.key_columns) + ["value"]
        rows: Iterable[tuple] = (
            key + (value,) for key, value in mapping.items() if value is not None
        )
        if not self.optimize:
            rows = list(rows)
        self.db.create_temp_table(temp_name, columns, rows)
        self.db.create_index(temp_name, columns[:-1])
        return ast.TableName(temp_name, alias=alias)


# -- occurrence discovery ---------------------------------------------------------


def _walk_own_region(node: ast.Node) -> Iterator[ast.Node]:
    """Walk without descending into nested SELECTs."""
    yield node
    for child in node.children():
        if isinstance(child, ast.Select):
            continue
        yield from _walk_own_region(child)


def _ingredient_occurrences(
    statement: ast.Select,
) -> list[tuple[ast.Ingredient, Optional[ast.Select], Optional[str], bool]]:
    """All ingredient nodes with their owning SELECT scope.

    Returns (node, owner, source_alias, is_from_source) tuples.  The
    owner is the SELECT whose own region (select list, WHERE, GROUP BY,
    HAVING, ORDER BY — nested subqueries excluded) contains the node.
    """
    occurrences: list[
        tuple[ast.Ingredient, Optional[ast.Select], Optional[str], bool]
    ] = []
    selects = [node for node in walk(statement) if isinstance(node, ast.Select)]
    for select in selects:
        seen_sources: set[int] = set()
        for source in _iter_sources(select.from_):
            if isinstance(source, ast.IngredientSource):
                occurrences.append((source.ingredient, select, source.alias, True))
                seen_sources.add(id(source.ingredient))
        for node in _walk_own_region(select):
            if isinstance(node, ast.Ingredient) and id(node) not in seen_sources:
                occurrences.append((node, select, None, False))
    return occurrences


def _iter_sources(source: Optional[ast.TableSource]) -> Iterator[ast.TableSource]:
    if source is None:
        return
    if isinstance(source, ast.Join):
        yield from _iter_sources(source.left)
        yield from _iter_sources(source.right)
    else:
        yield source


def _parse_map_answers(completion: str, expected: int) -> list[Optional[str]]:
    """Parse `index. answer` lines, tolerating gaps and noise."""
    answers: list[Optional[str]] = [None] * expected
    for line in completion.splitlines():
        match = _ANSWER_LINE_RE.match(line)
        if match is None:
            continue
        index = int(match.group(1)) - 1
        if 0 <= index < expected:
            value = match.group(2).strip()
            answers[index] = value if value else None
    return answers


def _render_expr(expr: ast.Expr) -> str:
    from repro.sqlparser.render import render_expression

    return render_expression(expr)
