"""Calibrated model profiles for the simulated LLMs.

A :class:`ModelProfile` captures, as data, everything the evaluation in
the paper attributes to a model:

- how much world knowledge it has (per database domain and per value
  kind), at zero shots and at five shots;
- how the gain from in-context demonstrations accrues between 0 and 5
  shots (the paper's Tables 2 and 4 show a large 0→1 jump and small 1→5
  gains);
- how often it violates the requested output format (wrong field count,
  empty fields) — frequent at zero shot, rare with demonstrations
  (Section 5.3);
- how much accuracy degrades when several keys are batched into one call
  (Section 5.4 blames BlendSQL's default batch size of 5) and when it must
  predict a single cell without the full-row chain-of-thought context.

The numbers here were calibrated so the reproduced Tables 2–4 land near
the paper's; `EXPERIMENTS.md` records the fit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import LLMError
from repro.swan.base import KIND_FREEFORM, KIND_MULTI, KIND_NUMERIC, KIND_SELECTION


def _interpolate_shots(curve: dict[int, float], shots: int) -> float:
    """Fraction of the 0→5-shot gain realised at ``shots`` demonstrations."""
    if not curve:
        # no curve declared: all of the gain arrives with the first shot
        return 0.0 if shots == 0 else 1.0
    if shots in curve:
        return curve[shots]
    points = sorted(curve.items())
    if shots <= points[0][0]:
        return points[0][1]
    if shots >= points[-1][0]:
        return points[-1][1]
    for (x0, y0), (x1, y1) in zip(points, points[1:]):
        if x0 <= shots <= x1:
            return y0 + (y1 - y0) * (shots - x0) / (x1 - x0)
    return points[-1][1]  # pragma: no cover - unreachable


@dataclass(frozen=True)
class ModelProfile:
    """All behavioural parameters of one simulated model."""

    name: str
    #: overall knowledge accuracy at 0 and 5 shots (before factors)
    base_zero_shot: float
    base_five_shot: float
    #: shots -> fraction of the 0→5 gain realised
    shot_curve: dict[int, float] = field(default_factory=dict)
    #: multiplier per value kind (selection/freeform/numeric/multi)
    kind_factors: dict[str, float] = field(default_factory=dict)
    #: multiplier per database domain
    database_factors: dict[str, float] = field(default_factory=dict)
    #: per-database (zero-shot, five-shot) knowledge bands overriding the
    #: base band — domains differ in how much a demonstration helps (city-
    #: from-address is easy at zero shot; driver codes need the format).
    database_bands: dict[str, tuple[float, float]] = field(default_factory=dict)
    #: multiplier per (database, column) — fine-grained calibration knob
    column_factors: dict[tuple[str, str], float] = field(default_factory=dict)
    #: probability a generated row violates the output format, at 0/5 shots
    format_error_zero_shot: float = 0.10
    format_error_five_shot: float = 0.02
    #: accuracy multiplier when predicting one cell without full-row context
    single_cell_factor: float = 0.9
    #: fraction of the few-shot gain realised in single-cell mode —
    #: question/answer-pair demonstrations teach less than full-row
    #: demonstrations (Section 5.4), so HQ UDFs improves little with shots
    single_cell_shot_gain: float = 1.0
    #: per-item accuracy multiplier applied once per extra key in a batch
    batch_item_factor: float = 0.995
    #: accuracy multiplier when the prompt carries retrieved database
    #: context rows (Section 4.3 opportunity #1) — grounding helps recall
    context_boost: float = 1.0
    #: hard ceiling on knowledge accuracy (1.0 only for the ideal model)
    max_accuracy: float = 0.98

    # -- derived rates --------------------------------------------------------

    def knowledge_accuracy(
        self,
        database: str,
        column: str,
        kind: str,
        shots: int,
        *,
        single_cell: bool = False,
        batch_size: int = 1,
    ) -> float:
        """Probability this model produces the true value for one cell."""
        fraction = _interpolate_shots(self.shot_curve, shots)
        if single_cell:
            fraction *= self.single_cell_shot_gain
        zero, five = self.database_bands.get(
            database, (self.base_zero_shot, self.base_five_shot)
        )
        accuracy = zero + fraction * (five - zero)
        accuracy *= self.kind_factors.get(kind, 1.0)
        accuracy *= self.database_factors.get(database, 1.0)
        accuracy *= self.column_factors.get((database, column), 1.0)
        if single_cell:
            accuracy *= self.single_cell_factor
        if batch_size > 1:
            accuracy *= self.batch_item_factor ** (batch_size - 1)
        return max(0.0, min(self.max_accuracy, accuracy))

    def format_error_rate(self, shots: int) -> float:
        """Probability a completion row is malformed at this shot count."""
        fraction = _interpolate_shots(self.shot_curve, shots)
        return self.format_error_zero_shot + fraction * (
            self.format_error_five_shot - self.format_error_zero_shot
        )


#: The paper evaluates these two models (Section 5.2).  The shot curves
#: reflect the observed "one demonstration buys most of the gain" pattern.
_PROFILES: dict[str, ModelProfile] = {}


def _register(profile: ModelProfile) -> ModelProfile:
    _PROFILES[profile.name] = profile
    return profile


GPT_35_TURBO = _register(
    ModelProfile(
        name="gpt-3.5-turbo",
        base_zero_shot=0.30,
        base_five_shot=0.55,
        shot_curve={0: 0.0, 1: 0.75, 3: 0.94, 5: 1.0},
        kind_factors={
            KIND_SELECTION: 1.20,
            KIND_FREEFORM: 1.00,
            KIND_NUMERIC: 0.45,
            KIND_MULTI: 0.65,
        },
        database_bands={
            "california_schools": (0.88, 0.93),
            "superhero": (0.38, 0.55),
            "formula_1": (0.42, 0.56),
            "european_football": (0.32, 0.70),
        },
        column_factors={
            # City-from-address and county are easy inferences; URLs and
            # administrative categories are where models hallucinate.
            ("california_schools", "city"): 1.30,
            ("california_schools", "county"): 1.25,
            ("california_schools", "website"): 0.70,
            ("california_schools", "school_type"): 0.60,
            ("california_schools", "funding_type"): 0.55,
            # The three-letter code format needs demonstrations; years are
            # hard to pin exactly.
            ("formula_1", "code"): 1.10,
            ("formula_1", "birth_year"): 0.85,
        },
        format_error_zero_shot=0.04,
        format_error_five_shot=0.015,
        single_cell_factor=0.88,
        single_cell_shot_gain=0.35,
        batch_item_factor=0.99,
        context_boost=1.08,
    )
)

GPT_4_TURBO = _register(
    ModelProfile(
        name="gpt-4-turbo",
        base_zero_shot=0.40,
        base_five_shot=0.60,
        shot_curve={0: 0.0, 1: 0.92, 3: 0.95, 5: 1.0},
        kind_factors={
            KIND_SELECTION: 1.20,
            KIND_FREEFORM: 1.00,
            KIND_NUMERIC: 0.50,
            KIND_MULTI: 0.70,
        },
        database_bands={
            "california_schools": (0.94, 0.98),
            "superhero": (0.52, 0.56),
            "formula_1": (0.50, 0.54),
            "european_football": (0.36, 0.78),
        },
        column_factors={
            ("california_schools", "city"): 1.30,
            ("california_schools", "county"): 1.25,
            ("california_schools", "website"): 0.70,
            ("california_schools", "school_type"): 0.60,
            ("california_schools", "funding_type"): 0.55,
            ("formula_1", "code"): 1.10,
            ("formula_1", "birth_year"): 0.85,
        },
        format_error_zero_shot=0.025,
        format_error_five_shot=0.008,
        single_cell_factor=0.90,
        single_cell_shot_gain=0.40,
        batch_item_factor=0.993,
        context_boost=1.06,
    )
)


#: An ideal model: perfect knowledge, perfect formatting.  Used by the
#: benchmark's query-consistency validation (gold == hybrid when the LLM
#: never errs) and by ablation baselines.
PERFECT = _register(
    ModelProfile(
        name="perfect",
        base_zero_shot=1.0,
        base_five_shot=1.0,
        shot_curve={0: 0.0, 5: 1.0},
        format_error_zero_shot=0.0,
        format_error_five_shot=0.0,
        single_cell_factor=1.0,
        batch_item_factor=1.0,
        max_accuracy=1.0,
    )
)


def get_profile(name: str) -> ModelProfile:
    """Look up a registered model profile by name."""
    try:
        return _PROFILES[name]
    except KeyError as exc:
        raise LLMError(
            f"unknown model {name!r}; available: {sorted(_PROFILES)}"
        ) from exc


def list_profiles() -> list[str]:
    """Names of all registered model profiles."""
    return sorted(_PROFILES)


def register_profile(profile: ModelProfile) -> ModelProfile:
    """Register a custom profile (used by tests and ablations)."""
    return _register(profile)
