"""A small declarative prompt-engineering toolkit (Section 4.3).

"It would be more convenient for users if the data system may
automatically generate prompts and examples based on the specific
context and query requirements.  A promising direction is to develop a
principled declarative prompt engineering toolkit."

This module provides that layer: a prompt is *declared* as an ordered
set of typed sections rather than assembled with string concatenation.
The HQDL row-completion prompt (:mod:`repro.core.prompts`) is expressed
on top of it, which gives three properties string-built prompts lack:

- **introspection** — callers can ask a prompt spec which sections it
  contains, how many demonstrations it carries, or its token budget
  before rendering;
- **validation** — a section with an empty payload fails at construction
  time, not as a silently malformed prompt;
- **stable rendering** — section order and separators are fixed by the
  spec, so prompt-format drift between builders and the model's parser
  becomes a type error rather than a runtime mystery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import ReproError
from repro.llm.tokenizer import count_tokens


class PromptSpecError(ReproError):
    """Raised for structurally invalid prompt specifications."""


@dataclass(frozen=True)
class Section:
    """One typed block of a prompt.

    ``kind`` is a free-form label ('task', 'rule', 'schema', 'values',
    'demonstration', 'context', 'target', 'cue'); kinds drive
    introspection and let renderers treat classes of sections uniformly.
    """

    kind: str
    lines: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.kind:
            raise PromptSpecError("section kind must be non-empty")
        if not self.lines:
            raise PromptSpecError(f"section {self.kind!r} has no content")
        if any("\n" in line for line in self.lines):
            raise PromptSpecError(
                f"section {self.kind!r} lines must not embed newlines; "
                "pass one string per line instead"
            )

    def render(self) -> str:
        return "\n".join(self.lines)


@dataclass
class PromptSpec:
    """An ordered, introspectable prompt declaration."""

    sections: list[Section] = field(default_factory=list)

    # -- construction ----------------------------------------------------------

    def add(self, kind: str, *lines: str) -> "PromptSpec":
        """Append a section; returns self for fluent chaining."""
        self.sections.append(Section(kind, tuple(lines)))
        return self

    def add_task(self, *lines: str) -> "PromptSpec":
        return self.add("task", *lines)

    def add_rule(self, *lines: str) -> "PromptSpec":
        return self.add("rule", *lines)

    def add_schema(self, *lines: str) -> "PromptSpec":
        return self.add("schema", *lines)

    def add_values(self, *lines: str) -> "PromptSpec":
        return self.add("values", *lines)

    def add_demonstration(self, *lines: str) -> "PromptSpec":
        return self.add("demonstration", *lines)

    def add_context(self, *lines: str) -> "PromptSpec":
        return self.add("context", *lines)

    def add_target(self, *lines: str) -> "PromptSpec":
        return self.add("target", *lines)

    def add_cue(self, *lines: str) -> "PromptSpec":
        return self.add("cue", *lines)

    # -- introspection -----------------------------------------------------------

    def by_kind(self, kind: str) -> list[Section]:
        return [section for section in self.sections if section.kind == kind]

    def demonstration_count(self) -> int:
        return len(self.by_kind("demonstration"))

    def kinds(self) -> Iterator[str]:
        return (section.kind for section in self.sections)

    def token_estimate(self) -> int:
        """Approximate prompt size before sending (budgeting aid)."""
        return count_tokens(self.render())

    # -- rendering ---------------------------------------------------------------

    def render(self) -> str:
        """The final prompt text, sections joined by single newlines."""
        if not self.sections:
            raise PromptSpecError("cannot render an empty prompt spec")
        return "\n".join(section.render() for section in self.sections)

    def validate(self, *, require: tuple[str, ...] = ()) -> None:
        """Assert the spec contains every required section kind."""
        present = set(self.kinds())
        missing = [kind for kind in require if kind not in present]
        if missing:
            raise PromptSpecError(
                f"prompt spec is missing required sections: {missing}"
            )


def budgeted(spec: PromptSpec, max_tokens: int) -> PromptSpec:
    """Trim demonstrations until the spec fits a token budget.

    Demonstrations are removed from the *end* (the least similar ones,
    by the selection convention); every other section is preserved.
    Raises :class:`PromptSpecError` when the spec cannot fit even with
    zero demonstrations.
    """
    if spec.token_estimate() <= max_tokens:
        return spec
    trimmed = PromptSpec(sections=list(spec.sections))
    demonstration_indexes = [
        index
        for index, section in enumerate(trimmed.sections)
        if section.kind == "demonstration"
    ]
    for index in reversed(demonstration_indexes):
        del trimmed.sections[index]
        if trimmed.token_estimate() <= max_tokens:
            return trimmed
    raise PromptSpecError(
        f"prompt needs {trimmed.token_estimate()} tokens even without "
        f"demonstrations; budget is {max_tokens}"
    )
