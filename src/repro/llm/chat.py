"""The simulated chat model.

:class:`MockChatModel` receives *real prompt text* (built by HQDL or the
UDF executor), parses it the way an instruction-following model would
"read" it, consults the :class:`~repro.llm.oracle.KnowledgeOracle`, and
produces *real completion text* — including realistic failure modes:

- **knowledge errors**: hallucinated values at the profile's calibrated
  rates (handled inside the oracle);
- **format errors**: wrong field counts, empty fields, chatty preambles —
  frequent at zero shot and rare with demonstrations (Section 5.3);
- **batch misalignment**: occasionally skipped or swapped answers when
  several keys share one call (Section 5.4).

Prompt structure is defined by the marker constants below; the prompt
builders in :mod:`repro.core.prompts` and :mod:`repro.udf.executor`
import them, so model and builders cannot drift apart.
"""

from __future__ import annotations

import csv
import io
import re
from typing import Optional

from repro.errors import DeadlineExceededError, LLMError
from repro.llm.client import ChatResponse
from repro.llm.oracle import KnowledgeOracle, stable_uniform
from repro.llm.profiles import ModelProfile
from repro.llm.tokenizer import count_tokens, count_tokens_fast
from repro.llm.usage import UsageMeter

# -- prompt protocol markers (shared with the prompt builders) ---------------

ROW_TASK_MARKER = "fill in the missing values"
EQUIVALENCE_MARKER = "Do these two questions ask for the same attribute?"
CONTEXT_ROW_MARKER = "Context row:"
COLUMNS_MARKER = "The columns are:"
EXAMPLE_ENTRY_MARKER = "Example Entry:"
TARGET_ENTRY_MARKER = "Target Entry:"
ANSWER_MARKER = "Answer:"
MAP_KEYS_MARKER = "Keys:"
QUESTION_MARKER = "Question:"
MAP_EXAMPLE_MARKER = "Example:"
VALUES_HINT_MARKER = "The possible values for"

_TABLE_RE = re.compile(r"the `(\w+)` table")
_BACKTICK_RE = re.compile(r"`([^`]+)`")
_KEY_LINE_RE = re.compile(r"^\s*(\d+)\.\s+(.*)$")
_QUOTED_RE = re.compile(r"'((?:[^']|'')+)'")


def quote_field(value: str) -> str:
    """Render one field the way the row protocol expects: 'value'."""
    return "'" + value.replace("'", "''") + "'"


def parse_quoted_row(line: str) -> list[str]:
    """Parse a `'a','b',?,?` style row into fields ('?' stays literal)."""
    reader = csv.reader(io.StringIO(line), quotechar="'", skipinitialspace=True)
    rows = list(reader)
    if not rows:
        return []
    return [field.strip() for field in rows[0]]


class MockChatModel:
    """A deterministic simulated LLM bound to one world's oracle."""

    def __init__(
        self,
        oracle: KnowledgeOracle,
        profile: ModelProfile,
        *,
        meter: Optional[UsageMeter] = None,
        optimize: bool = True,
    ) -> None:
        self.oracle = oracle
        self.profile = profile
        self.meter = meter or UsageMeter()
        self.model_name = profile.name
        # token counting is the model's hottest pure function; the fast
        # counter returns identical numbers (optimize=False keeps the
        # reference implementation for the pre-optimization benches)
        self._count_tokens = count_tokens_fast if optimize else count_tokens
        self._optimize = optimize
        # see complete_many: batching beats threads for a zero-latency
        # CPU-bound client, but stays off on the reference path
        self.prefers_batch_dispatch = optimize

    # -- ChatClient ----------------------------------------------------------

    def complete(self, prompt: str, *, label: str = "") -> ChatResponse:
        """Complete one prompt, dispatching on its structure."""
        if TARGET_ENTRY_MARKER in prompt:
            text = self._complete_row(prompt)
        elif EQUIVALENCE_MARKER in prompt:
            text = self._complete_equivalence(prompt)
        elif MAP_KEYS_MARKER in prompt and QUESTION_MARKER in prompt:
            text = self._complete_map(prompt)
        elif QUESTION_MARKER in prompt:
            text = self._complete_qa(prompt)
        else:
            raise LLMError(
                f"prompt does not match any known protocol: {prompt[:120]!r}"
            )
        count = self._count_tokens
        usage = self.meter.record(count(prompt), count(text), label)
        return ChatResponse(text, usage)

    def complete_many(self, prompts, labels, *, deadline=None) -> list[ChatResponse]:
        """Complete a prompt list inline, in order.

        The model is pure CPU with zero latency, so fanning its calls
        over dispatcher threads only buys GIL contention and per-future
        overhead; batch dispatch (advertised via
        ``prefers_batch_dispatch`` when optimized) completes the list in
        one loop with identical results and accounting.  Latency-
        injecting wrappers hide the flag, so stacks where thread overlap
        matters keep the per-call path.  An already-expired ``deadline``
        skips the whole batch with a typed error before any completion.
        """
        if deadline is not None and deadline.expired:
            raise DeadlineExceededError(
                "deadline expired before batch completion"
            )
        return [
            self.complete(prompt, label=label)
            for prompt, label in zip(prompts, labels)
        ]

    # -- HQDL row completion ---------------------------------------------------

    def _complete_row(self, prompt: str) -> str:
        table_match = _TABLE_RE.search(prompt)
        if table_match is None:
            raise LLMError("row prompt does not name its expansion table")
        expansion = self.oracle.world.expansion(table_match.group(1))
        shots = prompt.count(EXAMPLE_ENTRY_MARKER)
        target_line = self._line_after_marker(prompt, TARGET_ENTRY_MARKER)
        fields = parse_quoted_row(target_line)
        key_width = len(expansion.key_columns)
        key = tuple(fields[:key_width])
        values = [str(part) for part in key]
        # grounding context (related database rows) makes recall easier —
        # the calibrated context boost models that (Section 4.3, opp. #1)
        has_context = CONTEXT_ROW_MARKER in prompt
        if key in self.oracle.world.truth[expansion.name]:
            for column in expansion.columns:
                values.append(
                    self.oracle.generate_value(
                        expansion.name,
                        key,
                        column.name,
                        self.profile,
                        shots,
                        with_context=has_context,
                    )
                )
        else:
            # An entity the "world" has no record of: the model guesses.
            values.extend("Unknown" for _ in expansion.columns)
        values = self._maybe_mangle_row(prompt, values, shots)
        row = ",".join(quote_field(v) for v in values)
        preamble = self._maybe_preamble(prompt, shots)
        return preamble + row

    def _maybe_mangle_row(
        self, prompt: str, values: list[str], shots: int
    ) -> list[str]:
        """Inject a field-level format error at the calibrated rate."""
        rate = self.profile.format_error_rate(shots)
        draw = stable_uniform(self.model_name, "row-format", prompt)
        if draw >= rate:
            return values
        variant = int(stable_uniform(self.model_name, "row-variant", prompt) * 3)
        mangled = list(values)
        if variant == 0 and len(mangled) > 1:
            mangled.pop()  # too few fields
        elif variant == 1:
            mangled.append("N/A")  # too many fields
        else:
            index = int(
                stable_uniform(self.model_name, "row-empty", prompt) * len(mangled)
            )
            mangled[min(index, len(mangled) - 1)] = ""  # empty field
        return mangled

    def _maybe_preamble(self, prompt: str, shots: int) -> str:
        """Zero-shot completions sometimes ignore the 'no explanation' rule."""
        if shots > 0:
            return ""
        draw = stable_uniform(self.model_name, "preamble", prompt)
        if draw < self.profile.format_error_rate(0) / 2:
            return "Here is the completed row:\n"
        return ""

    # -- UDF map (batched per-key answers) --------------------------------------

    def _complete_map(self, prompt: str) -> str:
        if self._optimize:
            # one pass over the prompt lines instead of one per marker
            question, keys = self._parse_map_prompt_fast(prompt)
        else:
            question = self._line_after_marker(prompt, QUESTION_MARKER)
            keys = self._parse_map_keys(prompt)
        expansion, column = self.oracle.resolve_attribute(question)
        shots = prompt.count(MAP_EXAMPLE_MARKER)
        answers: list[str] = []
        if self._optimize and keys:
            generate = self.oracle.map_value_generator(
                expansion.name, column.name, self.profile, shots, len(keys)
            )
            for key in keys:
                padded = self._pad_key(expansion, key)
                answers.append(
                    generate(padded) if padded is not None else "Unknown"
                )
        else:
            for key in keys:
                padded = self._pad_key(expansion, key)
                if padded is not None:
                    answers.append(
                        self.oracle.generate_value(
                            expansion.name,
                            padded,
                            column.name,
                            self.profile,
                            shots,
                            single_cell=True,
                            batch_size=len(keys),
                        )
                    )
                else:
                    answers.append("Unknown")
        answers = self._maybe_misalign(prompt, answers, shots)
        return "\n".join(f"{i}. {answer}" for i, answer in enumerate(answers, 1))

    def _parse_map_prompt_fast(
        self, prompt: str
    ) -> tuple[str, list[tuple[str, ...]]]:
        """Question line and keys block in a single line scan.

        Replicates :meth:`_line_after_marker` (first line containing the
        question marker wins) and :meth:`_parse_map_keys` (the keys
        block opens at the first bare ``Keys:`` line and closes at the
        first non-key line after it) exactly — asserted byte-identical
        by the test suite.
        """
        question: Optional[str] = None
        keys: list[tuple[str, ...]] = []
        seen_marker = False
        keys_done = False
        for line in prompt.splitlines():
            if question is None and QUESTION_MARKER in line:
                question = line.split(QUESTION_MARKER, 1)[1].strip()
            if keys_done:
                if question is not None:
                    break
                continue
            if not seen_marker:
                if line.strip() == MAP_KEYS_MARKER:
                    seen_marker = True
                continue
            match = _KEY_LINE_RE.match(line)
            if match is None:
                if keys:
                    keys_done = True
                    if question is not None:
                        break
                continue
            parts = [p.strip() for p in match.group(2).split("|")]
            keys.append(tuple(_strip_quotes(p) for p in parts))
        if question is None:
            raise LLMError(f"prompt is missing the {QUESTION_MARKER!r} line")
        return question, keys

    def _parse_map_keys(self, prompt: str) -> list[tuple[str, ...]]:
        keys: list[tuple[str, ...]] = []
        in_keys = False
        for line in prompt.splitlines():
            if line.strip() == MAP_KEYS_MARKER:
                in_keys = True
                continue
            if not in_keys:
                continue
            match = _KEY_LINE_RE.match(line)
            if match is None:
                if keys:  # the keys block has ended
                    break
                continue
            parts = [
                p.strip() for p in match.group(2).split("|")
            ]
            keys.append(tuple(_strip_quotes(p) for p in parts))
        return keys

    def _pad_key(
        self, expansion, key: tuple[str, ...]
    ) -> Optional[tuple[str, ...]]:
        """Match a (possibly partial) prompt key against the truth keys."""
        truth = self.oracle.world.truth[expansion.name]
        if key in truth:
            return key
        width = len(expansion.key_columns)
        if len(key) < width:
            # unique completion by prefix
            candidates = [k for k in truth if k[: len(key)] == key]
            if len(candidates) == 1:
                return candidates[0]
        return None

    def _maybe_misalign(
        self, prompt: str, answers: list[str], shots: int
    ) -> list[str]:
        """Batch answers occasionally come back skipped or swapped."""
        if len(answers) < 2:
            return answers
        rate = self.profile.format_error_rate(shots)
        draw = stable_uniform(self.model_name, "map-format", prompt)
        if draw >= rate:
            return answers
        mangled = list(answers)
        if stable_uniform(self.model_name, "map-variant", prompt) < 0.5:
            index = int(
                stable_uniform(self.model_name, "map-skip", prompt) * len(mangled)
            )
            mangled[min(index, len(mangled) - 1)] = ""  # skipped an item
        else:
            index = int(
                stable_uniform(self.model_name, "map-swap", prompt)
                * (len(mangled) - 1)
            )
            mangled[index], mangled[index + 1] = mangled[index + 1], mangled[index]
        return mangled

    # -- question-equivalence check (semantic cache rewriting) -------------------

    def _complete_equivalence(self, prompt: str) -> str:
        """Judge whether two questions ask for the same generated attribute.

        This is the model's genuine "understanding" at work: both
        phrasings are resolved through the same keyword-cue machinery the
        map protocol uses, and equivalence means they name the same
        (expansion, column).  Unresolvable phrasings are judged 'no'.
        """
        first = self._line_after_marker(prompt, "Q1:")
        second = self._line_after_marker(prompt, "Q2:")
        try:
            left = self.oracle.resolve_attribute(_strip_quotes(first))
            right = self.oracle.resolve_attribute(_strip_quotes(second))
        except LLMError:
            return "no"
        same = (left[0].name, left[1].name) == (right[0].name, right[1].name)
        return "yes" if same else "no"

    # -- UDF scalar QA -----------------------------------------------------------

    def _complete_qa(self, prompt: str) -> str:
        question = self._line_after_marker(prompt, QUESTION_MARKER)
        try:
            expansion, column = self.oracle.resolve_attribute(question)
        except LLMError:
            return "Unknown"
        entity_match = _QUOTED_RE.search(question)
        if entity_match is None:
            return "Unknown"
        entity = entity_match.group(1).replace("''", "'")
        key = self.oracle.find_key(expansion, entity)
        if key is None:
            return "Unknown"
        shots = prompt.count(MAP_EXAMPLE_MARKER)
        return self.oracle.generate_value(
            expansion.name, key, column.name, self.profile, shots, single_cell=True
        )

    # -- shared helpers ------------------------------------------------------------

    @staticmethod
    def _line_after_marker(prompt: str, marker: str) -> str:
        for line in prompt.splitlines():
            if marker in line:
                return line.split(marker, 1)[1].strip()
        raise LLMError(f"prompt is missing the {marker!r} line")


def _strip_quotes(text: str) -> str:
    if len(text) >= 2 and text[0] == text[-1] and text[0] in "'\"":
        return text[1:-1].replace(text[0] * 2, text[0])
    return text
