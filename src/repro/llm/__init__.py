"""Simulated LLM stack.

This subpackage stands in for the OpenAI API the paper calls (GPT-3.5
Turbo / GPT-4 Turbo are unreachable offline).  The substitution keeps
every pipeline stage real:

- prompts are genuine text built by :mod:`repro.core.prompts` /
  :mod:`repro.udf`;
- :class:`~repro.llm.chat.MockChatModel` *reads* the prompt (keys, column
  lists, demonstrations) and produces genuine completion text;
- answers come from a :class:`~repro.llm.oracle.KnowledgeOracle` — ground
  truth corrupted by deterministic, per-cell noise whose rates are the
  calibrated per-model/per-shot profiles in :mod:`repro.llm.profiles`;
- token usage is metered through :mod:`repro.llm.tokenizer` and
  :mod:`repro.llm.usage` exactly as the paper's Table 5 requires.

Determinism: the same (model, prompt) pair always yields the same
completion, mirroring temperature-0 decoding in the paper.
"""

from repro.llm.cache import CachingClient, PromptCache
from repro.llm.chat import MockChatModel
from repro.llm.client import ChatClient, ChatResponse, ScriptedClient
from repro.llm.declarative import PromptSpec
from repro.llm.faults import FaultInjector, FaultPlan, FaultStats, FaultyClient
from repro.llm.oracle import KnowledgeOracle
from repro.llm.parallel import (
    DelayedClient,
    DispatchOutcome,
    ParallelDispatcher,
    SimulatedClock,
    SimulatedLatencyClient,
)
from repro.llm.profiles import ModelProfile, get_profile, list_profiles
from repro.llm.resilience import (
    CircuitBreaker,
    Clock,
    Deadline,
    MonotonicClock,
    ResilienceReport,
    RetryingClient,
    RetryPolicy,
)
from repro.llm.tokenizer import count_tokens, tokenize_text
from repro.llm.transcript import TranscriptRecorder
from repro.llm.usage import Usage, UsageMeter

__all__ = [
    "CachingClient",
    "PromptCache",
    "MockChatModel",
    "ChatClient",
    "ChatResponse",
    "ScriptedClient",
    "PromptSpec",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "FaultyClient",
    "KnowledgeOracle",
    "CircuitBreaker",
    "Clock",
    "Deadline",
    "MonotonicClock",
    "ResilienceReport",
    "RetryingClient",
    "RetryPolicy",
    "DelayedClient",
    "DispatchOutcome",
    "ParallelDispatcher",
    "SimulatedClock",
    "SimulatedLatencyClient",
    "ModelProfile",
    "get_profile",
    "list_profiles",
    "count_tokens",
    "tokenize_text",
    "TranscriptRecorder",
    "Usage",
    "UsageMeter",
]
