"""SQLite-backed persistent prompt caching (cross-run reuse).

The in-memory :class:`~repro.llm.cache.PromptCache` makes repeated
prompts free *within* one harness run; every run still starts cold.
This module closes that gap: a :class:`PersistentPromptCache` stores
completions in a small SQLite file, so a warm rerun of the same
(model, shots) configuration issues **zero** new LLM calls — the
run-level analogue of the paper's Section 5.5 reuse accounting.

Design points:

- **versioned keys** — an entry is addressed by a SHA-256 digest of
  ``(SCHEMA_VERSION, model, shots, prompt)``.  Bumping
  :data:`SCHEMA_VERSION` invalidates every old entry at once, and two
  configurations never collide even inside one shared file.
- **corruption tolerance** — a cache file that SQLite refuses to open
  (truncated write, garbage bytes) is discarded and recreated instead of
  taking the run down; a cache is an accelerator, never a dependency.
- **statistics** — hits, misses, stores, and evictions are counted,
  feeding the ``bench-cache`` harness target.
- **bounded size** — an optional ``max_entries`` cap evicts the least
  recently used entries (tracked by a monotonic use sequence, so
  eviction order is deterministic — no wall-clock involved).

:class:`PersistentClient` is the :class:`~repro.llm.client.ChatClient`
decorator over the cache.  It composes *under*
:class:`~repro.llm.cache.CachingClient`: the in-memory single-flight
layer sits in front, so concurrent workers collapse onto one disk probe
per unique prompt and disk hits cost zero tokens, exactly like memory
hits.
"""

from __future__ import annotations

import hashlib
import sqlite3
import threading
from pathlib import Path
from typing import Optional, Union

from repro.llm.client import ChatClient, ChatResponse
from repro.llm.usage import Usage
from repro.obs import NULL_PROVENANCE, NULL_TELEMETRY, Telemetry
from repro.obs.provenance import TIER_DISK, TIER_FRESH
from repro.obs.trace import NULL_SPAN

#: Bump to invalidate every persisted completion (key format, prompt
#: protocol, or oracle changes all warrant a bump).
SCHEMA_VERSION = 1


def cache_key(model: str, shots: int, prompt: str) -> str:
    """The versioned entry key: model and shots namespace the prompt."""
    payload = "\x1f".join(
        (f"v{SCHEMA_VERSION}", model, str(shots), prompt)
    ).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


class PersistentPromptCache:
    """A prompt → completion cache persisted to one SQLite file.

    Thread-safe: one connection guarded by one lock (the workload is
    tiny key-value operations, so a single writer is never the
    bottleneck — the LLM is).  Usable as a context manager.
    """

    def __init__(
        self,
        path: Union[str, Path],
        *,
        max_entries: Optional[int] = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.path = Path(path)
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        #: True when a corrupt file was discarded during open.
        self.recovered = False
        self._lock = threading.Lock()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = self._open()

    # -- lifecycle -----------------------------------------------------------

    def _open(self) -> sqlite3.Connection:
        """Open (or recreate) the cache file, tolerating corruption."""
        try:
            return self._connect()
        except sqlite3.Error:
            # A cache that cannot be opened is worth less than no cache:
            # discard it and start fresh rather than fail the run.
            self.recovered = True
            self.path.unlink(missing_ok=True)
            return self._connect()

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self.path, check_same_thread=False)
        try:
            conn.execute(
                "CREATE TABLE IF NOT EXISTS entries ("
                "  key TEXT PRIMARY KEY,"
                "  completion TEXT NOT NULL,"
                "  model TEXT NOT NULL,"
                "  shots INTEGER NOT NULL,"
                "  last_used INTEGER NOT NULL,"
                "  uses INTEGER NOT NULL DEFAULT 0"
                ")"
            )
            conn.execute(
                "CREATE TABLE IF NOT EXISTS meta (version INTEGER NOT NULL)"
            )
            row = conn.execute("SELECT version FROM meta").fetchone()
            if row is None:
                conn.execute(
                    "INSERT INTO meta (version) VALUES (?)", (SCHEMA_VERSION,)
                )
            elif row[0] != SCHEMA_VERSION:
                # stale generation: wipe entries, keep the file
                conn.execute("DELETE FROM entries")
                conn.execute("UPDATE meta SET version = ?", (SCHEMA_VERSION,))
            conn.commit()
        except sqlite3.Error:
            conn.close()
            raise
        return conn

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "PersistentPromptCache":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- operations ----------------------------------------------------------

    def get(self, model: str, shots: int, prompt: str) -> Optional[str]:
        """The stored completion for this configuration, or None."""
        key = cache_key(model, shots, prompt)
        with self._lock:
            row = self._conn.execute(
                "SELECT completion, uses FROM entries WHERE key = ?", (key,)
            ).fetchone()
            if row is None:
                self.misses += 1
                return None
            self.hits += 1
            self._conn.execute(
                "UPDATE entries SET last_used = ?, uses = ? WHERE key = ?",
                (self._next_seq(), row[1] + 1, key),
            )
            self._conn.commit()
            return row[0]

    def put(self, model: str, shots: int, prompt: str, completion: str) -> None:
        """Store one completion, evicting LRU entries past ``max_entries``."""
        key = cache_key(model, shots, prompt)
        with self._lock:
            self._conn.execute(
                "INSERT OR REPLACE INTO entries "
                "(key, completion, model, shots, last_used, uses) "
                "VALUES (?, ?, ?, ?, ?, 0)",
                (key, completion, model, shots, self._next_seq()),
            )
            self.stores += 1
            if self.max_entries is not None:
                over = self._count() - self.max_entries
                if over > 0:
                    cursor = self._conn.execute(
                        "DELETE FROM entries WHERE key IN ("
                        "  SELECT key FROM entries "
                        "  ORDER BY last_used ASC, key ASC LIMIT ?"
                        ")",
                        (over,),
                    )
                    self.evictions += cursor.rowcount
            self._conn.commit()

    def _next_seq(self) -> int:
        """A monotonic use-order stamp (deterministic, no wall clock)."""
        row = self._conn.execute(
            "SELECT COALESCE(MAX(last_used), 0) FROM entries"
        ).fetchone()
        return int(row[0]) + 1

    def _count(self) -> int:
        row = self._conn.execute("SELECT COUNT(*) FROM entries").fetchone()
        return int(row[0])

    def __len__(self) -> int:
        with self._lock:
            return self._count()

    def clear(self) -> None:
        with self._lock:
            self._conn.execute("DELETE FROM entries")
            self._conn.commit()
            self.hits = self.misses = self.stores = self.evictions = 0

    def hit_rate(self) -> float:
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """A flat statistics snapshot for reports and BENCH JSON."""
        with self._lock:
            return {
                "entries": self._count(),
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "evictions": self.evictions,
                "recovered": self.recovered,
            }


class PersistentClient:
    """A ChatClient decorator that serves completions from disk.

    A disk hit returns the stored completion at zero token cost — the
    same accounting the in-memory cache uses, because nothing reaches the
    model.  A miss calls through and stores the completion, so the next
    run (or the next database sharing a prompt) is warm.

    Layering: put :class:`~repro.llm.cache.CachingClient` *in front* of
    this client (the executor does that automatically) so the in-memory
    single-flight layer absorbs concurrent duplicates before they reach
    the disk, and put retry/fault layers *behind* it so disk hits bypass
    both the faults and the retry budget.
    """

    def __init__(
        self,
        inner: ChatClient,
        cache: PersistentPromptCache,
        *,
        shots: int = 0,
        telemetry: Optional[Telemetry] = None,
        provenance=None,
    ) -> None:
        self.inner = inner
        self.cache = cache
        self.shots = shots
        self.model_name = inner.model_name
        self._tel = telemetry if telemetry is not None else NULL_TELEMETRY
        self._prov = provenance if provenance is not None else NULL_PROVENANCE
        metrics = self._tel.metrics
        self._m_hits = metrics.counter("llm.cache.persistent_hits")
        self._m_misses = metrics.counter("llm.cache.persistent_misses")

    def complete(self, prompt: str, *, label: str = "") -> ChatResponse:
        tel = self._tel
        with (
            tel.tracer.span("cache:persistent", label=label)
            if tel.enabled
            else NULL_SPAN
        ) as span:
            cached = self.cache.get(self.model_name, self.shots, prompt)
            if cached is not None:
                self._m_hits.inc()
                if self._prov.enabled:
                    self._prov.record_tier(prompt, TIER_DISK)
                span.set("outcome", "hit")
                return ChatResponse(cached, Usage())
            self._m_misses.inc()
            span.set("outcome", "miss")
            response = self.inner.complete(prompt, label=label)
            if self._prov.enabled:
                self._prov.record_tier(prompt, TIER_FRESH)
            self.cache.put(self.model_name, self.shots, prompt, response.text)
            return response
