"""Batching and (simulated) parallel execution of LLM calls.

BlendSQL batches keys (default 5 per call) to cut the number of requests,
at a small accuracy cost (Section 5.4), and "plans to support parallelized
LLM calls in the future to further minimize query latency" (Section 4.3).
This module provides the batching helper used by the UDF executor, and a
latency model + parallel scheduler used by the future-work ablation bench.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterable, Sequence, TypeVar

T = TypeVar("T")

#: BlendSQL's default batch size (Section 5.4).
DEFAULT_BATCH_SIZE = 5


def batched(items: Sequence[T], size: int) -> list[list[T]]:
    """Split ``items`` into consecutive chunks of at most ``size``."""
    if size < 1:
        raise ValueError(f"batch size must be >= 1, got {size}")
    return [list(items[start : start + size]) for start in range(0, len(items), size)]


@dataclass(frozen=True)
class LatencyModel:
    """A simple affine latency model for one LLM call (seconds).

    latency = base + per_input_token * in + per_output_token * out.
    Defaults approximate hosted GPT-class API behaviour: fixed overhead
    plus generation dominated by output tokens.
    """

    base_seconds: float = 0.5
    per_input_token: float = 0.00002
    per_output_token: float = 0.02

    def call_latency(self, input_tokens: int, output_tokens: int) -> float:
        return (
            self.base_seconds
            + self.per_input_token * input_tokens
            + self.per_output_token * output_tokens
        )


def sequential_makespan(
    calls: Iterable[tuple[int, int]], model: LatencyModel | None = None
) -> float:
    """Total latency when calls run one after another."""
    model = model or LatencyModel()
    return sum(model.call_latency(i, o) for i, o in calls)


def parallel_makespan(
    calls: Iterable[tuple[int, int]],
    workers: int,
    model: LatencyModel | None = None,
) -> float:
    """Makespan under ``workers`` concurrent connections (LPT greedy).

    Uses longest-processing-time-first assignment onto the least loaded
    worker, the standard 4/3-approximation for makespan scheduling.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    model = model or LatencyModel()
    durations = sorted(
        (model.call_latency(i, o) for i, o in calls), reverse=True
    )
    loads = [0.0] * workers
    heapq.heapify(loads)
    for duration in durations:
        lightest = heapq.heappop(loads)
        heapq.heappush(loads, lightest + duration)
    return max(loads) if loads else 0.0
