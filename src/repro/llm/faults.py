"""Deterministic fault injection for the LLM stack.

Real deployments of the paper's pipelines see rate limits, timeouts,
transient 5xx errors, and malformed completions; the simulated stack sees
none of them, so the resilience layer (:mod:`repro.llm.resilience`) would
otherwise be untestable.  This module injects those failures *on purpose*
and *reproducibly*:

- :class:`FaultPlan` declares per-kind fault rates plus a seed;
- :class:`FaultInjector` turns the plan into per-call decisions that are
  pure functions of ``(seed, prompt, attempt)`` — no shared RNG stream —
  so the same plan produces the same faults no matter how many dispatcher
  threads race, and a retry of the same prompt sees a *fresh* draw;
- :class:`FaultyClient` wraps any :class:`~repro.llm.client.ChatClient`,
  raising the typed transient errors of :mod:`repro.errors` or corrupting
  completions (truncation, garbage CSV) to exercise extraction repair.

With every rate at 0 the wrapper is a byte-exact pass-through: same
completions, same usage, same cache behaviour.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.errors import LLMTimeoutError, RateLimitError, TransientLLMError
from repro.llm.client import ChatClient, ChatResponse
from repro.llm.oracle import stable_uniform

#: Fault kinds in cumulative-draw order.  The first three raise typed
#: transient errors *before* the upstream call (no tokens are spent, as
#: with a real 429/503 rejection); the last two corrupt the completion
#: *after* it (the tokens are already paid for).
ERROR_KINDS = ("rate_limit", "timeout", "transient")
CORRUPTION_KINDS = ("truncate", "garbage")
FAULT_KINDS = ERROR_KINDS + CORRUPTION_KINDS

#: A row no extractor accepts: wrong field count, unbalanced quote.
GARBAGE_COMPLETION = "### garbage, 'unterminated,,,\n?!?"


@dataclass(frozen=True)
class FaultPlan:
    """Declarative fault rates (each in [0, 1], summing to <= 1).

    ``retry_after`` is the hint attached to injected rate-limit errors,
    mirroring the Retry-After header real providers send.
    """

    rate_limit: float = 0.0
    timeout: float = 0.0
    transient: float = 0.0
    truncate: float = 0.0
    garbage: float = 0.0
    seed: int = 0
    retry_after: float = 1.0

    def __post_init__(self) -> None:
        for kind in FAULT_KINDS:
            rate = getattr(self, kind)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{kind} rate must be in [0, 1], got {rate}")
        if self.total_rate() > 1.0 + 1e-9:
            raise ValueError(
                f"fault rates sum to {self.total_rate():.3f}, must be <= 1"
            )

    def total_rate(self) -> float:
        """The probability that any one call is faulted."""
        return sum(getattr(self, kind) for kind in FAULT_KINDS)

    @classmethod
    def uniform(
        cls, rate: float, *, seed: int = 0, corruption_share: float = 0.2
    ) -> "FaultPlan":
        """A mixed plan with total fault probability ``rate``.

        The error share (1 - ``corruption_share``) splits 2:1:1 across
        rate limits, timeouts, and generic transients — roughly the mix
        production API logs show — and the corruption share splits evenly
        between truncation and garbage.
        """
        if not 0.0 <= corruption_share <= 1.0:
            raise ValueError(
                f"corruption_share must be in [0, 1], got {corruption_share}"
            )
        errors = rate * (1.0 - corruption_share)
        corruption = rate * corruption_share
        return cls(
            rate_limit=errors * 0.5,
            timeout=errors * 0.25,
            transient=errors * 0.25,
            truncate=corruption * 0.5,
            garbage=corruption * 0.5,
            seed=seed,
        )


@dataclass
class FaultStats:
    """Thread-safe counts of decisions and injected faults by kind."""

    decisions: int = 0
    injected: dict[str, int] = field(default_factory=dict)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )

    def record(self, kind: str | None) -> None:
        with self._lock:
            self.decisions += 1
            if kind is not None:
                self.injected[kind] = self.injected.get(kind, 0) + 1

    def total_injected(self) -> int:
        with self._lock:
            return sum(self.injected.values())

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(self.injected)


class FaultInjector:
    """Turns a :class:`FaultPlan` into deterministic per-call decisions.

    The decision for one call depends only on ``(seed, prompt, attempt)``
    — ``attempt`` being how many times *this injector* has seen the
    prompt — so fault sequences are identical across worker counts and
    runs, and each retry rolls independently (a faulted first attempt
    does not doom the retry).
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.stats = FaultStats()
        self._attempts: dict[str, int] = {}
        self._lock = threading.Lock()

    def next_attempt(self, prompt: str) -> int:
        """The 1-based attempt number for this sighting of ``prompt``."""
        with self._lock:
            attempt = self._attempts.get(prompt, 0) + 1
            self._attempts[prompt] = attempt
            return attempt

    def draw(self, prompt: str, attempt: int) -> str | None:
        """The fault kind for (prompt, attempt), or None for a clean call."""
        draw = stable_uniform("fault", self.plan.seed, prompt, attempt)
        cumulative = 0.0
        kind: str | None = None
        for candidate in FAULT_KINDS:
            cumulative += getattr(self.plan, candidate)
            if draw < cumulative:
                kind = candidate
                break
        self.stats.record(kind)
        return kind


class FaultyClient:
    """A ChatClient decorator that injects the plan's faults.

    Error faults raise *before* the upstream call (a rejected request
    costs no tokens); corruption faults rewrite the completion text
    *after* it (those tokens were spent), keeping usage accounting
    realistic in both directions.
    """

    def __init__(self, inner: ChatClient, injector: FaultInjector) -> None:
        self.inner = inner
        self.injector = injector
        self.model_name = inner.model_name

    def complete(self, prompt: str, *, label: str = "") -> ChatResponse:
        """Complete through the inner client, injecting the drawn fault."""
        attempt = self.injector.next_attempt(prompt)
        kind = self.injector.draw(prompt, attempt)
        if kind == "rate_limit":
            raise RateLimitError(
                f"injected rate limit (attempt {attempt})",
                retry_after=self.injector.plan.retry_after,
            )
        if kind == "timeout":
            raise LLMTimeoutError(f"injected timeout (attempt {attempt})")
        if kind == "transient":
            raise TransientLLMError(f"injected transient error (attempt {attempt})")
        response = self.inner.complete(prompt, label=label)
        if kind == "truncate":
            return ChatResponse(
                response.text[: len(response.text) // 2], response.usage
            )
        if kind == "garbage":
            return ChatResponse(GARBAGE_COMPLETION, response.usage)
        return response
