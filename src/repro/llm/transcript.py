"""Call transcripts: record every prompt/completion pair.

Debugging a hybrid-query pipeline usually starts with "what did the
model actually see?".  :class:`TranscriptRecorder` wraps any
:class:`~repro.llm.client.ChatClient` and appends one JSON line per call
(prompt, completion, token counts, label) — to memory always, to a
``.jsonl`` file when a path is given.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.llm.client import ChatClient, ChatResponse


@dataclass(frozen=True)
class TranscriptEntry:
    """One recorded LLM call."""

    index: int
    label: str
    prompt: str
    completion: str
    input_tokens: int
    output_tokens: int

    def as_json(self) -> str:
        return json.dumps(
            {
                "index": self.index,
                "label": self.label,
                "prompt": self.prompt,
                "completion": self.completion,
                "input_tokens": self.input_tokens,
                "output_tokens": self.output_tokens,
            },
            ensure_ascii=False,
        )


class TranscriptRecorder:
    """A ChatClient decorator that logs every call."""

    def __init__(
        self,
        inner: ChatClient,
        *,
        path: Optional[Union[str, Path]] = None,
        keep_in_memory: bool = True,
    ) -> None:
        self.inner = inner
        self.model_name = inner.model_name
        self.path = Path(path) if path is not None else None
        self.keep_in_memory = keep_in_memory
        self.entries: list[TranscriptEntry] = []
        self._count = 0
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.path.write_text("")  # truncate any previous transcript

    def complete(self, prompt: str, *, label: str = "") -> ChatResponse:
        """Call through to the wrapped client, recording the exchange."""
        response = self.inner.complete(prompt, label=label)
        entry = TranscriptEntry(
            index=self._count,
            label=label,
            prompt=prompt,
            completion=response.text,
            input_tokens=response.usage.input_tokens,
            output_tokens=response.usage.output_tokens,
        )
        self._count += 1
        if self.keep_in_memory:
            self.entries.append(entry)
        if self.path is not None:
            with self.path.open("a") as handle:
                handle.write(entry.as_json() + "\n")
        return response

    def __len__(self) -> int:
        return self._count

    def by_label(self, label: str) -> list[TranscriptEntry]:
        """In-memory entries recorded under one label."""
        return [entry for entry in self.entries if entry.label == label]


def load_transcript(path: Union[str, Path]) -> list[TranscriptEntry]:
    """Read a ``.jsonl`` transcript back into entries."""
    entries = []
    for line in Path(path).read_text().splitlines():
        if not line.strip():
            continue
        payload = json.loads(line)
        entries.append(TranscriptEntry(**payload))
    return entries
