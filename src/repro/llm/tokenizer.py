"""Deterministic GPT-style token counting.

The paper's Table 5 reports input/output token totals, which determine
monetary cost.  Real GPT tokenizers are BPE models; offline we use a
faithful approximation: text splits into word, number and punctuation
pieces, and long word pieces are further split into subword chunks of at
most four characters (the empirical average for English BPE is ~4 chars
per token).  The approximation is deterministic and monotone (more text
never yields fewer tokens), which is all the cost accounting needs.
"""

from __future__ import annotations

import re

_PIECE = re.compile(
    r"""
    [A-Za-z]+            # words
    | \d+                # digit runs
    | [^\sA-Za-z\d]      # each punctuation / symbol char
    """,
    re.VERBOSE,
)

#: Maximum characters a single subword token covers.
SUBWORD_LEN = 4

#: Digits are grouped ~3 per token (GPT tokenizers chunk digit runs).
DIGIT_GROUP = 3


#: One match per *token* (not per piece): greedy repetition chunks a
#: letter run of length n into ceil(n / SUBWORD_LEN) matches and a digit
#: run into ceil(n / DIGIT_GROUP) matches — exactly the substrings
#: :func:`tokenize_text` produces — so counting tokens is a single
#: C-level scan instead of a Python loop over pieces.
_TOKEN = re.compile(
    r"[A-Za-z]{1,%d}|\d{1,%d}|[^\sA-Za-z\d]" % (SUBWORD_LEN, DIGIT_GROUP)
)


def tokenize_text(text: str) -> list[str]:
    """Split ``text`` into approximate BPE tokens."""
    tokens: list[str] = []
    for piece in _PIECE.findall(text):
        if piece.isdigit():
            for start in range(0, len(piece), DIGIT_GROUP):
                tokens.append(piece[start : start + DIGIT_GROUP])
        elif piece.isalpha() and len(piece) > SUBWORD_LEN:
            for start in range(0, len(piece), SUBWORD_LEN):
                tokens.append(piece[start : start + SUBWORD_LEN])
        else:
            tokens.append(piece)
    return tokens


def count_tokens(text: str) -> int:
    """Number of approximate tokens in ``text``."""
    return len(tokenize_text(text))


def count_tokens_fast(text: str) -> int:
    """:func:`count_tokens`, without materializing the token list.

    Returns the same number for every input (asserted by the test
    suite); the per-token work happens inside the regex engine, which
    makes this ~4x faster on long prompts — it is what the optimized
    model hot path uses.
    """
    return len(_TOKEN.findall(text))
