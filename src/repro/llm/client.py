"""Client protocol for chat models, plus test doubles.

Everything that talks to an LLM in this library goes through the
:class:`ChatClient` protocol, so pipelines are oblivious to whether they
are driving the simulated :class:`~repro.llm.chat.MockChatModel`, a
caching wrapper, or a scripted stand-in inside a unit test.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterable, Protocol, runtime_checkable

from repro.errors import LLMError
from repro.llm.tokenizer import count_tokens
from repro.llm.usage import Usage, UsageMeter


@dataclass(frozen=True)
class ChatResponse:
    """One completion: the text plus the usage it cost."""

    text: str
    usage: Usage


@runtime_checkable
class ChatClient(Protocol):
    """Anything that can complete a prompt."""

    model_name: str

    def complete(self, prompt: str, *, label: str = "") -> ChatResponse:
        """Complete ``prompt`` and account for its tokens."""
        ...  # pragma: no cover - protocol


class ScriptedClient:
    """A deterministic test double that replays canned completions.

    Accepts either a list (consumed in order) or a dict keyed by an exact
    prompt or by a substring — when several substring keys match, the
    longest (most specific) one wins; an exact-key match always beats a
    substring match.  Raises :class:`LLMError` when no scripted answer
    matches, so tests fail loudly on unexpected prompts.

    Thread-safety: prompt recording and answer selection happen as *one*
    atomic step under the internal lock, and the chosen answer is paired
    with its prompt in :attr:`calls` — so under the parallel dispatcher
    ``prompts[i]`` always consumed queue entry ``i``, and tests can
    assert exactly which response each racing prompt received.
    """

    def __init__(
        self,
        responses: Iterable[str] | dict[str, str],
        *,
        model_name: str = "scripted",
        meter: UsageMeter | None = None,
    ) -> None:
        self.model_name = model_name
        self.meter = meter or UsageMeter()
        self.prompts: list[str] = []
        #: (prompt, chosen response) pairs, recorded atomically with the
        #: queue pop / dict lookup that produced them.
        self.calls: list[tuple[str, str]] = []
        self._lock = threading.Lock()
        if isinstance(responses, dict):
            self._by_key = dict(responses)
            self._queue: list[str] = []
        else:
            self._by_key = {}
            self._queue = list(responses)

    def complete(self, prompt: str, *, label: str = "") -> ChatResponse:
        """Replay the scripted answer for this prompt, metering tokens."""
        with self._lock:
            self.prompts.append(prompt)
            try:
                text = self._lookup(prompt)
            except LLMError:
                # keep prompts/calls aligned even on a scripting miss, so
                # concurrent failures cannot skew later pairings
                self.prompts.pop()
                raise
            self.calls.append((prompt, text))
        usage = self.meter.record(count_tokens(prompt), count_tokens(text), label)
        return ChatResponse(text, usage)

    def _lookup(self, prompt: str) -> str:
        if self._queue:
            return self._queue.pop(0)
        if prompt in self._by_key:
            return self._by_key[prompt]
        # among substring keys, the longest match is the most specific;
        # ties keep insertion order
        best_key: str | None = None
        for key in self._by_key:
            if key in prompt and (best_key is None or len(key) > len(best_key)):
                best_key = key
        if best_key is not None:
            return self._by_key[best_key]
        raise LLMError(
            f"ScriptedClient has no response for prompt starting "
            f"{prompt[:80]!r}"
        )
