"""Real concurrent LLM dispatch (the paper's Section 4.3 / 6 future work).

"BlendSQL ... plans to support parallelized LLM calls in the future to
further minimize query latency."  :mod:`repro.llm.batching` *models* that
speedup analytically; this module makes it real:

- :class:`ParallelDispatcher` fans a list of prompts out over a
  ``ThreadPoolExecutor`` worker pool, returning results in prompt order
  with per-call error capture, so one failing batch cannot abort its
  siblings.  Duplicate prompts within a dispatch are issued upstream
  once (single-flight at the batch level; :class:`~repro.llm.cache.
  CachingClient` provides the cross-thread equivalent).
- :class:`SimulatedClock` + :class:`SimulatedLatencyClient` measure the
  makespan of the *real* scheduler under a virtual worker pool without
  sleeping any real time, which keeps latency benches deterministic and
  fast while still exercising the actual dispatch path.
- :class:`DelayedClient` injects a real per-call delay, for wall-clock
  speedup benches.

Every client here is a :class:`~repro.llm.client.ChatClient` decorator,
so the pipelines stay oblivious to which stack they are driving.
"""

from __future__ import annotations

import heapq
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.errors import (
    DeadlineExceededError,
    LLMError,
    RetryBudgetExceededError,
    TransientLLMError,
)
from repro.llm.batching import LatencyModel
from repro.llm.client import ChatClient, ChatResponse
from repro.llm.usage import Usage
from repro.obs import NULL_PROVENANCE, NULL_TELEMETRY, Telemetry
from repro.obs.trace import NULL_SPAN


@dataclass(frozen=True)
class DispatchOutcome:
    """One dispatched call: either a response or a captured error."""

    response: Optional[ChatResponse] = None
    error: Optional[LLMError] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def text(self) -> Optional[str]:
        return self.response.text if self.response is not None else None

    @property
    def retryable(self) -> bool:
        """True when the error is transient — a later re-dispatch may succeed."""
        return isinstance(self.error, TransientLLMError)

    @property
    def degradable(self) -> bool:
        """True when the error is an *expected* resilience outcome.

        Transient errors, exhausted retry budgets, and expired deadlines
        are the failures a fault-tolerant pipeline degrades on (NULL
        rows); any other :class:`LLMError` — a misconfigured test
        double, a bad request — indicates a bug and should abort instead.
        """
        return isinstance(
            self.error,
            (TransientLLMError, RetryBudgetExceededError, DeadlineExceededError),
        )


class ParallelDispatcher:
    """Fans prompts out over a worker pool, deterministically.

    Guarantees, regardless of worker count or interleaving:

    - results come back in prompt order;
    - duplicate prompts reach the client once, the copies receiving the
      same completion at zero token cost (mirroring a cache hit);
    - with ``capture_errors=True`` an :class:`LLMError` in one call is
      captured into its :class:`DispatchOutcome` instead of aborting the
      dispatch; with ``capture_errors=False`` the first failing prompt
      (in prompt order) re-raises after all calls settle; with
      ``capture_errors="transient"`` only *degradable* failures
      (transient errors and exhausted retry budgets — see
      :attr:`DispatchOutcome.degradable`) are captured, while unexpected
      :class:`LLMError`\\ s still re-raise.

    ``workers=1`` runs inline on the calling thread — no pool, identical
    semantics — which is what makes worker-count sweeps byte-comparable.
    """

    def __init__(
        self,
        workers: int = 1,
        *,
        telemetry: Optional[Telemetry] = None,
        provenance=None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._tel = telemetry if telemetry is not None else NULL_TELEMETRY
        self._prov = provenance if provenance is not None else NULL_PROVENANCE
        metrics = self._tel.metrics
        self._m_dispatches = metrics.counter("dispatch.dispatches")
        self._m_calls = metrics.counter("dispatch.calls")
        self._m_errors = metrics.counter("dispatch.errors")
        self._m_dedup = metrics.counter("dispatch.dedup_followers")
        self._g_queue = metrics.gauge("dispatch.queue_depth")
        self._g_inflight = metrics.gauge("dispatch.in_flight")

    def dispatch(
        self,
        client: ChatClient,
        prompts: Sequence[str],
        *,
        labels: Union[str, Sequence[str]] = "",
        capture_errors: Union[bool, str] = True,
        deadline=None,
    ) -> list[DispatchOutcome]:
        """Complete every prompt; outcomes are returned in prompt order.

        ``deadline`` is an optional :class:`~repro.llm.resilience.
        Deadline` bounding the *whole fan-out*: a call whose turn comes
        after the deadline expired is never dispatched — it is skipped
        with a typed :class:`~repro.errors.DeadlineExceededError`
        outcome (degradable, so pipelines turn it into NULLs) instead
        of being sent upstream.
        """
        if isinstance(labels, str):
            label_list = [labels] * len(prompts)
        else:
            label_list = list(labels)
            if len(label_list) != len(prompts):
                raise ValueError(
                    f"got {len(label_list)} labels for {len(prompts)} prompts"
                )
        # single-flight within the dispatch: issue each unique prompt once
        unique: list[tuple[str, str]] = []
        first_index: dict[str, int] = {}
        for index, prompt in enumerate(prompts):
            if prompt not in first_index:
                first_index[prompt] = len(unique)
                unique.append((prompt, label_list[index]))
        tel = self._tel
        if self._prov.enabled:
            # every *requested* call gets a record (duplicates bump the
            # dispatch counter of the shared prompt's record)
            for index, prompt in enumerate(prompts):
                self._prov.record_call(prompt, label=label_list[index])
        self._m_dispatches.inc()
        self._m_dedup.inc(len(prompts) - len(unique))
        self._g_queue.set(len(unique))
        with (
            tel.tracer.span(
                "dispatch",
                prompts=len(prompts),
                unique=len(unique),
                workers=self.workers,
            )
            if tel.enabled
            else NULL_SPAN
        ) as dispatch_span:
            parent = dispatch_span if tel.enabled else None
            if (
                not tel.enabled
                and len(unique) > 1
                and getattr(client, "prefers_batch_dispatch", False)
            ):
                # process-level dispatch: the client completes the whole
                # unique-prompt list in chunked worker submissions (see
                # repro.llm.procpool); per-call spans need threads, so
                # traced runs keep the per-call path
                primary = self._call_batched(client, unique, deadline)
            elif self.workers == 1 or len(unique) <= 1:
                primary = [
                    self._call(client, p, label, parent, deadline)
                    for p, label in unique
                ]
            else:
                with ThreadPoolExecutor(
                    max_workers=min(self.workers, len(unique))
                ) as pool:
                    futures = [
                        pool.submit(self._call, client, p, label, parent, deadline)
                        for p, label in unique
                    ]
                    primary = [future.result() for future in futures]
        self._g_queue.set(0)
        outcomes: list[DispatchOutcome] = []
        seen: set[str] = set()
        for prompt in prompts:
            outcome = primary[first_index[prompt]]
            if prompt in seen and outcome.ok:
                # a duplicate shares the leader's completion for free
                outcome = DispatchOutcome(
                    response=ChatResponse(outcome.response.text, Usage())
                )
            seen.add(prompt)
            outcomes.append(outcome)
        if capture_errors is not True:
            if capture_errors not in (False, "transient"):
                raise ValueError(
                    f"capture_errors must be True, False, or 'transient', "
                    f"got {capture_errors!r}"
                )
            for outcome in outcomes:
                if outcome.error is None:
                    continue
                if capture_errors == "transient" and outcome.degradable:
                    continue
                raise outcome.error
        return outcomes

    def _call_batched(
        self, client: ChatClient, unique: Sequence[tuple[str, str]], deadline=None
    ) -> list[DispatchOutcome]:
        """Complete the unique-prompt list via ``client.complete_many``.

        Error granularity is the batch: a failure inside the batched
        client (e.g. a broken process pool, an expired deadline) fails
        every prompt of this dispatch with the same captured error — the
        per-prompt outcome shape downstream degradation expects.
        """
        prompts = [prompt for prompt, _ in unique]
        labels = [label for _, label in unique]
        prov = self._prov
        try:
            if deadline is not None:
                responses = client.complete_many(prompts, labels, deadline=deadline)
            else:
                responses = client.complete_many(prompts, labels)
        except LLMError as exc:
            if prov.enabled:
                for prompt in prompts:
                    prov.record_failure(prompt, type(exc).__name__)
            return [DispatchOutcome(error=exc) for _ in unique]
        outcomes = []
        for prompt, response in zip(prompts, responses):
            if prov.enabled:
                prov.record_outcome(prompt, usage=response.usage)
            outcomes.append(DispatchOutcome(response=response))
        return outcomes

    def _call(
        self,
        client: ChatClient,
        prompt: str,
        label: str,
        parent=None,
        deadline=None,
    ) -> DispatchOutcome:
        tel = self._tel
        prov = self._prov
        if deadline is not None and deadline.expired:
            # expired work is skipped, not dispatched: the prompt never
            # reaches the client, and the typed outcome is degradable
            error = DeadlineExceededError(
                f"deadline expired before dispatch of {label or 'llm call'}"
            )
            if prov.enabled:
                prov.record_failure(prompt, type(error).__name__)
            self._m_errors.inc()
            return DispatchOutcome(error=error)
        if not tel.enabled:
            try:
                response = client.complete(prompt, label=label)
            except LLMError as exc:
                if prov.enabled:
                    prov.record_failure(prompt, type(exc).__name__)
                return DispatchOutcome(error=exc)
            if prov.enabled:
                prov.record_outcome(prompt, usage=response.usage)
            return DispatchOutcome(response=response)
        # enabled path: the call span is parented under the dispatch span
        # explicitly, because worker threads have their own span stacks
        self._m_calls.inc()
        self._g_queue.dec()
        self._g_inflight.inc()
        try:
            with tel.tracer.span("llm:call", parent=parent, label=label) as span:
                try:
                    response = client.complete(prompt, label=label)
                except LLMError as exc:
                    span.set("error", type(exc).__name__)
                    self._m_errors.inc()
                    if prov.enabled:
                        prov.record_failure(prompt, type(exc).__name__)
                    return DispatchOutcome(error=exc)
                if prov.enabled:
                    prov.record_outcome(prompt, usage=response.usage)
                usage = response.usage
                span.set("cached", usage.calls == 0)
                span.set("input_tokens", usage.input_tokens)
                span.set("output_tokens", usage.output_tokens)
                if label:
                    metrics = tel.metrics
                    metrics.counter("llm.tokens.input", stage=label).inc(
                        usage.input_tokens
                    )
                    metrics.counter("llm.tokens.output", stage=label).inc(
                        usage.output_tokens
                    )
                    metrics.counter("llm.calls", stage=label).inc(usage.calls)
                return DispatchOutcome(response=response)
        finally:
            self._g_inflight.dec()


class SimulatedClock:
    """Virtual time for a pool of ``workers`` concurrent connections.

    Each :meth:`advance` assigns one call of the given duration to the
    least-loaded virtual worker — exactly when that worker would be free
    were the latency real — so :meth:`makespan` is the finish time of a
    list schedule in true arrival order, with zero real sleeping.  The
    real dispatcher supplies the arrival order; the clock supplies the
    workers.  Thread-safe.
    """

    def __init__(self, workers: int = 1) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._loads = [0.0] * workers
        self._calls = 0
        self._lock = threading.Lock()

    def advance(self, seconds: float) -> float:
        """Schedule one call; returns its virtual completion time."""
        if seconds < 0:
            raise ValueError(f"cannot advance by {seconds} seconds")
        with self._lock:
            start = heapq.heappop(self._loads)
            finish = start + seconds
            heapq.heappush(self._loads, finish)
            self._calls += 1
            return finish

    def makespan(self) -> float:
        """Virtual wall-clock time at which the last worker finishes."""
        with self._lock:
            return max(self._loads)

    # -- Clock protocol (repro.llm.resilience) ------------------------------------

    def now(self) -> float:
        """The current virtual time (the makespan so far)."""
        return self.makespan()

    def sleep(self, seconds: float) -> None:
        """Wait virtually: advances the clock, sleeps zero real time.

        This is what lets :class:`~repro.llm.resilience.RetryingClient`
        run full backoff schedules inside tests instantly — the schedule
        is recorded on the virtual timeline instead of being slept.
        """
        self.advance(seconds)

    @property
    def calls(self) -> int:
        with self._lock:
            return self._calls

    def reset(self) -> None:
        with self._lock:
            self._loads = [0.0] * self.workers
            self._calls = 0


class SimulatedLatencyClient:
    """A ChatClient decorator that advances a :class:`SimulatedClock`.

    Every *paid* call (``usage.calls > 0``; cache hits are free in time
    as in tokens) advances the clock by the :class:`LatencyModel` latency
    of its token sizes.  No real time passes.
    """

    def __init__(
        self,
        inner: ChatClient,
        clock: SimulatedClock,
        model: Optional[LatencyModel] = None,
    ) -> None:
        self.inner = inner
        self.clock = clock
        self.latency_model = model if model is not None else LatencyModel()
        self.model_name = inner.model_name

    def complete(self, prompt: str, *, label: str = "") -> ChatResponse:
        response = self.inner.complete(prompt, label=label)
        if response.usage.calls:
            self.clock.advance(
                self.latency_model.call_latency(
                    response.usage.input_tokens, response.usage.output_tokens
                )
            )
        return response


class DelayedClient:
    """A ChatClient decorator that sleeps a real delay per call.

    Stands in for network + generation latency in wall-clock benches;
    ``upstream_calls`` counts how many calls actually slept.
    """

    def __init__(self, inner: ChatClient, delay_seconds: float) -> None:
        if delay_seconds < 0:
            raise ValueError(f"delay must be >= 0, got {delay_seconds}")
        self.inner = inner
        self.delay_seconds = delay_seconds
        self.model_name = inner.model_name
        self.upstream_calls = 0
        self._lock = threading.Lock()

    def complete(self, prompt: str, *, label: str = "") -> ChatResponse:
        time.sleep(self.delay_seconds)
        with self._lock:
            self.upstream_calls += 1
        return self.inner.complete(prompt, label=label)
