"""Prompt-keyed completion caching (the BlendSQL caching model).

Section 5.5 of the paper: BlendSQL "caches LLM-generated content as a
mapping from input prompts to LLM output answers", which makes reuse
brittle — two prompts with the same meaning but different text miss.
:class:`PromptCache` implements exactly that mapping, and
:class:`CachingClient` wraps any :class:`~repro.llm.client.ChatClient`
with it.  Hit/miss statistics feed the caching ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.llm.client import ChatClient, ChatResponse
from repro.llm.usage import Usage


@dataclass
class PromptCache:
    """An exact-match prompt → completion cache with statistics."""

    entries: dict[str, str] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0

    def get(self, prompt: str) -> str | None:
        if prompt in self.entries:
            self.hits += 1
            return self.entries[prompt]
        self.misses += 1
        return None

    def put(self, prompt: str, completion: str) -> None:
        self.entries[prompt] = completion

    def __len__(self) -> int:
        return len(self.entries)

    def clear(self) -> None:
        self.entries.clear()
        self.hits = 0
        self.misses = 0

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class CachingClient:
    """A ChatClient decorator that short-circuits repeated prompts.

    Cache hits cost zero tokens (nothing reaches the model), which is how
    the paper accounts for reuse.
    """

    def __init__(self, inner: ChatClient, cache: PromptCache | None = None) -> None:
        self.inner = inner
        # `cache or PromptCache()` would discard an *empty* shared cache
        # (PromptCache defines __len__), so compare against None explicitly.
        self.cache = cache if cache is not None else PromptCache()
        self.model_name = inner.model_name

    def complete(self, prompt: str, *, label: str = "") -> ChatResponse:
        """Serve from cache when possible; otherwise call through and store."""
        cached = self.cache.get(prompt)
        if cached is not None:
            return ChatResponse(cached, Usage())
        response = self.inner.complete(prompt, label=label)
        self.cache.put(prompt, response.text)
        return response
