"""Prompt-keyed completion caching (the BlendSQL caching model).

Section 5.5 of the paper: BlendSQL "caches LLM-generated content as a
mapping from input prompts to LLM output answers", which makes reuse
brittle — two prompts with the same meaning but different text miss.
:class:`PromptCache` implements exactly that mapping, and
:class:`CachingClient` wraps any :class:`~repro.llm.client.ChatClient`
with it.  Hit/miss statistics feed the caching ablation bench.

Both are thread-safe, and :class:`CachingClient` adds **single-flight
deduplication**: when several workers miss on the same prompt at once,
one of them (the *leader*) performs the upstream call while the others
wait and reuse its completion at zero token cost — exactly one upstream
call per unique prompt, no matter how many threads race past the cache.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.llm.client import ChatClient, ChatResponse
from repro.llm.usage import Usage
from repro.obs import NULL_PROVENANCE, NULL_TELEMETRY, Telemetry
from repro.obs.provenance import TIER_MEMORY
from repro.obs.trace import NULL_SPAN


@dataclass
class PromptCache:
    """An exact-match prompt → completion cache with statistics.

    Safe for concurrent use: every lookup, store, and statistics read
    happens under one internal lock.
    """

    entries: dict[str, str] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )

    def get(self, prompt: str) -> str | None:
        with self._lock:
            if prompt in self.entries:
                self.hits += 1
                return self.entries[prompt]
            self.misses += 1
            return None

    def put(self, prompt: str, completion: str) -> None:
        with self._lock:
            self.entries[prompt] = completion

    def peek(self, prompt: str) -> str | None:
        """A statistics-free lookup: the entry if present, else None.

        Used by the cross-request batcher to decide whether a prompt
        still needs dispatching without distorting the hit/miss counts
        real completions produce.
        """
        with self._lock:
            return self.entries.get(prompt)

    def count_hit(self) -> None:
        """Count a reuse that bypassed :meth:`get` (a single-flight join)."""
        with self._lock:
            self.hits += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self.entries)

    def clear(self) -> None:
        with self._lock:
            self.entries.clear()
            self.hits = 0
            self.misses = 0

    def hit_rate(self) -> float:
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0


class _Flight:
    """One in-progress upstream call that followers can wait on."""

    __slots__ = ("event", "response", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.response: ChatResponse | None = None
        self.error: BaseException | None = None


class CachingClient:
    """A ChatClient decorator that short-circuits repeated prompts.

    Cache hits cost zero tokens (nothing reaches the model), which is how
    the paper accounts for reuse.  Under concurrency, an in-flight prompt
    is *joined* rather than re-sent (single-flight): followers block
    until the leader's completion lands, then reuse it for free.  A
    join counts as a cache hit — the same accounting a sequential run
    would produce — so hit/miss totals are worker-count independent.

    A leader that *fails* must not poison its followers: each follower
    re-enters the loop instead of inheriting the leader's exception, so
    it either finds a by-then-populated cache, joins a newer flight, or
    becomes the new leader and gets its own upstream attempt (with its
    own retry budget, when the inner client retries).  Only a thread's
    *own* upstream failure ever propagates out of :meth:`complete`.
    """

    def __init__(
        self,
        inner: ChatClient,
        cache: PromptCache | None = None,
        *,
        telemetry: Telemetry | None = None,
        provenance=None,
    ) -> None:
        self.inner = inner
        # `cache or PromptCache()` would discard an *empty* shared cache
        # (PromptCache defines __len__), so compare against None explicitly.
        self.cache = cache if cache is not None else PromptCache()
        self.model_name = inner.model_name
        # batch dispatch is only worth advertising when the inner client
        # actually completes batches out-of-thread (e.g. ProcPoolClient)
        self.prefers_batch_dispatch = bool(
            getattr(inner, "prefers_batch_dispatch", False)
        )
        self._lock = threading.Lock()
        self._flights: dict[str, _Flight] = {}
        #: how many calls joined another thread's in-flight request
        self.single_flight_waits = 0
        self._tel = telemetry if telemetry is not None else NULL_TELEMETRY
        self._prov = provenance if provenance is not None else NULL_PROVENANCE
        metrics = self._tel.metrics
        self._m_hits = metrics.counter("llm.cache.hits")
        self._m_misses = metrics.counter("llm.cache.misses")
        self._m_joins = metrics.counter("llm.cache.single_flight_joins")

    def complete(self, prompt: str, *, label: str = "") -> ChatResponse:
        """Serve from cache when possible; otherwise call through and store."""
        if not self._tel.enabled:
            return self._complete(prompt, label, NULL_SPAN)
        with self._tel.tracer.span("llm:cache", label=label) as span:
            return self._complete(prompt, label, span)

    def _complete(self, prompt: str, label: str, span) -> ChatResponse:
        while True:
            with self._lock:
                flight = self._flights.get(prompt)
                if flight is None:
                    cached = self.cache.get(prompt)
                    if cached is not None:
                        self._m_hits.inc()
                        if self._prov.enabled:
                            self._prov.record_tier(prompt, TIER_MEMORY)
                        span.set("outcome", "hit")
                        return ChatResponse(cached, Usage())
                    flight = _Flight()
                    self._flights[prompt] = flight
                    leader = True
                else:
                    leader = False
            if leader:
                self._m_misses.inc()
                span.set("outcome", "miss")
                return self._lead(flight, prompt, label)
            flight.event.wait()
            if flight.error is not None:
                # the leader failed; re-attempt rather than inherit its
                # exception (the flight entry is already gone, so this
                # thread will lead — or join a newer, healthier flight)
                continue
            assert flight.response is not None
            with self._lock:
                self.cache.count_hit()
                self.single_flight_waits += 1
            self._m_hits.inc()
            self._m_joins.inc()
            if self._prov.enabled:
                # a single-flight join is a memory-tier reuse: the
                # follower never reached the model
                self._prov.record_tier(prompt, TIER_MEMORY)
            span.set("outcome", "join")
            return ChatResponse(flight.response.text, Usage())

    def complete_many(self, prompts, labels, *, deadline=None) -> list[ChatResponse]:
        """Batched :meth:`complete` for batch-dispatching inner clients.

        Expects ``prompts`` already deduplicated (the dispatcher's
        single-flight guarantees it), so hit/miss accounting per unique
        prompt is identical to the per-call path: one :meth:`PromptCache.
        get` each, one upstream completion per miss, every miss stored.
        ``deadline`` passes through to the inner batch client — cache
        hits are served regardless (they cost no upstream time).
        """
        responses: list[ChatResponse | None] = [None] * len(prompts)
        missing_indexes: list[int] = []
        for index, prompt in enumerate(prompts):
            cached = self.cache.get(prompt)
            if cached is not None:
                self._m_hits.inc()
                if self._prov.enabled:
                    self._prov.record_tier(prompt, TIER_MEMORY)
                responses[index] = ChatResponse(cached, Usage())
            else:
                self._m_misses.inc()
                missing_indexes.append(index)
        if missing_indexes:
            missing_prompts = [prompts[i] for i in missing_indexes]
            missing_labels = [labels[i] for i in missing_indexes]
            if deadline is not None:
                fresh = self.inner.complete_many(
                    missing_prompts, missing_labels, deadline=deadline
                )
            else:
                fresh = self.inner.complete_many(missing_prompts, missing_labels)
            for index, response in zip(missing_indexes, fresh):
                self.cache.put(prompts[index], response.text)
                responses[index] = response
        return responses  # type: ignore[return-value]

    def _lead(self, flight: _Flight, prompt: str, label: str) -> ChatResponse:
        """Perform the upstream call on behalf of every waiter."""
        try:
            response = self.inner.complete(prompt, label=label)
        except BaseException as exc:
            flight.error = exc
            with self._lock:
                del self._flights[prompt]
            flight.event.set()
            raise
        flight.response = response
        self.cache.put(prompt, response.text)
        with self._lock:
            del self._flights[prompt]
        flight.event.set()
        return response
