"""Resilient LLM dispatch: retries, backoff, circuit breaking, deadlines.

The paper's pipelines assume every LLM call returns; production traffic
does not.  This module is the layer between the pipelines and that
reality:

- :class:`RetryPolicy` + :class:`RetryingClient` — exponential backoff
  with *deterministic* jitter (a pure function of ``(seed, prompt,
  attempt)``, no RNG stream) and a bounded attempt budget.  Transient
  errors (:class:`~repro.errors.TransientLLMError` and subclasses) are
  retried, honouring ``retry_after`` hints; anything else propagates
  immediately.  When the budget is spent the last transient error is
  wrapped in :class:`~repro.errors.RetryBudgetExceededError` — fatal to
  callers, so degradation decisions happen exactly once.
- :class:`CircuitBreaker` — per-model closed/open/half-open breaker with
  a clock-driven cooldown: after ``failure_threshold`` consecutive
  failures it fails fast (:class:`~repro.errors.CircuitOpenError`,
  ``retry_after`` = remaining cooldown) instead of hammering a dying
  upstream, then recovers through a limited number of half-open probes.
- :class:`Deadline` — a wall-clock budget for one logical call: retrying
  stops early when the next backoff would overrun it.
- :class:`ResilienceReport` — thread-safe counters for every attempt,
  retry, exhaustion, breaker trip, and degraded row, with the invariant
  ``attempts == successes + retries + exhausted`` checkable at any time.

Every time source goes through the :class:`Clock` protocol.  Production
uses :class:`MonotonicClock` (real ``time.sleep``); tests use
:class:`~repro.llm.parallel.SimulatedClock`, whose ``sleep`` advances
virtual time — full backoff schedules are asserted against timestamps
without sleeping a single real millisecond.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Optional, Protocol, runtime_checkable

from repro.errors import (
    CircuitOpenError,
    LLMError,
    RetryBudgetExceededError,
    TransientLLMError,
)
from repro.llm.client import ChatClient, ChatResponse
from repro.llm.oracle import stable_uniform
from repro.obs import NULL_PROVENANCE, NULL_TELEMETRY, Telemetry
from repro.obs.trace import NULL_SPAN


@runtime_checkable
class Clock(Protocol):
    """A time source the resilience layer can both read and wait on."""

    def now(self) -> float:
        """Monotonic seconds since an arbitrary origin."""
        ...  # pragma: no cover - protocol

    def sleep(self, seconds: float) -> None:
        """Block (really or virtually) for ``seconds``."""
        ...  # pragma: no cover - protocol


class MonotonicClock:
    """Real time: ``now`` is ``time.monotonic``, ``sleep`` really sleeps."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff schedule for transient failures.

    The delay before retrying attempt ``n`` (1-based) is::

        min(max_delay, base_delay * multiplier ** (n - 1))

    stretched by a deterministic jitter factor in ``[1 - jitter,
    1 + jitter]`` drawn from ``(seed, prompt, n)``, then raised to any
    ``retry_after`` hint the error carried.  Determinism makes schedules
    assertable in tests and identical across runs and worker counts.
    """

    max_attempts: int = 4
    base_delay: float = 0.5
    multiplier: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")

    def delay_for(
        self, prompt: str, attempt: int, *, retry_after: Optional[float] = None
    ) -> float:
        """Seconds to wait after failed attempt ``attempt`` of ``prompt``."""
        delay = min(self.max_delay, self.base_delay * self.multiplier ** (attempt - 1))
        if self.jitter:
            draw = stable_uniform("backoff", self.seed, prompt, attempt)
            delay *= 1.0 + self.jitter * (2.0 * draw - 1.0)
        if retry_after is not None:
            delay = max(delay, retry_after)
        return delay


class Deadline:
    """A budget of seconds for one logical call, measured on a clock."""

    def __init__(self, seconds: float, clock: Clock) -> None:
        if seconds <= 0:
            raise ValueError(f"deadline must be > 0 seconds, got {seconds}")
        self.seconds = seconds
        self.clock = clock
        self._start = clock.now()

    def remaining(self) -> float:
        return max(0.0, self.seconds - (self.clock.now() - self._start))

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0


@dataclass
class ResilienceReport:
    """Thread-safe attempt accounting for one run.

    Every upstream attempt ends in exactly one of four ways — success,
    retry (transient failure, will be re-attempted), exhaustion
    (transient failure, budget spent), or fatal (a non-transient error
    that retrying cannot help) — so ``attempts == successes + retries +
    exhausted + fatal`` always holds; :meth:`is_accounted` checks it.
    Breaker short-circuits happen *instead of* an attempt and are counted
    separately, as are the rows and batches the pipelines degraded to
    NULLs.
    """

    attempts: int = 0
    successes: int = 0
    retries: int = 0
    exhausted: int = 0
    fatal: int = 0
    short_circuits: int = 0
    breaker_trips: int = 0
    degraded_batches: int = 0
    degraded_rows: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )

    def record_attempt(self) -> None:
        with self._lock:
            self.attempts += 1

    def record_success(self) -> None:
        with self._lock:
            self.successes += 1

    def record_retry(self) -> None:
        with self._lock:
            self.retries += 1

    def record_exhausted(self) -> None:
        with self._lock:
            self.exhausted += 1

    def record_fatal(self) -> None:
        with self._lock:
            self.fatal += 1

    def record_short_circuit(self) -> None:
        with self._lock:
            self.short_circuits += 1

    def record_trip(self) -> None:
        with self._lock:
            self.breaker_trips += 1

    def record_degraded(self, rows: int, *, batches: int = 1) -> None:
        with self._lock:
            self.degraded_batches += batches
            self.degraded_rows += rows

    def is_accounted(self) -> bool:
        with self._lock:
            return self.attempts == (
                self.successes + self.retries + self.exhausted + self.fatal
            )

    def as_dict(self) -> dict[str, int]:
        with self._lock:
            return {
                "attempts": self.attempts,
                "successes": self.successes,
                "retries": self.retries,
                "exhausted": self.exhausted,
                "fatal": self.fatal,
                "short_circuits": self.short_circuits,
                "breaker_trips": self.breaker_trips,
                "degraded_batches": self.degraded_batches,
                "degraded_rows": self.degraded_rows,
            }


class CircuitBreaker:
    """A closed/open/half-open breaker for one upstream model.

    - **closed**: calls flow; ``failure_threshold`` *consecutive*
      failures trip it open.
    - **open**: :meth:`before_call` fails fast with
      :class:`~repro.errors.CircuitOpenError` until ``cooldown`` seconds
      have passed on the clock, then the breaker half-opens.
    - **half-open**: up to ``half_open_probes`` in-flight probes are let
      through; a probe success closes the breaker, a probe failure
      re-opens it for another cooldown.

    Thread-safe; share one instance per upstream model.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    #: numeric encoding for the state gauge (closed < half-open < open)
    _STATE_VALUES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}

    def __init__(
        self,
        *,
        failure_threshold: int = 5,
        cooldown: float = 30.0,
        half_open_probes: int = 1,
        clock: Optional[Clock] = None,
        report: Optional[ResilienceReport] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown <= 0:
            raise ValueError(f"cooldown must be > 0, got {cooldown}")
        if half_open_probes < 1:
            raise ValueError(
                f"half_open_probes must be >= 1, got {half_open_probes}"
            )
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.half_open_probes = half_open_probes
        self.clock = clock if clock is not None else MonotonicClock()
        self.report = report
        self.trips = 0
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes = 0
        self._lock = threading.Lock()
        self._tel = telemetry if telemetry is not None else NULL_TELEMETRY
        self._m_state = self._tel.metrics.gauge("llm.breaker.state")
        self._m_trips = self._tel.metrics.counter("llm.breaker.trips")

    def _transition(self, old: str, new: str) -> None:
        # caller holds the lock; metric/timeseries/flight locks are
        # leaves, so nesting is safe
        self._state = new
        self._m_state.set(self._STATE_VALUES[new])
        if self._tel.enabled:
            self._tel.metrics.counter(
                "llm.breaker.transitions", from_state=old, to_state=new
            ).inc()
            now = self.clock.now()
            if self._tel.timeseries.enabled:
                self._tel.timeseries.record(
                    "llm.breaker.transitions", now,
                    from_state=old, to_state=new,
                )
            self._tel.flight.record(
                now, "breaker", from_state=old, to_state=new
            )

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _maybe_half_open(self) -> None:
        # caller holds the lock
        if (
            self._state == self.OPEN
            and self.clock.now() - self._opened_at >= self.cooldown
        ):
            self._transition(self.OPEN, self.HALF_OPEN)
            self._probes = 0

    def before_call(self) -> None:
        """Raise :class:`CircuitOpenError` unless a call may proceed."""
        with self._lock:
            self._maybe_half_open()
            if self._state == self.OPEN:
                remaining = self.cooldown - (self.clock.now() - self._opened_at)
                raise CircuitOpenError(
                    "circuit breaker is open", retry_after=max(remaining, 0.0)
                )
            if self._state == self.HALF_OPEN:
                if self._probes >= self.half_open_probes:
                    raise CircuitOpenError(
                        "circuit breaker is half-open and fully probed"
                    )
                self._probes += 1

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            if self._state == self.HALF_OPEN:
                self._transition(self.HALF_OPEN, self.CLOSED)
                self._probes = 0

    def record_failure(self) -> None:
        with self._lock:
            if self._state == self.HALF_OPEN:
                self._trip()
                return
            self._consecutive_failures += 1
            if (
                self._state == self.CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._trip()

    def _trip(self) -> None:
        # caller holds the lock
        self._transition(self._state, self.OPEN)
        self._opened_at = self.clock.now()
        self._consecutive_failures = 0
        self._probes = 0
        self.trips += 1
        self._m_trips.inc()
        if self.report is not None:
            self.report.record_trip()


class RetryingClient:
    """A ChatClient decorator that retries transient failures.

    Wrap it *under* the caching layer (cache → retrying → faulty/real
    model): cache hits then never pay retry latency, and every upstream
    miss gets the full budget.  With an attached :class:`CircuitBreaker`,
    calls check the breaker before each attempt and feed it every
    outcome; with ``deadline_seconds``, retrying stops early when the
    next backoff would overrun the budget.  All waiting goes through the
    clock, so tests drive it in virtual time.
    """

    def __init__(
        self,
        inner: ChatClient,
        policy: Optional[RetryPolicy] = None,
        *,
        clock: Optional[Clock] = None,
        breaker: Optional[CircuitBreaker] = None,
        deadline_seconds: Optional[float] = None,
        report: Optional[ResilienceReport] = None,
        telemetry: Optional[Telemetry] = None,
        provenance=None,
    ) -> None:
        self.inner = inner
        self.policy = policy if policy is not None else RetryPolicy()
        self.clock = clock if clock is not None else MonotonicClock()
        self.breaker = breaker
        self.deadline_seconds = deadline_seconds
        self.report = report if report is not None else ResilienceReport()
        self.model_name = inner.model_name
        self._tel = telemetry if telemetry is not None else NULL_TELEMETRY
        self._prov = provenance if provenance is not None else NULL_PROVENANCE
        metrics = self._tel.metrics
        self._m_attempts = metrics.counter("llm.retry.attempts")
        self._m_successes = metrics.counter("llm.retry.successes")
        self._m_retries = metrics.counter("llm.retry.retries")
        self._m_exhausted = metrics.counter("llm.retry.exhausted")
        self._m_fatal = metrics.counter("llm.retry.fatal")
        self._m_short = metrics.counter("llm.retry.short_circuits")
        self._m_backoff_total = metrics.counter("llm.retry.backoff_seconds_total")
        self._m_backoff = metrics.histogram("llm.retry.backoff_seconds")

    def complete(self, prompt: str, *, label: str = "") -> ChatResponse:
        """Complete with retries; every attempt lands in the report."""
        deadline = (
            Deadline(self.deadline_seconds, self.clock)
            if self.deadline_seconds is not None
            else None
        )
        tel = self._tel
        attempt = 0
        while True:
            attempt += 1
            delay: Optional[float] = None
            with (
                tel.tracer.span("llm:attempt", attempt=attempt, label=label)
                if tel.enabled
                else NULL_SPAN
            ) as span:
                if self.breaker is not None:
                    try:
                        self.breaker.before_call()
                    except CircuitOpenError:
                        self.report.record_short_circuit()
                        self._m_short.inc()
                        span.set("outcome", "short_circuit")
                        raise
                self.report.record_attempt()
                self._m_attempts.inc()
                try:
                    response = self.inner.complete(prompt, label=label)
                except TransientLLMError as exc:
                    if self.breaker is not None:
                        self.breaker.record_failure()
                    if attempt >= self.policy.max_attempts:
                        self.report.record_exhausted()
                        self._m_exhausted.inc()
                        span.set("outcome", "exhausted")
                        raise RetryBudgetExceededError(
                            f"gave up after {attempt} attempts: {exc}",
                            attempts=attempt,
                        ) from exc
                    delay = self.policy.delay_for(
                        prompt, attempt, retry_after=exc.retry_after
                    )
                    if deadline is not None and delay > deadline.remaining():
                        self.report.record_exhausted()
                        self._m_exhausted.inc()
                        span.set("outcome", "exhausted")
                        raise RetryBudgetExceededError(
                            f"deadline of {deadline.seconds:g}s would be overrun "
                            f"by a {delay:.3f}s backoff after {attempt} attempts: "
                            f"{exc}",
                            attempts=attempt,
                        ) from exc
                    if self._prov.enabled:
                        self._prov.record_retry(prompt, type(exc).__name__)
                    self.report.record_retry()
                    self._m_retries.inc()
                    self._m_backoff_total.inc(delay)
                    self._m_backoff.observe(delay)
                    if tel.timeseries.enabled:
                        now = self.clock.now()
                        tel.timeseries.record("llm.retries", now)
                        tel.timeseries.observe(
                            "llm.backoff_seconds", now, delay
                        )
                    span.set("outcome", "retry")
                    span.set("backoff_s", delay)
                except LLMError:
                    # not retryable (bad request, scripting miss, ...): the
                    # attempt still lands in the ledger, then propagates
                    self.report.record_fatal()
                    self._m_fatal.inc()
                    span.set("outcome", "fatal")
                    raise
                else:
                    if self.breaker is not None:
                        self.breaker.record_success()
                    self.report.record_success()
                    self._m_successes.inc()
                    span.set("outcome", "success")
                    return response
            # only the retry path reaches here: wait out the backoff in
            # its own span so the time is attributed, then re-attempt
            assert delay is not None
            if tel.enabled:
                with tel.tracer.span("llm:backoff", delay_s=delay):
                    self.clock.sleep(delay)
            else:
                self.clock.sleep(delay)
