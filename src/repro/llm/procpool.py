"""Process-level LLM dispatch for CPU-bound stages.

The thread-based :class:`~repro.llm.parallel.ParallelDispatcher` overlaps
*latency*, but the simulated model is pure Python — prompt parsing,
oracle lookups, and tokenization all hold the GIL, so at scale the
threads serialize.  :class:`ProcPoolClient` moves that CPU work into a
``ProcessPoolExecutor``: each worker process owns
:class:`~repro.llm.chat.MockChatModel` replicas (one per world it has
served, built lazily) and returns ``(text, input_tokens,
output_tokens)``; the parent re-records the tokens on the shared
:class:`~repro.llm.usage.UsageMeter`.

Byte-identity with the thread path follows from determinism: the model
is a pure function of ``(world, prompt)``, token counting is pure, and
``UsageMeter.record`` is commutative — so results, Usage totals, and
cache behaviour are identical whether a prompt was completed in-process
or in a worker.

Two pool ownership modes:

- **private** (the default): each :class:`ProcPoolClient` owns its own
  ``ProcessPoolExecutor``, started lazily and reaped by :meth:`close`.
- **shared**: a :class:`SharedProcessPool` owns one executor that many
  clients — one per database — submit into.  This is what lets
  ``db_workers`` compose with ``parallelism="processes"``: concurrent
  per-database runs share ``processes`` workers total instead of
  spawning ``db_workers × processes`` processes, and the long-lived
  query server serves every tenant from one warm pool.  Worker-side
  model replicas are keyed by ``(world, scale, model, optimize)``, so
  one worker can serve any database.

The client is dispatcher-agnostic: it plugs into the existing
``ParallelDispatcher`` (whose threads merely block on worker futures) so
ordering, provenance, and degradation semantics are untouched.  Worker
processes with the ``fork`` start method inherit the parent's
already-built worlds; a registry fallback rebuilds the world by name
otherwise.
"""

from __future__ import annotations

import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Optional, Sequence

from repro.errors import DeadlineExceededError, LLMError, TransientLLMError
from repro.llm.client import ChatResponse
from repro.llm.usage import UsageMeter
from repro.swan.base import World

__all__ = ["ProcPoolClient", "SharedProcessPool"]

#: Worlds registered by the parent before the pool forks, keyed by
#: ``(name, scale)``; fork-started workers see this populated and skip
#: the (expensive) rebuild in :func:`_worker_model`.
_WORLD_REGISTRY: dict[tuple[str, int], World] = {}

#: Per-worker-process model replicas, keyed by
#: ``(world_name, scale, model_name, optimize)`` and built lazily on the
#: first chunk that needs them — one worker serves any database.
_WORKER_MODELS: dict = {}


def _worker_model(world_name: str, scale: int, model_name: str, optimize: bool):
    """This worker process's model replica for one world, built lazily."""
    key = (world_name, scale, model_name, optimize)
    model = _WORKER_MODELS.get(key)
    if model is not None:
        return model
    from repro.llm.chat import MockChatModel
    from repro.llm.oracle import KnowledgeOracle
    from repro.llm.profiles import get_profile

    world = _WORLD_REGISTRY.get((world_name, scale))
    if world is None:
        from repro.swan.scale import scale_world
        from repro.swan.worlds import WORLD_BUILDERS

        world = scale_world(WORLD_BUILDERS[world_name](), scale)
        _WORLD_REGISTRY[(world_name, scale)] = world
    model = MockChatModel(
        KnowledgeOracle(world, optimize=optimize), get_profile(model_name),
        meter=UsageMeter(), optimize=optimize,
    )
    _WORKER_MODELS[key] = model
    return model


def _init_worker(world_name: str, scale: int, model_name: str, optimize: bool) -> None:
    """Pre-build one world's replica (private-pool workers warm up eagerly)."""
    _worker_model(world_name, scale, model_name, optimize)


def _complete_chunk_in_worker(
    model_key: tuple, prompts: Sequence[str], labels: Sequence[str]
) -> list[tuple[str, int, int]]:
    """Complete a whole chunk of prompts per IPC round trip.

    Per-prompt submission costs one pickle/unpickle/wakeup cycle each
    way; at bird scale tens of thousands of those dominate the win from
    parallelism.  Chunking amortizes the round trip over hundreds of
    prompts while each answer stays the same pure function of
    ``(world, prompt)``.
    """
    model = _worker_model(*model_key)
    out: list[tuple[str, int, int]] = []
    for prompt, label in zip(prompts, labels):
        response = model.complete(prompt, label=label)
        out.append(
            (response.text, response.usage.input_tokens, response.usage.output_tokens)
        )
    return out


class SharedProcessPool:
    """One ``ProcessPoolExecutor`` shared by many :class:`ProcPoolClient`\\ s.

    Create it once per run (or per server lifetime), hand
    :meth:`client_for` out per database, and :meth:`close` it after the
    last client finished.  Clients bound to a shared pool never shut it
    down themselves.
    """

    def __init__(self, processes: Optional[int] = None) -> None:
        self.processes = max(1, processes) if processes is not None else None
        self._pool: Optional[ProcessPoolExecutor] = None
        self._lock = threading.Lock()

    def executor(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(max_workers=self.processes)
            return self._pool

    def client_for(
        self,
        world: World,
        model_name: str,
        *,
        meter: Optional[UsageMeter] = None,
        optimize: bool = True,
    ) -> "ProcPoolClient":
        """A per-database client view submitting into this shared pool."""
        return ProcPoolClient(
            world, model_name, meter=meter, optimize=optimize, pool=self
        )

    def close(self) -> None:
        """Shut the pool down, reaping every worker process."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "SharedProcessPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ProcPoolClient:
    """A ChatClient that completes prompts in worker processes.

    Drop-in replacement for :class:`~repro.llm.chat.MockChatModel` in the
    harness runners: same ``model_name`` attribute (cache layers key on
    it) and the same per-call Usage accounting on ``meter``.  With
    ``pool=`` it submits into a :class:`SharedProcessPool` (and never
    closes it); without, it lazily owns a private pool.
    """

    #: tells the dispatcher to hand this client whole prompt lists
    #: (:meth:`complete_many`) instead of one call per worker thread
    prefers_batch_dispatch = True

    def __init__(
        self,
        world: World,
        model_name: str,
        *,
        processes: Optional[int] = None,
        meter: Optional[UsageMeter] = None,
        optimize: bool = True,
        pool: Optional[SharedProcessPool] = None,
    ) -> None:
        self.world = world
        self.model_name = model_name
        self.meter = meter or UsageMeter()
        self.processes = max(1, processes) if processes is not None else None
        self.optimize = optimize
        self.shared_pool = pool
        self._pool: Optional[ProcessPoolExecutor] = None
        self._lock = threading.Lock()
        _WORLD_REGISTRY[(world.name, world.scale)] = world

    @property
    def _model_key(self) -> tuple:
        return (self.world.name, self.world.scale, self.model_name, self.optimize)

    # -- pool lifecycle ------------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self.shared_pool is not None:
            return self.shared_pool.executor()
        with self._lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.processes,
                    initializer=_init_worker,
                    initargs=self._model_key,
                )
            return self._pool

    def close(self) -> None:
        """Shut a *private* pool down; a shared pool outlives its clients."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "ProcPoolClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- ChatClient ----------------------------------------------------------

    def complete(self, prompt: str, *, label: str = "") -> ChatResponse:
        """Complete one prompt in a worker process.

        Blocking here is intentional: concurrency comes from the calling
        dispatcher's threads, each of which parks on its own worker
        future, keeping dispatch order and retry semantics unchanged.
        """
        pool = self._ensure_pool()
        try:
            [(text, input_tokens, output_tokens)] = pool.submit(
                _complete_chunk_in_worker, self._model_key, [prompt], [label]
            ).result()
        except BrokenProcessPool as exc:
            # a worker died (OOM, kill, crash): reap the remaining
            # processes now so none are orphaned, then surface a
            # retryable error — the resilience layer decides what's next
            self.close()
            raise TransientLLMError(f"process pool broke: {exc}") from exc
        usage = self.meter.record(input_tokens, output_tokens, label)
        return ChatResponse(text, usage)

    def complete_many(
        self, prompts: Sequence[str], labels: Sequence[str], *, deadline=None
    ) -> list[ChatResponse]:
        """Complete a prompt list in chunked worker submissions.

        The batch-dispatch entry point: the dispatcher hands over its
        (already deduplicated) unique-prompt list, and the pool splits
        it into a few chunks per worker — balancing the tail without
        paying a round trip per prompt.  Responses come back in prompt
        order, each recorded on ``meter`` exactly as :meth:`complete`
        would have.

        ``deadline`` bounds submission: chunks whose turn comes after
        the deadline expired are never submitted — the whole batch
        fails with a typed :class:`~repro.errors.DeadlineExceededError`
        (batch granularity, matching the dispatcher's batched-path error
        contract) instead of queueing doomed work behind live traffic.
        """
        if len(prompts) != len(labels):
            raise LLMError(
                f"got {len(labels)} labels for {len(prompts)} prompts"
            )
        pool = self._ensure_pool()
        workers = pool._max_workers or 1
        chunk = max(1, -(-len(prompts) // (workers * 4)))
        futures = []
        for start in range(0, len(prompts), chunk):
            if deadline is not None and deadline.expired:
                for future in futures:
                    future.cancel()
                raise DeadlineExceededError(
                    f"deadline expired after submitting {len(futures)} of "
                    f"{-(-len(prompts) // chunk)} chunks; remaining work skipped"
                )
            futures.append(
                pool.submit(
                    _complete_chunk_in_worker,
                    self._model_key,
                    list(prompts[start : start + chunk]),
                    list(labels[start : start + chunk]),
                )
            )
        try:
            triples = [triple for future in futures for triple in future.result()]
        except BrokenProcessPool as exc:
            self.close()
            raise TransientLLMError(f"process pool broke: {exc}") from exc
        return [
            ChatResponse(text, self.meter.record(input_tokens, output_tokens, label))
            for (text, input_tokens, output_tokens), label in zip(triples, labels)
        ]
