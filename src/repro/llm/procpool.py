"""Process-level LLM dispatch for CPU-bound stages.

The thread-based :class:`~repro.llm.parallel.ParallelDispatcher` overlaps
*latency*, but the simulated model is pure Python — prompt parsing,
oracle lookups, and tokenization all hold the GIL, so at scale the
threads serialize.  :class:`ProcPoolClient` moves that CPU work into a
``ProcessPoolExecutor``: each worker process owns a full
:class:`~repro.llm.chat.MockChatModel` replica and returns
``(text, input_tokens, output_tokens)``; the parent re-records the
tokens on the shared :class:`~repro.llm.usage.UsageMeter`.

Byte-identity with the thread path follows from determinism: the model
is a pure function of ``(world, prompt)``, token counting is pure, and
``UsageMeter.record`` is commutative — so results, Usage totals, and
cache behaviour are identical whether a prompt was completed in-process
or in a worker.

The client is dispatcher-agnostic: it plugs into the existing
``ParallelDispatcher`` (whose threads now merely block on worker
futures) so ordering, provenance, and degradation semantics are
untouched.  Worker processes are started lazily on first use and with
the ``fork`` start method inherit the parent's already-built worlds; a
registry fallback rebuilds the world by name otherwise.
"""

from __future__ import annotations

import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Optional, Sequence

from repro.errors import LLMError, TransientLLMError
from repro.llm.client import ChatResponse
from repro.llm.usage import UsageMeter
from repro.swan.base import World

__all__ = ["ProcPoolClient"]

#: Worlds registered by the parent before the pool forks, keyed by
#: ``(name, scale)``; fork-started workers see this populated and skip
#: the (expensive) rebuild in ``_init_worker``.
_WORLD_REGISTRY: dict[tuple[str, int], World] = {}

#: The per-worker-process model replica, built once in the initializer.
_WORKER_MODEL = None


def _init_worker(world_name: str, scale: int, model_name: str, optimize: bool) -> None:
    """Build this worker process's model replica (runs once per worker)."""
    global _WORKER_MODEL
    from repro.llm.chat import MockChatModel
    from repro.llm.oracle import KnowledgeOracle
    from repro.llm.profiles import get_profile

    world = _WORLD_REGISTRY.get((world_name, scale))
    if world is None:
        from repro.swan.scale import scale_world
        from repro.swan.worlds import WORLD_BUILDERS

        world = scale_world(WORLD_BUILDERS[world_name](), scale)
        _WORLD_REGISTRY[(world_name, scale)] = world
    _WORKER_MODEL = MockChatModel(
        KnowledgeOracle(world, optimize=optimize), get_profile(model_name),
        meter=UsageMeter(), optimize=optimize,
    )


def _complete_in_worker(prompt: str, label: str) -> tuple[str, int, int]:
    """Complete one prompt in a worker; tokens are counted off-parent."""
    if _WORKER_MODEL is None:  # pragma: no cover - initializer always ran
        raise LLMError("process-pool worker was not initialized")
    response = _WORKER_MODEL.complete(prompt, label=label)
    return response.text, response.usage.input_tokens, response.usage.output_tokens


def _complete_chunk_in_worker(
    prompts: Sequence[str], labels: Sequence[str]
) -> list[tuple[str, int, int]]:
    """Complete a whole chunk of prompts per IPC round trip.

    Per-prompt submission costs one pickle/unpickle/wakeup cycle each
    way; at bird scale tens of thousands of those dominate the win from
    parallelism.  Chunking amortizes the round trip over hundreds of
    prompts while each answer stays the same pure function of
    ``(world, prompt)``.
    """
    if _WORKER_MODEL is None:  # pragma: no cover - initializer always ran
        raise LLMError("process-pool worker was not initialized")
    out: list[tuple[str, int, int]] = []
    for prompt, label in zip(prompts, labels):
        response = _WORKER_MODEL.complete(prompt, label=label)
        out.append(
            (response.text, response.usage.input_tokens, response.usage.output_tokens)
        )
    return out


class ProcPoolClient:
    """A ChatClient that completes prompts in worker processes.

    Drop-in replacement for :class:`~repro.llm.chat.MockChatModel` in the
    harness runners: same ``model_name`` attribute (cache layers key on
    it) and the same per-call Usage accounting on ``meter``.
    """

    #: tells the dispatcher to hand this client whole prompt lists
    #: (:meth:`complete_many`) instead of one call per worker thread
    prefers_batch_dispatch = True

    def __init__(
        self,
        world: World,
        model_name: str,
        *,
        processes: Optional[int] = None,
        meter: Optional[UsageMeter] = None,
        optimize: bool = True,
    ) -> None:
        self.world = world
        self.model_name = model_name
        self.meter = meter or UsageMeter()
        self.processes = max(1, processes) if processes is not None else None
        self.optimize = optimize
        self._pool: Optional[ProcessPoolExecutor] = None
        self._lock = threading.Lock()
        _WORLD_REGISTRY[(world.name, world.scale)] = world

    # -- pool lifecycle ------------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.processes,
                    initializer=_init_worker,
                    initargs=(
                        self.world.name,
                        self.world.scale,
                        self.model_name,
                        self.optimize,
                    ),
                )
            return self._pool

    def close(self) -> None:
        """Shut the pool down, reaping every worker process."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "ProcPoolClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- ChatClient ----------------------------------------------------------

    def complete(self, prompt: str, *, label: str = "") -> ChatResponse:
        """Complete one prompt in a worker process.

        Blocking here is intentional: concurrency comes from the calling
        dispatcher's threads, each of which parks on its own worker
        future, keeping dispatch order and retry semantics unchanged.
        """
        pool = self._ensure_pool()
        try:
            text, input_tokens, output_tokens = pool.submit(
                _complete_in_worker, prompt, label
            ).result()
        except BrokenProcessPool as exc:
            # a worker died (OOM, kill, crash): reap the remaining
            # processes now so none are orphaned, then surface a
            # retryable error — the resilience layer decides what's next
            self.close()
            raise TransientLLMError(f"process pool broke: {exc}") from exc
        usage = self.meter.record(input_tokens, output_tokens, label)
        return ChatResponse(text, usage)

    def complete_many(
        self, prompts: Sequence[str], labels: Sequence[str]
    ) -> list[ChatResponse]:
        """Complete a prompt list in chunked worker submissions.

        The batch-dispatch entry point: the dispatcher hands over its
        (already deduplicated) unique-prompt list, and the pool splits
        it into a few chunks per worker — balancing the tail without
        paying a round trip per prompt.  Responses come back in prompt
        order, each recorded on ``meter`` exactly as :meth:`complete`
        would have.
        """
        if len(prompts) != len(labels):
            raise LLMError(
                f"got {len(labels)} labels for {len(prompts)} prompts"
            )
        pool = self._ensure_pool()
        workers = pool._max_workers or 1
        chunk = max(1, -(-len(prompts) // (workers * 4)))
        futures = [
            pool.submit(
                _complete_chunk_in_worker,
                list(prompts[start : start + chunk]),
                list(labels[start : start + chunk]),
            )
            for start in range(0, len(prompts), chunk)
        ]
        try:
            triples = [triple for future in futures for triple in future.result()]
        except BrokenProcessPool as exc:
            self.close()
            raise TransientLLMError(f"process pool broke: {exc}") from exc
        return [
            ChatResponse(text, self.meter.record(input_tokens, output_tokens, label))
            for (text, input_tokens, output_tokens), label in zip(triples, labels)
        ]
