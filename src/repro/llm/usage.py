"""Token and call metering, plus the pricing table from Section 5.1.

Every simulated LLM call records its input/output token counts into a
:class:`UsageMeter`.  Meters nest: the harness gives each pipeline its own
meter and aggregates at the end for Table 5.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

#: Dollars per million tokens (input, output).  GPT-3.5 Turbo pricing is
#: quoted in the paper; GPT-4 Turbo from the OpenAI price list of the same
#: period.
PRICING_PER_MILLION = {
    "gpt-3.5-turbo": (3.0, 6.0),
    "gpt-4-turbo": (10.0, 30.0),
}


@dataclass(frozen=True)
class Usage:
    """Token usage of a single call (or an aggregate)."""

    input_tokens: int = 0
    output_tokens: int = 0
    calls: int = 0

    def __add__(self, other: "Usage") -> "Usage":
        return Usage(
            self.input_tokens + other.input_tokens,
            self.output_tokens + other.output_tokens,
            self.calls + other.calls,
        )

    def __sub__(self, other: "Usage") -> "Usage":
        """The delta between two meter snapshots (per-request attribution)."""
        return Usage(
            self.input_tokens - other.input_tokens,
            self.output_tokens - other.output_tokens,
            self.calls - other.calls,
        )

    def total_tokens(self) -> int:
        return self.input_tokens + self.output_tokens

    def cost_usd(self, model: str) -> float:
        """Monetary cost under the paper's pricing table."""
        input_rate, output_rate = PRICING_PER_MILLION.get(model, (0.0, 0.0))
        return (
            self.input_tokens * input_rate + self.output_tokens * output_rate
        ) / 1_000_000


@dataclass
class UsageMeter:
    """Accumulates usage across calls; supports labelled sub-totals.

    Thread-safe: concurrent :meth:`record` calls never lose a count, so
    totals are exact no matter how many dispatcher workers share one
    meter (the additions commute, only their interleaving varies).
    """

    total: Usage = field(default_factory=Usage)
    by_label: dict[str, Usage] = field(default_factory=dict)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )

    def record(self, input_tokens: int, output_tokens: int, label: str = "") -> Usage:
        """Record one call and return its Usage."""
        usage = Usage(input_tokens, output_tokens, 1)
        with self._lock:
            self.total = self.total + usage
            if label:
                self.by_label[label] = self.by_label.get(label, Usage()) + usage
        return usage

    def snapshot(self) -> tuple[Usage, dict[str, Usage]]:
        """A consistent (total, by_label) copy taken under the lock.

        Because :meth:`record` updates ``total`` and ``by_label`` inside
        one critical section, a snapshot is internally consistent even
        while other threads are still recording: the labelled sub-totals
        always sum to ``total`` (when every record carries a label).
        """
        with self._lock:
            return self.total, dict(self.by_label)

    def merge(self, other: "UsageMeter") -> None:
        """Fold another meter's counts into this one.

        Reads ``other`` through its locked :meth:`snapshot`, so merging
        is safe even while ``other``'s producers are still recording —
        the merged counts are whatever the snapshot instant saw.  The
        two locks are never held together (snapshot completes before
        this meter's lock is taken), so meters cannot deadlock however
        they are merged.
        """
        total, by_label = other.snapshot()
        with self._lock:
            self.total = self.total + total
            for label, usage in by_label.items():
                self.by_label[label] = self.by_label.get(label, Usage()) + usage

    def reset(self) -> None:
        with self._lock:
            self.total = Usage()
            self.by_label.clear()
