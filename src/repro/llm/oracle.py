"""The knowledge oracle behind the simulated models.

A :class:`KnowledgeOracle` owns the ground truth of one SWAN world and
decides, per generated cell, whether a given model "knows" the true value
— deterministically, via a hash of the cell identity compared against the
model profile's calibrated accuracy.  Two useful properties fall out of
hashing the *cell* rather than the call:

- monotonicity in shots: more demonstrations never turn a known cell into
  an unknown one (accuracy only rises, the hash draw is fixed);
- model consistency: the stronger model's knowledge is a superset of the
  weaker model's wherever its accuracy is higher, because both compare the
  same draw against their own thresholds.

When the model does not know a value, the oracle fabricates a *plausible*
hallucination: another entry of the value list for selection columns, a
nearby number for numeric columns, a mutated string or another entity's
value for free-form columns.
"""

from __future__ import annotations

import hashlib
from typing import Optional

from repro.errors import CurationError, LLMError
from repro.llm.profiles import ModelProfile
from repro.swan.base import (
    KIND_MULTI,
    KIND_NUMERIC,
    KIND_SELECTION,
    ExpansionColumn,
    ExpansionTable,
    World,
)


def stable_uniform(*parts: object) -> float:
    """A deterministic pseudo-uniform draw in [0, 1) from the parts."""
    payload = "\x1f".join(str(p) for p in parts).encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


def _uniform_from_payload(payload: str) -> float:
    """:func:`stable_uniform` over an already-joined payload string.

    The oracle hot path draws several uniforms per cell whose parts
    share a long common tail; joining that tail once and formatting only
    the leading discriminator keeps the draw byte-identical while
    skipping the per-draw ``str``/``join`` work.
    """
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


def _choice_from_payload(options: list, payload: str):
    """:func:`stable_choice` over an already-joined payload string."""
    if not options:
        raise LLMError("stable_choice requires at least one option")
    index = int(_uniform_from_payload("choice\x1f" + payload) * len(options))
    return options[min(index, len(options) - 1)]


def stable_choice(options: list, *parts: object):
    """Deterministically pick one option based on the parts."""
    if not options:
        raise LLMError("stable_choice requires at least one option")
    index = int(stable_uniform("choice", *parts) * len(options))
    return options[min(index, len(options) - 1)]


class KnowledgeOracle:
    """Ground truth plus calibrated noise for one world."""

    def __init__(
        self, world: World, *, salt: str = "swan-v1", optimize: bool = True
    ) -> None:
        self.world = world
        self.salt = salt
        #: toggles the byte-identical per-cell fast path (memoized
        #: accuracies and pre-joined hash payloads); ``False`` keeps the
        #: reference implementation for the pre-optimization benches
        self.optimize = optimize
        # calibrated accuracy per (profile name, column, shots, ...) —
        # constant across the thousands of cells of one scaled column
        self._accuracy_cache: dict[tuple, float] = {}
        # multi-kind distractor pools per (value list, truth items)
        self._pool_cache: dict[tuple, list] = {}
        # question -> resolved (expansion, column), or None for a miss;
        # a batched run re-resolves the same question per map call
        self._attr_cache: dict[str, Optional[tuple]] = {}
        # column metadata index: (expansion_name, column_name) -> spec
        self._columns: dict[tuple[str, str], ExpansionColumn] = {}
        for expansion in world.expansions:
            for column in expansion.columns:
                self._columns[(expansion.name, column.name)] = column

    # -- core generation -----------------------------------------------------

    def column_spec(self, expansion_name: str, column: str) -> ExpansionColumn:
        try:
            return self._columns[(expansion_name, column)]
        except KeyError as exc:
            raise LLMError(
                f"unknown generated column {expansion_name}.{column}"
            ) from exc

    def knows(
        self,
        expansion_name: str,
        key: tuple,
        column: str,
        accuracy: float,
    ) -> bool:
        """Whether a model with the given accuracy knows this cell."""
        draw = stable_uniform(self.salt, "know", self.world.name, expansion_name, key, column)
        return draw < accuracy

    def generate_value(
        self,
        expansion_name: str,
        key: tuple,
        column: str,
        profile: ModelProfile,
        shots: int,
        *,
        single_cell: bool = False,
        batch_size: int = 1,
        with_context: bool = False,
    ) -> str:
        """The model's answer for one cell, formatted as completion text."""
        spec = self.column_spec(expansion_name, column)
        if self.optimize:
            return self._generate_value_fast(
                spec, expansion_name, key, column, profile, shots,
                single_cell, batch_size, with_context,
            )
        accuracy = profile.knowledge_accuracy(
            self.world.name,
            column,
            spec.kind,
            shots,
            single_cell=single_cell,
            batch_size=batch_size,
        )
        # Famous entities are better represented in pre-training data;
        # the popularity multiplier raises (or lowers) the cell's odds
        # while keeping the profile's hard ceiling.  A model with perfect
        # knowledge (accuracy 1.0, e.g. the 'perfect' profile) has nothing
        # left to forget, so neither popularity nor context applies.
        if accuracy < 1.0:
            accuracy *= self.world.key_popularity(expansion_name, key)
            if with_context:
                accuracy *= profile.context_boost
            accuracy = min(profile.max_accuracy, accuracy)
        truth = self.world.truth_value(expansion_name, key, column)
        if self.knows(expansion_name, key, column, accuracy):
            return self.format_value(truth, spec)
        return self.format_value(
            self._distractor(expansion_name, key, column, spec, truth), spec
        )

    def _generate_value_fast(
        self,
        spec: ExpansionColumn,
        expansion_name: str,
        key: tuple,
        column: str,
        profile: ModelProfile,
        shots: int,
        single_cell: bool,
        batch_size: int,
        with_context: bool,
    ) -> str:
        """Byte-identical :meth:`generate_value`, minus repeated work.

        The calibrated base accuracy is a pure function of
        ``(profile, column, shots, single_cell, batch_size)`` — constant
        across the thousands of cells a scaled column generates — so it
        is memoized (keyed on ``profile.name``; profiles are registry
        singletons).  Every hash draw reuses one pre-joined payload tail
        instead of re-stringifying the cell identity per draw.
        """
        acc_key = (profile.name, column, shots, single_cell, batch_size)
        accuracy = self._accuracy_cache.get(acc_key)
        if accuracy is None:
            accuracy = profile.knowledge_accuracy(
                self.world.name,
                column,
                spec.kind,
                shots,
                single_cell=single_cell,
                batch_size=batch_size,
            )
            self._accuracy_cache[acc_key] = accuracy
        if accuracy < 1.0:
            accuracy *= self.world.key_popularity(expansion_name, key)
            if with_context:
                accuracy *= profile.context_boost
            accuracy = min(profile.max_accuracy, accuracy)
        truth = self.world.truth_value(expansion_name, key, column)
        tail = f"{self.world.name}\x1f{expansion_name}\x1f{key}\x1f{column}"
        if _uniform_from_payload(f"{self.salt}\x1fknow\x1f{tail}") < accuracy:
            return self.format_value(truth, spec)
        return self.format_value(
            self._distractor_fast(expansion_name, key, column, spec, truth, tail),
            spec,
        )

    def map_value_generator(
        self,
        expansion_name: str,
        column: str,
        profile: ModelProfile,
        shots: int,
        batch_size: int,
    ):
        """A per-key closure over :meth:`generate_value`'s batch constants.

        One map call generates the same ``(expansion, column, profile,
        shots, batch_size)`` cell context for every key in the batch;
        hoisting the spec lookup, the calibrated accuracy, and the hash
        payload prefix out of the per-key loop leaves each key one
        popularity lookup, one truth lookup, and one draw — the
        irreducible per-cell work.  Single-cell mode (the map protocol)
        is assumed; answers are byte-identical to per-key
        :meth:`generate_value` calls.
        """
        spec = self.column_spec(expansion_name, column)
        acc_key = (profile.name, column, shots, True, batch_size)
        base_accuracy = self._accuracy_cache.get(acc_key)
        if base_accuracy is None:
            base_accuracy = profile.knowledge_accuracy(
                self.world.name,
                column,
                spec.kind,
                shots,
                single_cell=True,
                batch_size=batch_size,
            )
            self._accuracy_cache[acc_key] = base_accuracy
        popularity = self.world.popularity.get(expansion_name, {})
        truths = self.world.truth[expansion_name]
        max_accuracy = profile.max_accuracy
        tail_prefix = f"{self.world.name}\x1f{expansion_name}\x1f"
        know_prefix = f"{self.salt}\x1fknow\x1f"
        format_value = self.format_value
        distractor = self._distractor_fast

        def generate(key: tuple) -> str:
            """One key's answer, drawn against the hoisted batch context."""
            accuracy = base_accuracy
            if accuracy < 1.0:
                accuracy = min(max_accuracy, accuracy * popularity.get(key, 1.0))
            try:
                truth = truths[key][column]
            except KeyError as exc:
                raise CurationError(
                    f"no ground truth for {expansion_name}{key}.{column}"
                ) from exc
            tail = f"{tail_prefix}{key}\x1f{column}"
            if _uniform_from_payload(know_prefix + tail) < accuracy:
                return format_value(truth, spec)
            return format_value(
                distractor(expansion_name, key, column, spec, truth, tail), spec
            )

        return generate

    def _distractor_fast(
        self,
        expansion_name: str,
        key: tuple,
        column: str,
        spec: ExpansionColumn,
        truth: object,
        tail: str,
    ) -> object:
        """:meth:`_distractor` over the pre-joined payload tail."""
        wrong = f"{self.salt}\x1fwrong\x1f{tail}"
        if spec.kind == KIND_SELECTION:
            options = [
                v for v in self.world.value_lists.get(spec.value_list or "", []) if v != truth
            ]
            if options:
                return _choice_from_payload(options, wrong)
            return truth
        if spec.kind == KIND_NUMERIC:
            try:
                value = float(truth)  # type: ignore[arg-type]
            except (TypeError, ValueError):
                return f"{truth}?"
            draw = _uniform_from_payload("numeric\x1f" + wrong)
            factor = 1.0 + (0.05 + 0.15 * draw) * (1 if draw > 0.5 else -1)
            wrong_value = value * factor
            if isinstance(truth, int) or (
                isinstance(truth, float) and value == int(value)
            ):
                wrong_int = int(round(wrong_value))
                if wrong_int == int(value):
                    wrong_int += 1
                return wrong_int
            return round(wrong_value, 2)
        if spec.kind == KIND_MULTI:
            return self._multi_distractor_fast(spec, truth, wrong)
        seed_parts = (self.salt, "wrong", self.world.name, expansion_name, key, column)
        return self._freeform_distractor(expansion_name, key, column, truth, seed_parts)

    def _multi_distractor_fast(
        self, spec: ExpansionColumn, truth: object, wrong: str
    ) -> tuple:
        """:meth:`_multi_distractor` with a memoized distractor pool.

        Replicated entities share their truth item lists, so the pool
        ``[v for v in value_list if v not in items]`` recurs thousands
        of times per scaled column — one dict hit replaces it.
        """
        items = list(truth) if isinstance(truth, (list, tuple)) else [str(truth)]
        pool_key = (spec.value_list, tuple(items))
        pool = self._pool_cache.get(pool_key)
        if pool is None:
            pool = [
                v
                for v in self.world.value_lists.get(spec.value_list or "", [])
                if v not in items
            ]
            self._pool_cache[pool_key] = pool
        draw = _uniform_from_payload("multi\x1f" + wrong)
        mutated = list(items)
        if mutated and draw < 0.6:
            drop_index = int(
                _uniform_from_payload("multi-drop\x1f" + wrong) * len(mutated)
            )
            mutated.pop(min(drop_index, len(mutated) - 1))
        if pool and draw >= 0.3:
            mutated.append(_choice_from_payload(pool, "multi-add\x1f" + wrong))
        if tuple(mutated) == tuple(items):
            if pool:
                mutated.append(_choice_from_payload(pool, "multi-fix\x1f" + wrong))
            elif mutated:
                mutated.pop()
        return tuple(mutated)

    @staticmethod
    def format_value(value: object, spec: ExpansionColumn) -> str:
        """Render a truth/distractor value the way a model would print it."""
        if spec.kind == KIND_MULTI:
            if isinstance(value, (list, tuple)):
                return ", ".join(str(v) for v in value)
            return str(value)
        if value is None:
            return ""
        if isinstance(value, float) and value == int(value):
            return str(int(value))
        return str(value)

    # -- hallucination -------------------------------------------------------

    def _distractor(
        self,
        expansion_name: str,
        key: tuple,
        column: str,
        spec: ExpansionColumn,
        truth: object,
    ) -> object:
        """A plausible wrong value, deterministic per cell."""
        seed_parts = (self.salt, "wrong", self.world.name, expansion_name, key, column)
        if spec.kind == KIND_SELECTION:
            options = [
                v for v in self.world.value_lists.get(spec.value_list or "", []) if v != truth
            ]
            if options:
                return stable_choice(options, *seed_parts)
            return truth  # degenerate single-value list: nothing else to say
        if spec.kind == KIND_NUMERIC:
            return self._numeric_distractor(truth, seed_parts)
        if spec.kind == KIND_MULTI:
            return self._multi_distractor(spec, truth, seed_parts)
        return self._freeform_distractor(expansion_name, key, column, truth, seed_parts)

    @staticmethod
    def _numeric_distractor(truth: object, seed_parts: tuple) -> object:
        try:
            value = float(truth)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return f"{truth}?"
        draw = stable_uniform("numeric", *seed_parts)
        # ±5%..20% relative error, never exactly the truth
        factor = 1.0 + (0.05 + 0.15 * draw) * (1 if draw > 0.5 else -1)
        wrong = value * factor
        if isinstance(truth, int) or (isinstance(truth, float) and value == int(value)):
            wrong_int = int(round(wrong))
            if wrong_int == int(value):
                wrong_int += 1
            return wrong_int
        return round(wrong, 2)

    def _multi_distractor(
        self, spec: ExpansionColumn, truth: object, seed_parts: tuple
    ) -> tuple:
        items = list(truth) if isinstance(truth, (list, tuple)) else [str(truth)]
        pool = [
            v
            for v in self.world.value_lists.get(spec.value_list or "", [])
            if v not in items
        ]
        draw = stable_uniform("multi", *seed_parts)
        mutated = list(items)
        if mutated and draw < 0.6:
            # forget one element
            drop_index = int(stable_uniform("multi-drop", *seed_parts) * len(mutated))
            mutated.pop(min(drop_index, len(mutated) - 1))
        if pool and draw >= 0.3:
            # invent one element
            mutated.append(stable_choice(pool, "multi-add", *seed_parts))
        if tuple(mutated) == tuple(items):
            if pool:
                mutated.append(stable_choice(pool, "multi-fix", *seed_parts))
            elif mutated:
                mutated.pop()
        return tuple(mutated)

    def _freeform_distractor(
        self,
        expansion_name: str,
        key: tuple,
        column: str,
        truth: object,
        seed_parts: tuple,
    ) -> object:
        text = str(truth)
        if "www." in text or text.endswith((".edu", ".org", ".com", ".net")):
            return self._mutate_url(text, seed_parts)
        # confusion: answer with another entity's value for the same column
        truth_map = self.world.truth[expansion_name]
        others = [
            entry[column]
            for entry_key, entry in truth_map.items()
            if entry_key != key and str(entry[column]) != text and entry[column] is not None
        ]
        if others:
            return stable_choice(others, "confuse", *seed_parts)
        return self._mutate_text(text, seed_parts)

    @staticmethod
    def _mutate_url(url: str, seed_parts: tuple) -> str:
        suffixes = [".edu", ".org", ".com", ".net", ".us"]
        for suffix in suffixes:
            if url.endswith(suffix):
                replacement = stable_choice(
                    [s for s in suffixes if s != suffix], "url", *seed_parts
                )
                return url[: -len(suffix)] + replacement
        return url + ".org"

    @staticmethod
    def _mutate_text(text: str, seed_parts: tuple) -> str:
        if not text:
            return "unknown"
        draw = stable_uniform("text", *seed_parts)
        if draw < 0.5 and " " in text:
            head, _, _ = text.rpartition(" ")
            return head  # truncated answer
        return text + "s" if not text.endswith("s") else text[:-1]

    # -- question understanding ----------------------------------------------

    def resolve_attribute(
        self, question: str
    ) -> tuple[ExpansionTable, ExpansionColumn]:
        """Resolve an NL question to the generated attribute it asks about.

        This stands in for semantic understanding: each expansion column
        declares keyword cues; the column with the highest cue overlap
        wins.  Raises :class:`LLMError` when nothing matches — the mock
        model is "confused", and callers surface that as a failed query.
        """
        if self.optimize and question in self._attr_cache:
            best = self._attr_cache[question]
            if best is None:
                raise LLMError(
                    f"cannot resolve question to a known attribute: {question!r}"
                )
            return best
        lowered = question.lower()
        best = None
        best_score = 0
        for expansion in self.world.expansions:
            for column in expansion.columns:
                score = sum(
                    len(keyword)
                    for keyword in column.keywords
                    if keyword.lower() in lowered
                )
                if score > best_score:
                    best_score = score
                    best = (expansion, column)
        if self.optimize:
            self._attr_cache[question] = best
        if best is None:
            raise LLMError(
                f"cannot resolve question to a known attribute: {question!r}"
            )
        return best

    def find_key(self, expansion: ExpansionTable, entity: str) -> Optional[tuple]:
        """Find the key tuple whose components mention ``entity``."""
        lowered = entity.lower()
        for key in self.world.truth[expansion.name]:
            if any(lowered == str(part).lower() for part in key):
                return key
        for key in self.world.truth[expansion.name]:
            if any(lowered in str(part).lower() for part in key):
                return key
        return None
