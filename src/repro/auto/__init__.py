"""Automated hybrid querying (the paper's Section 6 future work).

"Given a natural language question, LLMs should first evaluate whether
it can be answered using the existing schema.  For questions requiring
information beyond the current database, LLMs could ... construct a SQL
query with user-defined functions to directly prompt LLMs for required
information in real time."

:mod:`repro.auto.planner` is a preliminary implementation of that loop:
a deterministic planner that classifies a natural-language question,
resolves which generated attribute it needs, extracts filter values or
lookup entities, and emits an executable BlendSQL-dialect hybrid query —
no hand-written query required.  Coverage is intentionally partial
(single-table count / list / lookup intents); the evaluation harness
reports exactly how far it gets on SWAN.
"""

from repro.auto.planner import (
    HybridQueryPlanner,
    PlannedQuery,
    PlannerReport,
    evaluate_planner,
)

__all__ = [
    "HybridQueryPlanner",
    "PlannedQuery",
    "PlannerReport",
    "evaluate_planner",
]
