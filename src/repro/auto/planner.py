"""A preliminary automated NL → hybrid-query planner.

The planner turns a natural-language beyond-database question directly
into an executable BlendSQL-dialect query, covering the three intents
that dominate SWAN:

- **count** — "How many superheroes have blue eyes?"
- **list** — "List the names of players taller than 180 cm."
- **lookup** — "What is the eye color of Superman?"

Pipeline: resolve which generated attribute(s) the question needs (the
same keyword-cue resolution the simulated models use — a question no
attribute matches is presumed answerable from the database alone),
extract filter values (retained value lists for selection attributes,
comparison phrases for numeric ones) or a lookup entity (matched against
the expansion keys), then instantiate a SQL template over the source
table.

Coverage is deliberately partial — single source table, key-column
projections — and :func:`evaluate_planner` reports exactly how far it
gets against the gold answers.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ReproError
from repro.swan.base import (
    KIND_NUMERIC,
    ExpansionColumn,
    ExpansionTable,
    World,
)


class PlanningError(ReproError):
    """Raised when the planner cannot translate a question."""


@dataclass(frozen=True)
class PlannedQuery:
    """A question the planner translated into a hybrid query."""

    question: str
    intent: str  # 'count' | 'list' | 'lookup'
    expansion: str
    attributes: tuple[str, ...]
    blend_sql: str


@dataclass
class PlannerReport:
    """Coverage and accuracy of the planner over a question set."""

    total: int = 0
    planned: int = 0
    correct: int = 0
    failures: dict[str, str] = field(default_factory=dict)  # qid -> reason

    @property
    def coverage(self) -> float:
        return self.planned / self.total if self.total else 0.0

    @property
    def planned_accuracy(self) -> float:
        return self.correct / self.planned if self.planned else 0.0


#: Comparison phrases for numeric attributes, tried in order.
_NUMERIC_PATTERNS: tuple[tuple[str, str], ...] = (
    (r"(?:taller|heavier|greater|more|higher|larger|older)\s+than\s+(\d+)", ">"),
    (r"(?:shorter|lighter|less|fewer|smaller)\s+than\s+(\d+)", "<"),
    (r"(?:after)\s+(\d{4})", ">"),
    (r"(?:before)\s+(\d{4})", "<"),
    (r"(?:in|of)\s+(\d{4})\b", "="),
)


def _escape(text: str) -> str:
    return text.replace("'", "''")


def resolve_attribute(
    world: World, question: str
) -> Optional[tuple[ExpansionTable, ExpansionColumn]]:
    """Keyword-cue attribute resolution (None when nothing matches)."""
    lowered = question.lower()
    best: Optional[tuple[ExpansionTable, ExpansionColumn]] = None
    best_score = 0
    for expansion in world.expansions:
        for column in expansion.columns:
            score = sum(
                len(keyword)
                for keyword in column.keywords
                if keyword.lower() in lowered
            )
            if score > best_score:
                best_score = score
                best = (expansion, column)
    return best


class HybridQueryPlanner:
    """Plans hybrid queries for one world."""

    def __init__(self, world: World) -> None:
        self.world = world

    # -- public API --------------------------------------------------------------

    def plan(self, question: str) -> PlannedQuery:
        """Translate a natural-language question into a hybrid query.

        Raises :class:`PlanningError` when the question resolves to no
        generated attribute (presumed answerable from the database) or
        when no filter value / lookup entity can be extracted.
        """
        resolved = resolve_attribute(self.world, question)
        if resolved is None:
            raise PlanningError(
                "no generated attribute matches; the question appears "
                "answerable from the database alone"
            )
        expansion, column = resolved
        filters = self._extract_filters(question, expansion, column)
        if filters:
            return self._filter_query(question, expansion, filters)
        entity = self._find_entity(question, expansion)
        if entity is not None:
            return self._lookup_query(question, expansion, column, entity)
        raise PlanningError(
            f"resolved attribute {column.name!r} but found neither a filter "
            "value nor a lookup entity in the question"
        )

    # -- extraction ----------------------------------------------------------------

    def _extract_filters(
        self,
        question: str,
        expansion: ExpansionTable,
        primary: ExpansionColumn,
    ) -> list[tuple[ExpansionColumn, str, str]]:
        """(column, operator, SQL literal) filters found in the question."""
        filters: list[tuple[ExpansionColumn, str, str]] = []
        lowered = question.lower()
        for column in expansion.columns:
            if column is not primary and not any(
                keyword.lower() in lowered for keyword in column.keywords
            ):
                continue
            if column.kind == KIND_NUMERIC:
                match = self._numeric_filter(lowered)
                if match is not None and column is primary:
                    operator, value = match
                    filters.append((column, operator, value))
            elif column.value_list:
                value = self._value_from_list(question, column)
                if value is not None:
                    filters.append((column, "=", f"'{_escape(value)}'"))
        return filters

    @staticmethod
    def _numeric_filter(lowered: str) -> Optional[tuple[str, str]]:
        for pattern, operator in _NUMERIC_PATTERNS:
            match = re.search(pattern, lowered)
            if match:
                return operator, match.group(1)
        return None

    def _value_from_list(
        self, question: str, column: ExpansionColumn
    ) -> Optional[str]:
        values = self.world.value_lists.get(column.value_list or "", [])
        best: Optional[str] = None
        for value in values:
            pattern = r"\b" + re.escape(value.lower()) + r"\b"
            if re.search(pattern, question.lower()) and (
                best is None or len(value) > len(best)
            ):
                best = value
        return best

    def _find_entity(
        self, question: str, expansion: ExpansionTable
    ) -> Optional[tuple[int, str]]:
        """The longest expansion-key component mentioned in the question.

        Returns (key column index, matched value) so the lookup query can
        filter on the right key column.
        """
        lowered = question.lower()
        best: Optional[tuple[int, str]] = None
        for key in self.world.truth[expansion.name]:
            for index, component in enumerate(key):
                text = str(component)
                pattern = r"\b" + re.escape(text.lower()) + r"\b"
                if re.search(pattern, lowered) and (
                    best is None or len(text) > len(best[1])
                ):
                    best = (index, text)
        return best

    # -- query construction ----------------------------------------------------------

    def _map_expression(
        self, question: str, expansion: ExpansionTable, column: ExpansionColumn
    ) -> str:
        keys = ", ".join(
            f"'{expansion.source_table}::{key}'" for key in expansion.key_columns
        )
        options = f", options='{column.value_list}'" if column.value_list else ""
        expr = f"{{{{LLMMap('{_escape(question)}', {keys}{options})}}}}"
        if column.kind == KIND_NUMERIC:
            expr = f"CAST({expr} AS INTEGER)"
        return expr

    def _filter_query(
        self,
        question: str,
        expansion: ExpansionTable,
        filters: list[tuple[ExpansionColumn, str, str]],
    ) -> PlannedQuery:
        conditions = " AND ".join(
            f"{self._map_expression(self._attribute_question(column), expansion, column)}"
            f" {operator} {literal}"
            for column, operator, literal in filters
        )
        intent = "count" if self._is_count(question) else "list"
        if intent == "count":
            selection = "COUNT(*)"
        else:
            selection = ", ".join(self._projection(question, expansion))
        blend_sql = (
            f"SELECT {selection} FROM {expansion.source_table} WHERE {conditions}"
        )
        return PlannedQuery(
            question=question,
            intent=intent,
            expansion=expansion.name,
            attributes=tuple(column.name for column, _, _ in filters),
            blend_sql=blend_sql,
        )

    def _lookup_query(
        self,
        question: str,
        expansion: ExpansionTable,
        column: ExpansionColumn,
        entity: tuple[int, str],
    ) -> PlannedQuery:
        key_index, value = entity
        key_column = expansion.key_columns[key_index]
        blend_sql = (
            f"SELECT {self._map_expression(self._attribute_question(column), expansion, column)} "
            f"FROM {expansion.source_table} "
            f"WHERE {key_column} = '{_escape(value)}'"
        )
        return PlannedQuery(
            question=question,
            intent="lookup",
            expansion=expansion.name,
            attributes=(column.name,),
            blend_sql=blend_sql,
        )

    @staticmethod
    def _projection(question: str, expansion: ExpansionTable) -> list[str]:
        """Which key columns to project for a list-intent question.

        Prefers the key columns the question names ("list the superhero
        names" → superhero_name); falls back to all key columns.
        """
        lowered = question.lower()
        mentioned = [
            column
            for column in expansion.key_columns
            if column.replace("_", " ").rstrip("s") in lowered
        ]
        return mentioned or list(expansion.key_columns)

    @staticmethod
    def _attribute_question(column: ExpansionColumn) -> str:
        """A canonical per-attribute map question built from the spec."""
        return f"Provide the {column.description.lower()} for the given key."

    @staticmethod
    def _is_count(question: str) -> bool:
        lowered = question.lower()
        return lowered.startswith("how many") or lowered.startswith("count")


def evaluate_planner(swan, *, model_name: str = "perfect") -> PlannerReport:
    """Plan every SWAN question; execute what plans and compare to gold.

    Uses the given model profile (perfect by default, isolating planner
    quality from model error).  Returns coverage (fraction planned) and
    planned-accuracy (fraction of planned queries matching gold).
    """
    from repro.llm.chat import MockChatModel
    from repro.llm.oracle import KnowledgeOracle
    from repro.llm.profiles import get_profile
    from repro.sqlengine.results import results_match
    from repro.swan.build import build_curated_database, build_original_database
    from repro.udf.executor import HybridQueryExecutor

    report = PlannerReport()
    for name in swan.database_names():
        world = swan.world(name)
        planner = HybridQueryPlanner(world)
        model = MockChatModel(KnowledgeOracle(world), get_profile(model_name))
        with build_original_database(world) as orig, \
                build_curated_database(world) as curated:
            executor = HybridQueryExecutor(curated, model, world)
            for question in swan.questions_for(name):
                report.total += 1
                try:
                    planned = planner.plan(question.text)
                except PlanningError as exc:
                    report.failures[question.qid] = str(exc)
                    continue
                report.planned += 1
                try:
                    actual = executor.execute(planned.blend_sql)
                except ReproError as exc:
                    report.failures[question.qid] = f"execution failed: {exc}"
                    continue
                expected = orig.query(question.gold_sql)
                if results_match(expected, actual, ordered=False):
                    report.correct += 1
                else:
                    report.failures[question.qid] = "result mismatch"
    return report
