"""Evaluation metrics (paper Section 5.1).

- **Execution accuracy (EX)** — fraction of hybrid queries whose results
  are identical to the gold query's results
  (:mod:`repro.eval.execution`).
- **Data factuality** — exact-string-match F1 over generated cells, with
  set-F1 for one-to-many values (:mod:`repro.eval.factuality`).
- **Token usage** — metered by :mod:`repro.llm.usage`; reported here.
- :mod:`repro.eval.report` renders the paper-style text tables.
"""

from repro.eval.breakdown import ErrorBreakdown, analyze_run
from repro.eval.costs import CostReport, estimate_costs
from repro.eval.execution import ExecutionOutcome, evaluate_question, execution_accuracy
from repro.eval.factuality import cell_f1, database_factuality, table_factuality
from repro.eval.report import format_table

__all__ = [
    "ErrorBreakdown",
    "analyze_run",
    "CostReport",
    "estimate_costs",
    "ExecutionOutcome",
    "evaluate_question",
    "execution_accuracy",
    "cell_f1",
    "database_factuality",
    "table_factuality",
    "format_table",
]
