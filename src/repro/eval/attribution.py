"""Error attribution: *why* a question missed, not just that it did.

EX says a question's hybrid result differed from gold; this module joins
that verdict against the run's provenance (:mod:`repro.obs.provenance`)
to classify every miss into exactly one cause:

``sql-mismatch``
    The hybrid query itself failed to execute (or the pushdown/SQL
    rewrite produced an error) — no LLM cell had the chance to be wrong.
``degraded-batch``
    At least one cell feeding the question was degraded to NULL by a
    failed LLM call (retry budget spent, breaker open).
``format-drift``
    At least one cell is NULL although its call *returned* — the
    completion resisted parsing/extraction.
``stale-cache``
    Every cell materialized, but at least one was served from a
    cross-run tier (disk cache or the planner's mapping store) — a
    candidate for invalidation when the oracle moved on.
``oracle-knowledge``
    Everything executed and parsed; the model's answers were simply
    wrong.  The residual class — what remains when the machinery is
    ruled out.

The precedence above (top wins) makes the classes exhaustive *and*
mutually exclusive by construction: every miss lands in exactly one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Sequence

from repro.eval.execution import ExecutionOutcome
from repro.obs.provenance import (
    TIER_DISK,
    TIER_MAPPING_STORE,
    CellProvenance,
)
from repro.swan.base import Question

#: Every class a miss can land in, in classification precedence order.
MISS_CLASSES = (
    "sql-mismatch",
    "degraded-batch",
    "format-drift",
    "stale-cache",
    "oracle-knowledge",
)

#: Serving tiers that cross run boundaries and can therefore go stale.
_STALE_TIERS = (TIER_DISK, TIER_MAPPING_STORE)


@dataclass(frozen=True)
class Attribution:
    """One missed question and the cause class it was attributed to."""

    qid: str
    database: str
    pipeline: str
    miss_class: str
    #: a one-line human hint (the error text, the offending cell, ...)
    detail: str = ""

    def as_record(self) -> dict:
        return {
            "qid": self.qid,
            "database": self.database,
            "pipeline": self.pipeline,
            "class": self.miss_class,
            "detail": self.detail,
        }


def cells_for_question(
    provenance, question: Question, pipeline: str
) -> list[CellProvenance]:
    """The provenance cells that fed one question's answer.

    UDF cells are recorded under the question's qid (materialization
    happens inside the question's execution).  HQDL cells are recorded
    once per database with an empty qid, so they are matched by the
    expansion columns the question declares it reads.
    """
    direct = provenance.cells_for(
        qid=question.qid, database=question.database, pipeline=pipeline
    )
    if direct:
        return direct
    shared = provenance.cells_for(
        qid="", database=question.database, pipeline=pipeline
    )
    wanted = set(question.expansion_columns)
    if not wanted:
        return shared
    return [cell for cell in shared if cell.column in wanted]


def classify_miss(
    outcome: ExecutionOutcome,
    cells: Sequence[CellProvenance],
    *,
    pipeline: str,
) -> Attribution:
    """Attribute one incorrect outcome to exactly one cause class."""
    if outcome.error:
        return Attribution(
            qid=outcome.qid,
            database=outcome.database,
            pipeline=pipeline,
            miss_class="sql-mismatch",
            detail=outcome.error.splitlines()[0][:120],
        )

    def _attr(miss_class: str, cell: Optional[CellProvenance]) -> Attribution:
        detail = ""
        if cell is not None:
            key = "/".join(str(part) for part in cell.key)
            detail = f"{cell.table}[{key}].{cell.column}"
        return Attribution(
            qid=outcome.qid,
            database=outcome.database,
            pipeline=pipeline,
            miss_class=miss_class,
            detail=detail,
        )

    for cell in cells:
        if cell.degraded:
            return _attr("degraded-batch", cell)
    for cell in cells:
        if cell.null:
            return _attr("format-drift", cell)
    for cell in cells:
        if cell.tier in _STALE_TIERS:
            return _attr("stale-cache", cell)
    return _attr("oracle-knowledge", None)


def attribute_misses(
    provenance,
    outcomes: Iterable[ExecutionOutcome],
    questions: Mapping[str, Question],
    *,
    pipeline: str,
) -> list[Attribution]:
    """Classify every incorrect outcome; correct ones contribute nothing.

    ``questions`` maps qid → :class:`~repro.swan.base.Question` (needed
    for HQDL's expansion-column matching).  Outcomes without a question
    entry are classified from their own fields with no cell context.
    """
    attributions: list[Attribution] = []
    for outcome in outcomes:
        if outcome.correct:
            continue
        question = questions.get(outcome.qid)
        cells = (
            cells_for_question(provenance, question, pipeline)
            if question is not None
            else []
        )
        attributions.append(classify_miss(outcome, cells, pipeline=pipeline))
    return attributions


def attribution_counts(attributions: Iterable[Attribution]) -> dict[str, int]:
    """Miss count per class, every class present (zero when unused)."""
    counts = {miss_class: 0 for miss_class in MISS_CLASSES}
    for attribution in attributions:
        counts[attribution.miss_class] += 1
    return counts
