"""Execution accuracy (EX).

"EX measures the percentage of hybrid queries that produce identical
results to the ground truth (execution results from the Gold, correct,
SQL)" — Section 5.1.  Identity is multiset equality over normalised rows,
order-sensitive when the question's gold query imposes an order.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sqlengine.results import ResultSet, results_match
from repro.swan.base import Question


@dataclass(frozen=True)
class ExecutionOutcome:
    """The EX verdict for one question."""

    qid: str
    database: str
    correct: bool
    expected_rows: int
    actual_rows: int
    error: str = ""


def evaluate_question(
    question: Question,
    expected: ResultSet,
    actual: ResultSet,
) -> ExecutionOutcome:
    """Compare one hybrid result against the gold result."""
    correct = results_match(expected, actual, ordered=question.ordered)
    return ExecutionOutcome(
        qid=question.qid,
        database=question.database,
        correct=correct,
        expected_rows=len(expected),
        actual_rows=len(actual),
    )


def failed_outcome(question: Question, expected: ResultSet, error: str) -> ExecutionOutcome:
    """An outcome for a hybrid query that raised instead of returning."""
    return ExecutionOutcome(
        qid=question.qid,
        database=question.database,
        correct=False,
        expected_rows=len(expected),
        actual_rows=0,
        error=error,
    )


def execution_accuracy(outcomes: list[ExecutionOutcome]) -> float:
    """Fraction of correct outcomes (0.0 for an empty list)."""
    if not outcomes:
        return 0.0
    return sum(1 for o in outcomes if o.correct) / len(outcomes)
