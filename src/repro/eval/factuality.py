"""Data factuality: exact-match F1 over generated cells (Section 5.1/5.3).

Per the paper: "We use exact string match to verify the data factuality
for each data cell value.  Because of the one-to-many relationships ...
we use the widely accepted F1 score".  Concretely:

- a one-to-one cell scores 1.0 on exact match (after whitespace
  normalisation; numeric strings compare as numbers so '180' == '180.0'),
  else 0.0;
- a one-to-many cell (condensed comma-joined string) scores the F1 of
  its value set against the ground-truth set;
- a cell belonging to a malformed (dropped) row scores 0.0;
- the database score is the plain average over all expected cells.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.hqdl import GenerationResult, TableGeneration
from repro.llm.oracle import KnowledgeOracle
from repro.swan.base import KIND_MULTI, KIND_NUMERIC, ExpansionColumn, World


def _normalize(text: str) -> str:
    return " ".join(text.split())


def _numbers_equal(generated: str, truth: str) -> bool:
    try:
        return float(generated) == float(truth)
    except (TypeError, ValueError):
        return False


def _set_f1(generated_items: Sequence[str], truth_items: Sequence[str]) -> float:
    generated_set = {_normalize(item) for item in generated_items if item.strip()}
    truth_set = {_normalize(item) for item in truth_items if item.strip()}
    if not generated_set and not truth_set:
        return 1.0
    if not generated_set or not truth_set:
        return 0.0
    overlap = len(generated_set & truth_set)
    precision = overlap / len(generated_set)
    recall = overlap / len(truth_set)
    if precision + recall == 0.0:
        return 0.0
    return 2 * precision * recall / (precision + recall)


def cell_f1(
    generated: Optional[str],
    truth: object,
    spec: ExpansionColumn,
) -> float:
    """F1 contribution of a single generated cell."""
    if generated is None:
        return 0.0
    if spec.kind == KIND_MULTI:
        truth_items = (
            [str(item) for item in truth]
            if isinstance(truth, (list, tuple))
            else [str(truth)]
        )
        return _set_f1(generated.split(","), truth_items)
    truth_text = KnowledgeOracle.format_value(truth, spec)
    if _normalize(generated) == _normalize(truth_text):
        return 1.0
    if spec.kind == KIND_NUMERIC and _numbers_equal(generated, truth_text):
        return 1.0
    return 0.0


def table_factuality(
    world: World, generation: TableGeneration
) -> tuple[float, int]:
    """(sum of cell F1 scores, number of expected cells) for one table."""
    expansion = world.expansion(generation.expansion_name)
    total = 0.0
    cells = 0
    for key in world.keys_for(expansion.name):
        values = generation.rows.get(key)
        for index, column in enumerate(expansion.columns):
            cells += 1
            generated = None if values is None else values[index]
            truth = world.truth_value(expansion.name, key, column.name)
            total += cell_f1(generated, truth, column)
    return total, cells


def database_factuality(world: World, generation: GenerationResult) -> float:
    """Average cell F1 over every expected cell of every expansion table."""
    total = 0.0
    cells = 0
    for table_generation in generation.tables.values():
        table_total, table_cells = table_factuality(world, table_generation)
        total += table_total
        cells += table_cells
    return total / cells if cells else 0.0
