"""Plain-text table rendering for experiment reports.

Produces the aligned tables the benches print — the same rows/series the
paper's tables report, in a shape easy to eyeball against the original.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def _cell_text(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str = "",
) -> str:
    """Render an aligned text table."""
    text_rows = [[_cell_text(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in text_rows)
    return "\n".join(lines)


def format_records(
    records: Sequence[Mapping[str, object]], *, title: str = ""
) -> str:
    """Render a list of homogeneous dicts as a table."""
    if not records:
        return title or "(no rows)"
    headers = list(records[0].keys())
    rows = [[record.get(h, "") for h in headers] for record in records]
    return format_table(headers, rows, title=title)


def percent(value: float) -> str:
    """Format a 0..1 fraction the way the paper prints percentages."""
    return f"{value * 100:.1f}%"


def format_attribution(
    counts: Mapping[str, int], *, total_misses: int = -1, title: str = ""
) -> str:
    """Render a miss-classification table (class, count, share of misses).

    ``counts`` is :func:`repro.eval.attribution.attribution_counts`
    output; classes render in classification precedence order.  With
    ``total_misses`` given, a trailing line confirms the classes sum to
    it — the exhaustiveness invariant attribution guarantees.
    """
    total = sum(counts.values())
    rows = [
        [
            miss_class,
            count,
            percent(count / total) if total else percent(0.0),
        ]
        for miss_class, count in counts.items()
    ]
    table = format_table(["Miss class", "Count", "Share"], rows, title=title)
    if total_misses < 0:
        return table
    status = "exhaustive" if total == total_misses else "NOT EXHAUSTIVE"
    return f"{table}\nclassified {total} of {total_misses} misses: {status}"


def format_resilience(counters: Mapping[str, int], *, title: str = "") -> str:
    """Render resilience accounting (a ``ResilienceReport.as_dict()``).

    Shows the attempt ledger and spells out the invariant every chaos
    run must satisfy: attempts = successes + retries + exhausted + fatal.
    """
    headers = [
        "Attempts", "Successes", "Retries", "Exhausted", "Fatal",
        "Short-circuits", "Breaker trips", "Degraded batches", "Degraded rows",
    ]
    row = [
        counters.get("attempts", 0),
        counters.get("successes", 0),
        counters.get("retries", 0),
        counters.get("exhausted", 0),
        counters.get("fatal", 0),
        counters.get("short_circuits", 0),
        counters.get("breaker_trips", 0),
        counters.get("degraded_batches", 0),
        counters.get("degraded_rows", 0),
    ]
    accounted = row[0] == row[1] + row[2] + row[3] + row[4]
    table = format_table(headers, [row], title=title)
    status = "accounted" if accounted else "NOT ACCOUNTED"
    return (
        f"{table}\n"
        f"attempts = successes + retries + exhausted + fatal: {status}"
    )
