"""Per-question error analysis (the Section 5.3 discussion, mechanised).

The paper explains its EX numbers qualitatively — LIMIT clauses mask
errors on non-top entities, value-selection questions fail differently
from free-form ones.  :func:`analyze_run` turns an
:class:`~repro.harness.runner.HQDLRun` into that analysis: failures are
broken down by database, by the expansion-column kinds the question
depends on, and by whether the gold query carries a LIMIT clause.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.eval.report import format_table, percent
from repro.swan.benchmark import Swan

if TYPE_CHECKING:  # imported lazily: harness.runner itself imports repro.eval
    from repro.harness.runner import HQDLRun


@dataclass
class ErrorBreakdown:
    """Aggregated failure analysis for one run."""

    model: str
    shots: int
    total: int = 0
    failures: int = 0
    by_database: Counter = field(default_factory=Counter)
    totals_by_database: Counter = field(default_factory=Counter)
    by_kind: Counter = field(default_factory=Counter)
    totals_by_kind: Counter = field(default_factory=Counter)
    limit_failures: int = 0
    limit_total: int = 0
    row_count_mismatches: int = 0
    qids: list[str] = field(default_factory=list)

    def failure_rate(self) -> float:
        return self.failures / self.total if self.total else 0.0

    def limit_failure_rate(self) -> float:
        return self.limit_failures / self.limit_total if self.limit_total else 0.0

    def scan_failure_rate(self) -> float:
        scans = self.total - self.limit_total
        scan_failures = self.failures - self.limit_failures
        return scan_failures / scans if scans else 0.0

    def render(self) -> str:
        """A readable breakdown report."""
        sections = [
            f"Error breakdown: {self.model}, {self.shots}-shot — "
            f"{self.failures}/{self.total} questions failed "
            f"({percent(self.failure_rate())})"
        ]
        rows = [
            [database,
             f"{self.by_database[database]}/{self.totals_by_database[database]}"]
            for database in sorted(self.totals_by_database)
        ]
        sections.append(format_table(["Database", "Failures"], rows))
        rows = [
            [kind, f"{self.by_kind[kind]}/{self.totals_by_kind[kind]}"]
            for kind in sorted(self.totals_by_kind)
        ]
        sections.append(
            format_table(["Depends on value kind", "Failures"], rows)
        )
        sections.append(
            f"LIMIT questions fail at {percent(self.limit_failure_rate())} vs "
            f"{percent(self.scan_failure_rate())} for full scans "
            "(the Section 5.3 masking effect)"
        )
        sections.append(
            f"{self.row_count_mismatches} of {self.failures} failures return "
            "the wrong number of rows (the rest differ only in content)"
        )
        return "\n\n".join(sections)


def analyze_run(swan: Swan, run: "HQDLRun") -> ErrorBreakdown:
    """Break down which questions a run failed, and how."""
    breakdown = ErrorBreakdown(model=run.model, shots=run.shots)
    kinds_by_column = {
        (world_name, column.name): column.kind
        for world_name, world in swan.worlds.items()
        for expansion in world.expansions
        for column in expansion.columns
    }
    for outcome in run.outcomes:
        question = swan.question(outcome.qid)
        has_limit = "LIMIT" in question.gold_sql.upper()
        kinds = {
            kinds_by_column.get((question.database, column), "unknown")
            for column in question.expansion_columns
        }
        breakdown.total += 1
        breakdown.totals_by_database[question.database] += 1
        breakdown.limit_total += int(has_limit)
        for kind in kinds:
            breakdown.totals_by_kind[kind] += 1
        if outcome.correct:
            continue
        breakdown.failures += 1
        breakdown.qids.append(outcome.qid)
        breakdown.by_database[question.database] += 1
        breakdown.limit_failures += int(has_limit)
        if outcome.expected_rows != outcome.actual_rows:
            breakdown.row_count_mismatches += 1
        for kind in kinds:
            breakdown.by_kind[kind] += 1
    return breakdown
