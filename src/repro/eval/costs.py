"""Monetary-cost and latency analysis (Section 5.5).

"The monetary costs and the system's performance (e.g., latency and
throughput) are implicitly determined by the number of input and output
tokens."  This module makes that determination explicit: a
:class:`CostReport` turns metered usage into dollars (the paper's
pricing table), estimated wall-clock latency (the affine per-call model
in :mod:`repro.llm.batching`), and throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.llm.batching import LatencyModel, parallel_makespan, sequential_makespan
from repro.llm.usage import Usage


@dataclass(frozen=True)
class CostReport:
    """Dollars, latency and throughput for one metered workload."""

    model: str
    usage: Usage
    dollars: float
    sequential_latency_s: float
    parallel_latency_s: float
    workers: int
    questions: int = 0

    @property
    def dollars_per_question(self) -> float:
        return self.dollars / self.questions if self.questions else 0.0

    @property
    def throughput_qps(self) -> float:
        """Questions per second under the parallel latency estimate."""
        if not self.questions or self.parallel_latency_s <= 0:
            return 0.0
        return self.questions / self.parallel_latency_s

    def summary(self) -> str:
        lines = [
            f"model: {self.model}",
            f"calls: {self.usage.calls}  tokens: "
            f"{self.usage.input_tokens} in / {self.usage.output_tokens} out",
            f"cost: ${self.dollars:.4f}"
            + (f" (${self.dollars_per_question:.4f}/question)"
               if self.questions else ""),
            f"latency: {self.sequential_latency_s:.1f}s sequential, "
            f"{self.parallel_latency_s:.1f}s at {self.workers} workers",
        ]
        if self.questions:
            lines.append(f"throughput: {self.throughput_qps:.2f} questions/s")
        return "\n".join(lines)


def _even_call_sizes(usage: Usage) -> list[tuple[int, int]]:
    """Approximate per-call sizes when only aggregates were metered."""
    if usage.calls == 0:
        return []
    input_each = usage.input_tokens // usage.calls
    output_each = usage.output_tokens // usage.calls
    return [(input_each, output_each)] * usage.calls


def estimate_costs(
    usage: Usage,
    model: str,
    *,
    call_sizes: Optional[Sequence[tuple[int, int]]] = None,
    latency_model: Optional[LatencyModel] = None,
    workers: int = 4,
    questions: int = 0,
) -> CostReport:
    """Build a :class:`CostReport` from metered usage.

    ``call_sizes`` (from :class:`~repro.udf.executor.ExecutionReport`)
    gives exact per-call latencies; without it calls are assumed evenly
    sized, which is accurate for HQDL's homogeneous row prompts.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    sizes = list(call_sizes) if call_sizes is not None else _even_call_sizes(usage)
    latency = latency_model or LatencyModel()
    return CostReport(
        model=model,
        usage=usage,
        dollars=usage.cost_usd(model),
        sequential_latency_s=sequential_makespan(sizes, latency),
        parallel_latency_s=parallel_makespan(sizes, workers, latency),
        workers=workers,
        questions=questions,
    )
