"""Deterministic synthetic tenant traffic for the query server.

Load tests need traffic that looks like production — independent
tenants, Poisson arrivals, periodic bursts, mixed pipelines — but
replays *identically* across runs and machines, or latency percentiles
are not comparable.  Every random choice here is a
:func:`~repro.llm.oracle.stable_uniform` draw keyed by ``(seed, tenant,
index)``: no RNG stream, no ordering sensitivity, identical traffic for
the same spec on any platform.

A :class:`TenantSpec` describes one tenant's behaviour;
:func:`generate_traffic` expands a list of specs over a virtual-time
horizon into the arrival-ordered :class:`~repro.serve.request.
QueryRequest` list the server consumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import ReproError
from repro.llm.oracle import stable_uniform
from repro.serve.admission import TenantPolicy
from repro.serve.request import QueryRequest
from repro.swan.benchmark import Swan


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's traffic shape and admission limits.

    ``rate`` is the mean Poisson arrival rate in requests per virtual
    second; ``burst_every``/``burst_size`` adds a simultaneous clump of
    requests at every multiple of ``burst_every`` seconds on top of the
    Poisson process (the pattern that actually breaks naive servers).
    ``hqdl_share`` of requests go through the HQDL pipeline instead of
    UDFs.  The admission fields mirror :class:`~repro.serve.admission.
    TenantPolicy`.
    """

    name: str
    rate: float
    priority: int = 1
    deadline_seconds: float = 60.0
    databases: Optional[tuple[str, ...]] = None
    burst_every: Optional[float] = None
    burst_size: int = 0
    hqdl_share: float = 0.0
    max_queued: Optional[int] = None
    max_concurrent: Optional[int] = None
    token_budget: Optional[int] = None

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError(f"rate must be >= 0, got {self.rate}")
        if not 0.0 <= self.hqdl_share <= 1.0:
            raise ValueError(
                f"hqdl_share must be in [0, 1], got {self.hqdl_share}"
            )
        if self.burst_every is not None and self.burst_every <= 0:
            raise ValueError(
                f"burst_every must be > 0 or None, got {self.burst_every}"
            )

    def policy(self) -> TenantPolicy:
        return TenantPolicy(
            name=self.name,
            max_queued=self.max_queued,
            max_concurrent=self.max_concurrent,
            token_budget=self.token_budget,
        )

    def scaled(self, multiplier: float) -> "TenantSpec":
        """The same tenant at ``multiplier ×`` the offered load."""
        burst = self.burst_size
        if burst:
            burst = max(1, round(burst * multiplier))
        return TenantSpec(
            name=self.name,
            rate=self.rate * multiplier,
            priority=self.priority,
            deadline_seconds=self.deadline_seconds,
            databases=self.databases,
            burst_every=self.burst_every,
            burst_size=burst,
            hqdl_share=self.hqdl_share,
            max_queued=self.max_queued,
            max_concurrent=self.max_concurrent,
            token_budget=self.token_budget,
        )


def _pick_question(swan: Swan, spec: TenantSpec, seed: int, tag: object):
    """One (database, question) draw for an arrival, seed-stable."""
    names = (
        list(spec.databases)
        if spec.databases is not None
        else swan.database_names()
    )
    db = names[int(stable_uniform("serve:db", seed, spec.name, tag) * len(names))]
    questions = swan.questions_for(db)
    question = questions[
        int(stable_uniform("serve:q", seed, spec.name, tag) * len(questions))
    ]
    return db, question


def _pipeline_for(spec: TenantSpec, seed: int, tag: object) -> str:
    if spec.hqdl_share <= 0.0:
        return "udf"
    draw = stable_uniform("serve:pipe", seed, spec.name, tag)
    return "hqdl" if draw < spec.hqdl_share else "udf"


def generate_traffic(
    swan: Swan,
    tenants: Sequence[TenantSpec],
    *,
    horizon: float,
    seed: int = 0,
) -> list[QueryRequest]:
    """Expand tenant specs into an arrival-ordered request list.

    Two calls with the same ``(swan, tenants, horizon, seed)`` return
    identical lists — arrival times, question choices, request ids, all
    of it — which is what makes the load test's BENCH JSON byte-stable.
    """
    if horizon <= 0:
        raise ReproError(f"horizon must be > 0 seconds, got {horizon}")
    if not tenants:
        raise ReproError("at least one TenantSpec is required")
    arrivals: list[tuple[float, str, int, TenantSpec, str, object]] = []
    for spec in tenants:
        for name in spec.databases or ():
            if name not in swan.database_names():
                raise ReproError(
                    f"tenant {spec.name!r} references unknown database "
                    f"{name!r}; valid: {', '.join(swan.database_names())}"
                )
        # Poisson process: exponential inter-arrival gaps, each drawn
        # from the (seed, tenant, index) hash — not a sequential RNG
        time = 0.0
        index = 0
        while spec.rate > 0:
            draw = stable_uniform("serve:gap", seed, spec.name, index)
            time += -math.log(1.0 - min(draw, 1.0 - 1e-12)) / spec.rate
            if time >= horizon:
                break
            db, question = _pick_question(swan, spec, seed, index)
            pipeline = _pipeline_for(spec, seed, index)
            arrivals.append(
                (time, spec.name, index, spec, question.qid, (db, question, pipeline))
            )
            index += 1
        # bursts: `burst_size` simultaneous arrivals every `burst_every`
        # seconds — the clumped pattern Poisson alone underrepresents
        if spec.burst_every is not None and spec.burst_size > 0:
            beat = 1
            while beat * spec.burst_every < horizon:
                when = beat * spec.burst_every
                for j in range(spec.burst_size):
                    tag = f"burst:{beat}:{j}"
                    db, question = _pick_question(swan, spec, seed, tag)
                    pipeline = _pipeline_for(spec, seed, tag)
                    arrivals.append(
                        (
                            when, spec.name, index, spec, question.qid,
                            (db, question, pipeline),
                        )
                    )
                    index += 1
                beat += 1
    arrivals.sort(key=lambda a: (a[0], a[1], a[2]))
    requests: list[QueryRequest] = []
    for request_id, (time, _, _, spec, qid, (db, question, pipeline)) in enumerate(
        arrivals
    ):
        requests.append(
            QueryRequest(
                request_id=request_id,
                tenant=spec.name,
                database=db,
                sql=question.blend_sql,
                arrival=time,
                pipeline=pipeline,
                qid=qid,
                priority=spec.priority,
                deadline_seconds=spec.deadline_seconds,
            )
        )
    return requests
