"""Request and outcome types for the serving layer.

Every request a client *offers* terminates in exactly one of three
classes — that trichotomy is the serving layer's core invariant
(checked by :meth:`repro.serve.server.ServeReport.accounted`):

- :data:`SERVED` — a full answer, delivered inside the deadline;
- :data:`DEGRADED` — an answer with NULLs where LLM work was shed
  (deadline pressure, open breaker, or upstream faults), still delivered
  inside the deadline — quality shed before availability;
- :data:`REJECTED` — a typed refusal: load shedding at admission
  (queue full, tenant over quota, token budget spent) or a deadline that
  expired while the request sat in the queue.  Rejections carry a
  machine-readable ``reason`` and, for admission sheds, a ``retry_after``
  hint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

#: full answer inside the deadline
SERVED = "served"
#: NULL-degraded answer inside the deadline
DEGRADED = "degraded"
#: typed refusal (admission shed or queue-expired deadline)
REJECTED = "rejected"


@dataclass(frozen=True)
class QueryRequest:
    """One hybrid query submitted by one tenant.

    ``priority`` is a class, not a weight: lower runs first (0 =
    interactive, 1 = batch).  The scheduler ages queued requests so a
    high class can never starve.  ``deadline_seconds`` is the client's
    end-to-end budget measured from ``arrival`` on the server's virtual
    clock — queueing, LLM work, and delivery all count against it.
    """

    request_id: int
    tenant: str
    database: str
    sql: str
    arrival: float
    #: "udf" executes the hybrid SQL through HybridQueryExecutor;
    #: "hqdl" answers against the (lazily materialized) expanded schema
    pipeline: str = "udf"
    qid: str = ""
    priority: int = 1
    deadline_seconds: float = 60.0

    def __post_init__(self) -> None:
        if self.pipeline not in ("udf", "hqdl"):
            raise ValueError(
                f"pipeline must be 'udf' or 'hqdl', got {self.pipeline!r}"
            )
        if self.deadline_seconds <= 0:
            raise ValueError(
                f"deadline_seconds must be > 0, got {self.deadline_seconds}"
            )
        if self.priority < 0:
            raise ValueError(f"priority must be >= 0, got {self.priority}")

    @property
    def deadline_at(self) -> float:
        """Absolute virtual time at which the client gives up."""
        return self.arrival + self.deadline_seconds

    @property
    def trace_id(self) -> str:
        """Deterministic trace id — a pure function of the request id.

        Being derivable without any tracer state is what lets metric
        exemplars and incident context name traces unconditionally while
        serve outcomes stay byte-identical with tracing off.
        """
        return f"t{self.request_id:06d}"


@dataclass
class RequestOutcome:
    """How one offered request terminated.

    ``finish_time`` is when the answer (or refusal) reached the client;
    ``latency = finish_time - arrival`` and never exceeds the request's
    deadline.  ``queue_wait`` and ``service_seconds`` decompose the
    latency of dispatched requests; admission rejections have both at
    zero.  ``rows`` is the answer's row count (None for rejections).
    """

    request: QueryRequest
    status: str
    #: why a degraded/rejected outcome happened (None for clean serves):
    #: rejections use admission reasons (``queue_full``, ``tenant_quota``,
    #: ``token_budget``) or ``deadline_expired``; degradations use
    #: ``deadline``, ``breaker_open``, ``faults``, or ``error``
    reason: Optional[str] = None
    finish_time: float = 0.0
    queue_wait: float = 0.0
    service_seconds: float = 0.0
    retry_after: Optional[float] = None
    rows: Optional[int] = None
    llm_calls: int = 0
    input_tokens: int = 0
    output_tokens: int = 0
    degraded_keys: int = 0
    #: tokens (of ``input_tokens + output_tokens``) attributed from LLM
    #: calls shared with other requests by the cross-request batcher;
    #: 0 whenever batching is off, so it stays out of :meth:`as_record`
    shared_tokens: int = 0
    #: set on degraded outcomes that still produced a result object
    partial: bool = field(default=False, repr=False)

    @property
    def latency(self) -> float:
        return max(0.0, self.finish_time - self.request.arrival)

    @property
    def answered(self) -> bool:
        """True when the client got an answer (full or degraded)."""
        return self.status in (SERVED, DEGRADED)

    def as_record(self) -> dict:
        """A flat dict for ledgers and BENCH JSON."""
        return {
            "request_id": self.request.request_id,
            "tenant": self.request.tenant,
            "database": self.request.database,
            "pipeline": self.request.pipeline,
            "priority": self.request.priority,
            "status": self.status,
            "reason": self.reason,
            "arrival": round(self.request.arrival, 6),
            "finish": round(self.finish_time, 6),
            "latency": round(self.latency, 6),
            "queue_wait": round(self.queue_wait, 6),
            "service_seconds": round(self.service_seconds, 6),
            "llm_calls": self.llm_calls,
            "degraded_keys": self.degraded_keys,
        }
