"""Cross-request continuous batching for the serving layer.

The batch runners amortize LLM cost across *rows of one query*; PR 7's
server still paid per request — concurrent tenants asking overlapping
questions each paid full price, and the makespan cost model ran per
request over its own calls.  This module adds the standard serving-stack
optimization (Orca/vLLM-style continuous batch forming) on the virtual
clock:

- :class:`CrossRequestBatcher` collects the LLM work items of every
  in-service request — (signature, key) pairs for LLMMap/LLMJoin,
  whole prompts for LLMQA and HQDL generation — into groups keyed by
  ingredient signature or label, and releases each group under a
  **size-or-window policy**: a group flushes as soon as it holds a
  policy-sized batch (:class:`~repro.plan.policy.AdaptiveBatchPolicy`
  decides "full"), when its window expires, or — unconditionally —
  before the earliest member request's deadline.  A coalesced call is
  therefore *never* held past any member's deadline, by construction:
  ``release_at = max(now, min(opened_at + window, min member
  deadline))`` (see :meth:`_Group.retarget`).
- Items are **cross-request single-flight**: the same key (or the same
  prompt) wanted by several requests is dispatched once, and the result
  fans out to every requester — which is what turns the shared caches
  into genuinely sublinear cost per concurrent user.
- Shared-call tokens are attributed **fairly** across the member
  requests (largest-remainder split over per-item shares, so totals are
  conserved exactly), feeding the existing per-tenant accounting.

The batcher is pure bookkeeping: it never touches clients, caches, or
the clock.  :class:`~repro.serve.server.QueryServer` drives it — plans
each dispatched request's items, schedules flush events at the release
times this module computes, executes flushed groups, and reports each
call's usage back via :meth:`CrossRequestBatcher.settle_call`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.plan import MappingStore
from repro.serve.request import QueryRequest

#: release-time comparison slack (floats accumulate through the heap)
_EPS = 1e-9

#: why a group flushed
WINDOW_EXPIRED = "window"
SIZE_TRIGGERED = "size"
DEADLINE_FORCED = "deadline"


@dataclass(frozen=True)
class BatchingConfig:
    """Knobs of one :class:`CrossRequestBatcher`.

    ``window`` is the longest a group waits for co-batchable work, in
    virtual seconds from the instant it opened; ``max_batch`` overrides
    the adaptive policy's size trigger when set.  ``persist`` shares
    flushed mapping answers through the server's
    :class:`~repro.plan.MappingStore`, so later requests skip generation
    entirely (the serving analogue of pairs-mode planning); turning it
    off keeps reuse strictly within co-resident requests.
    """

    window: float = 2.0
    max_batch: Optional[int] = None
    persist: bool = True

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ValueError(f"window must be > 0, got {self.window}")
        if self.max_batch is not None and self.max_batch < 1:
            raise ValueError(
                f"max_batch must be >= 1 or None, got {self.max_batch}"
            )


class PendingRequest:
    """One dispatched request waiting on cross-request batch landings.

    Tracks what the request still owes (``outstanding`` work items),
    what it has been charged so far (attributed calls/tokens from shared
    batches), and the private ``overlay`` store that accumulates flushed
    mapping answers until the finalize pass replays the query against
    them.
    """

    __slots__ = (
        "request", "start", "queue_wait", "overlay", "outstanding",
        "llm_calls", "input_tokens", "output_tokens", "shared_tokens",
        "degraded_keys", "waves",
    )

    def __init__(
        self, request: QueryRequest, *, start: float, queue_wait: float
    ) -> None:
        self.request = request
        self.start = start
        self.queue_wait = queue_wait
        self.overlay = MappingStore()
        self.outstanding = 0
        self.llm_calls = 0
        self.input_tokens = 0
        self.output_tokens = 0
        #: tokens attributed from calls shared with *other* requests
        self.shared_tokens = 0
        #: keys degraded by failed flush calls (merged into the outcome)
        self.degraded_keys = 0
        #: ids of the batch waves this request's items rode on (trace
        #: bookkeeping only — never read by the batching math)
        self.waves: list[str] = []


class _Item:
    """One unit of LLM work and every request waiting on it."""

    __slots__ = ("payload", "requesters")

    def __init__(self, payload) -> None:
        self.payload = payload
        self.requesters: list[PendingRequest] = []


class _Group:
    """One batchable stream: same database and ingredient/label."""

    __slots__ = (
        "gid", "kind", "database", "call", "label", "chunk_size",
        "threshold", "latency_bearing", "items", "opened_at",
        "deadline_min", "release_at", "release_reason", "epoch",
    )

    def __init__(
        self,
        gid: tuple,
        *,
        kind: str,
        database: str,
        call=None,
        label: str = "",
        chunk_size: int = 1,
        threshold: int = 1,
        latency_bearing: bool = True,
    ) -> None:
        self.gid = gid
        self.kind = kind  # "map" (keyed items) or "prompt" (whole prompts)
        self.database = database
        self.call = call
        self.label = label
        self.chunk_size = chunk_size
        self.threshold = threshold
        self.latency_bearing = latency_bearing
        self.items: dict[object, _Item] = {}
        self.opened_at: Optional[float] = None
        self.deadline_min = math.inf
        self.release_at: Optional[float] = None
        self.release_reason = WINDOW_EXPIRED
        self.epoch = 0

    def retarget(self, now: float, window: float) -> None:
        """Recompute when (and why) this group must flush.

        The deadline clamp is the safety invariant: a group's release
        can only ever move *earlier* than ``opened_at + window``, and
        never past the earliest member deadline.
        """
        if not self.items:
            self.release_at = None
            return
        if len(self.items) >= self.threshold:
            self.release_at = now
            self.release_reason = SIZE_TRIGGERED
            return
        window_at = self.opened_at + window
        if self.deadline_min < window_at - _EPS:
            self.release_at = max(now, self.deadline_min)
            self.release_reason = DEADLINE_FORCED
        else:
            self.release_at = max(now, window_at)
            self.release_reason = WINDOW_EXPIRED

    def reset(self) -> None:
        """Clear to an empty group; the next attach opens a new epoch."""
        self.items = {}
        self.opened_at = None
        self.deadline_min = math.inf
        self.release_at = None
        self.release_reason = WINDOW_EXPIRED
        self.epoch += 1


@dataclass
class FlushedGroup:
    """One group drained by :meth:`CrossRequestBatcher.collect_due`."""

    gid: tuple
    kind: str
    database: str
    call: object
    label: str
    chunk_size: int
    latency_bearing: bool
    trigger: str
    #: (payload, requesters) in enqueue order; requesters in attach order
    items: list[tuple[object, list[PendingRequest]]] = field(
        default_factory=list
    )


def split_fairly(
    members: Sequence[PendingRequest],
    weights: Sequence[float],
    total: int,
) -> list[int]:
    """Split ``total`` integer tokens proportionally to ``weights``.

    Largest-remainder rounding, ties broken by request id, so the split
    is deterministic and sums to ``total`` exactly — attribution never
    mints or loses a token.
    """
    if total <= 0 or not members:
        return [0] * len(members)
    scale = sum(weights)
    if scale <= 0:
        shares = [total / len(members)] * len(members)
    else:
        shares = [total * w / scale for w in weights]
    floors = [int(math.floor(s)) for s in shares]
    remainder = total - sum(floors)
    order = sorted(
        range(len(members)),
        key=lambda i: (floors[i] - shares[i], members[i].request.request_id),
    )
    for i in order[:remainder]:
        floors[i] += 1
    return floors


class CrossRequestBatcher:
    """Forms shared LLM batches across every in-service request."""

    def __init__(self, config: BatchingConfig, policy) -> None:
        self.config = config
        #: object with ``batch_size(call)`` — the "full enough to
        #: release" threshold (AdaptiveBatchPolicy in the server)
        self.policy = policy
        self._groups: dict[tuple, _Group] = {}
        #: release times set since the last drain (the server turns
        #: each into one flush event; stale ones are skipped)
        self._new_releases: list[float] = []
        # -- statistics (the BENCH/dash batching panel) -------------------
        self.items_enqueued = 0
        self.items_coalesced = 0
        self.formed_calls = 0
        self.paid_calls = 0
        self.coalesced_calls = 0
        self.flushes = {WINDOW_EXPIRED: 0, SIZE_TRIGGERED: 0,
                        DEADLINE_FORCED: 0}
        self.keys_from_store = 0
        self.prompts_from_cache = 0
        self._occupancy_sum = 0.0
        self._occupancy_calls = 0
        self._fanout_tokens_saved = 0.0

    # -- enqueue ------------------------------------------------------------------

    def _threshold(self, call) -> int:
        if self.config.max_batch is not None:
            return self.config.max_batch
        return self.policy.batch_size(call)

    def chunk_size_for(self, call) -> int:
        """Keys per formed call — the policy-sized batch the former fills.

        This is where continuous batching beats the per-request path on
        cost: the executor chunks each occurrence alone at its fixed
        size, while the former sees every co-resident request's keys and
        fills :class:`~repro.plan.policy.AdaptiveBatchPolicy`-sized
        batches (bounded by ``max_batch`` when set).
        """
        return self._threshold(call)

    def enqueue_keys(
        self,
        database: str,
        call,
        keys: Sequence[tuple],
        member: PendingRequest,
        *,
        chunk_size: int,
        now: float,
    ) -> int:
        """Add one request's (ingredient, key) demand; returns new items owed."""
        gid = ("map", database, call.signature())
        group = self._groups.get(gid)
        if group is None:
            group = _Group(
                gid, kind="map", database=database, call=call,
                label="udf:map", chunk_size=chunk_size,
                threshold=self._threshold(call), latency_bearing=True,
            )
            self._groups[gid] = group
        return self._attach(group, keys, member, now)

    def enqueue_prompt(
        self,
        database: str,
        label: str,
        prompt: str,
        member: PendingRequest,
        *,
        latency_bearing: bool,
        now: float,
    ) -> int:
        """Add one whole-prompt work item (LLMQA / HQDL generation)."""
        gid = ("prompt", database, label)
        group = self._groups.get(gid)
        if group is None:
            group = _Group(
                gid, kind="prompt", database=database, label=label,
                chunk_size=1, threshold=self._threshold(None),
                latency_bearing=latency_bearing,
            )
            self._groups[gid] = group
        return self._attach(group, [prompt], member, now)

    def _attach(
        self,
        group: _Group,
        payloads: Sequence,
        member: PendingRequest,
        now: float,
    ) -> int:
        attached = 0
        for payload in payloads:
            item = group.items.get(payload)
            if item is None:
                if not group.items:
                    group.opened_at = now
                item = _Item(payload)
                group.items[payload] = item
                self.items_enqueued += 1
            if member in item.requesters:
                continue  # the same request asked twice (two occurrences)
            item.requesters.append(member)
            member.outstanding += 1
            attached += 1
        if attached:
            before = group.release_at
            group.deadline_min = min(
                group.deadline_min, member.request.deadline_at
            )
            group.retarget(now, self.config.window)
            if group.release_at is not None and group.release_at != before:
                self._new_releases.append(group.release_at)
        return attached

    def expedite(self, now: float) -> None:
        """Release every open group at ``now`` (no coalescing possible).

        Used when at most one request can ever be in service
        (``max_concurrent=1``): waiting a window could never find a
        partner, and releasing at dispatch keeps the batched path
        byte-identical to the unbatched one.
        """
        for group in self._groups.values():
            if group.items and (
                group.release_at is None or group.release_at > now
            ):
                group.release_at = now
                group.release_reason = SIZE_TRIGGERED

    def drain_releases(self) -> list[float]:
        """Release times needing flush events since the last drain."""
        releases, self._new_releases = self._new_releases, []
        return releases

    # -- flush --------------------------------------------------------------------

    def has_due(self, now: float) -> bool:
        """True when some group must flush at (or before) ``now``."""
        return any(
            g.items and g.release_at is not None and g.release_at <= now + _EPS
            for g in self._groups.values()
        )

    def collect_due(
        self, now: float, *, retain_tails: bool = True
    ) -> list[FlushedGroup]:
        """Drain every group due at ``now`` — one *wave*, flushed together.

        Groups flushed in the same wave share one makespan pool in the
        server's cost model, exactly as their calls would share the
        worker fan-out of a single request.

        With ``retain_tails`` (the continuous-batching behaviour), a
        group released by its **size** trigger flushes only its full
        chunks; the partial tail stays pending on a fresh window so
        later requests' keys can fill it — window and deadline releases
        always flush everything.  The server disables retention at
        ``max_concurrent=1``, where no partner can ever arrive.
        """
        wave: list[FlushedGroup] = []
        for group in self._groups.values():
            if not group.items or group.release_at is None:
                continue
            if group.release_at > now + _EPS:
                continue
            items = list(group.items.values())
            kept: list[_Item] = []
            if (
                retain_tails
                and group.release_reason == SIZE_TRIGGERED
                and group.chunk_size > 1
            ):
                full = (len(items) // group.chunk_size) * group.chunk_size
                items, kept = items[:full], items[full:]
            if not items:
                # a stale release (e.g. re-targeted past us): leave the
                # group exactly as it is
                continue
            flushed = FlushedGroup(
                gid=group.gid,
                kind=group.kind,
                database=group.database,
                call=group.call,
                label=group.label,
                chunk_size=group.chunk_size,
                latency_bearing=group.latency_bearing,
                trigger=group.release_reason,
                items=[
                    (item.payload, list(item.requesters)) for item in items
                ],
            )
            self.flushes[group.release_reason] += 1
            self.items_coalesced += sum(
                1 for _, reqs in flushed.items if len(reqs) >= 2
            )
            wave.append(flushed)
            group.reset()
            if kept:
                # the tail re-opens on a fresh window at ``now``; its
                # deadline floor is recomputed from the remaining waiters
                group.items = {item.payload: item for item in kept}
                group.opened_at = now
                group.deadline_min = min(
                    (
                        member.request.deadline_at
                        for item in kept
                        for member in item.requesters
                    ),
                    default=math.inf,
                )
                group.retarget(now, self.config.window)
                if group.release_at is not None:
                    self._new_releases.append(group.release_at)
        return wave

    # -- settlement ---------------------------------------------------------------

    def settle_call(
        self,
        item_requesters: Sequence[Sequence[PendingRequest]],
        usage=None,
        *,
        fill: Optional[float] = None,
    ) -> None:
        """Account one formed call and attribute its cost to its members.

        ``item_requesters`` holds, per item the call covered, the
        requests waiting on it.  Each item's cost share splits evenly
        across its requesters; token totals split across members by
        largest remainder; the call count lands on the heaviest member
        (ties to the lowest request id) so integer call accounting stays
        conserved — at ``max_concurrent=1`` everything lands on the sole
        member, byte-identical to the unbatched path.
        """
        self.formed_calls += 1
        if fill is not None:
            self._occupancy_sum += fill
            self._occupancy_calls += 1
        weights: dict[PendingRequest, float] = {}
        for requesters in item_requesters:
            share = 1.0 / len(requesters)
            for member in requesters:
                weights[member] = weights.get(member, 0.0) + share
        members = sorted(weights, key=lambda m: m.request.request_id)
        if len(members) >= 2:
            self.coalesced_calls += 1
        if usage is None or not usage.calls:
            return
        self.paid_calls += 1
        member_weights = [weights[m] for m in members]
        in_split = split_fairly(members, member_weights, usage.input_tokens)
        out_split = split_fairly(members, member_weights, usage.output_tokens)
        shared = len(members) >= 2
        for member, w_in, w_out in zip(members, in_split, out_split):
            member.input_tokens += w_in
            member.output_tokens += w_out
            if shared:
                member.shared_tokens += w_in + w_out
        heaviest = max(
            members, key=lambda m: (weights[m], -m.request.request_id)
        )
        heaviest.llm_calls += usage.calls
        if shared:
            call_tokens = usage.input_tokens + usage.output_tokens
            n_items = max(1, len(item_requesters))
            for requesters in item_requesters:
                extra = len(requesters) - 1
                if extra > 0:
                    self._fanout_tokens_saved += (
                        extra * call_tokens / n_items
                    )

    # -- reporting ----------------------------------------------------------------

    def batch_occupancy(self) -> float:
        """Mean fill fraction of formed key-batched calls (0.0 when none)."""
        if not self._occupancy_calls:
            return 0.0
        return self._occupancy_sum / self._occupancy_calls

    def stats(self) -> dict:
        """A JSON-stable summary for BENCH_serve.json and the dashboard."""
        return {
            "window": round(self.config.window, 6),
            "max_batch": self.config.max_batch,
            "persist": self.config.persist,
            "items": self.items_enqueued,
            "coalesced_items": self.items_coalesced,
            "formed_calls": self.formed_calls,
            "paid_calls": self.paid_calls,
            "coalesced_calls": self.coalesced_calls,
            "batch_occupancy": round(self.batch_occupancy(), 6),
            "flushes": {
                WINDOW_EXPIRED: self.flushes[WINDOW_EXPIRED],
                SIZE_TRIGGERED: self.flushes[SIZE_TRIGGERED],
                DEADLINE_FORCED: self.flushes[DEADLINE_FORCED],
            },
            "keys_from_store": self.keys_from_store,
            "prompts_from_cache": self.prompts_from_cache,
            "fanout_tokens_saved": int(round(self._fanout_tokens_saved)),
        }
