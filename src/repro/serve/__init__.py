"""Online serving for hybrid queries: admission, scheduling, degradation.

The batch runners (:mod:`repro.harness.runner`) answer a fixed question
list as fast as possible.  This package answers a *stream*: multiple
tenants submit hybrid queries continuously, and the server must decide —
per request — whether to admit it, when to schedule it, and how much
quality to trade for staying inside its deadline.  Everything runs on a
virtual clock, so overload experiments are deterministic and free.

- :mod:`repro.serve.request` — the request/outcome types and the three
  terminal classes every offered request lands in (served, degraded,
  rejected).
- :mod:`repro.serve.admission` — load shedding at the front door:
  bounded queue, per-tenant quotas and token budgets, typed rejections
  with retry-after hints.
- :mod:`repro.serve.scheduler` — priority scheduling with
  starvation-free aging.
- :mod:`repro.serve.server` — the event-driven :class:`QueryServer`
  tying admission, scheduling, deadlines, and the circuit-breaker
  degradation path to the existing pipelines and shared caches.
- :mod:`repro.serve.traffic` — seed-stable synthetic tenant traffic
  (Poisson and bursty arrivals).
"""

from repro.serve.admission import AdmissionController, TenantPolicy
from repro.serve.batcher import BatchingConfig, CrossRequestBatcher
from repro.serve.request import (
    DEGRADED,
    REJECTED,
    SERVED,
    QueryRequest,
    RequestOutcome,
)
from repro.serve.scheduler import AgingPriorityQueue
from repro.serve.server import QueryServer, ServeReport, ServerConfig, VirtualClock
from repro.serve.traffic import TenantSpec, generate_traffic

__all__ = [
    "AdmissionController",
    "AgingPriorityQueue",
    "BatchingConfig",
    "CrossRequestBatcher",
    "DEGRADED",
    "QueryRequest",
    "QueryServer",
    "REJECTED",
    "RequestOutcome",
    "SERVED",
    "ServeReport",
    "ServerConfig",
    "TenantPolicy",
    "TenantSpec",
    "VirtualClock",
    "generate_traffic",
]
